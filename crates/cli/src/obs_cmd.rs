//! The `cyclesteal obs` subcommand: trace reports, invariant checks,
//! regression diffs over `--trace-out` JSONL files and `BENCH.json`
//! baselines, and time-travel replay over journals. Thin shell over
//! `cs_obs::{analyze_lines, check_lines, diff_registries, diff_bench}`
//! and `cs_now::{Farm::replay_to, Farm::fork_from_snapshot}`; all the
//! logic (and its tests) lives in the libraries.

use crate::args::Args;
use crate::{farm_scenario_from_args, FarmScenario, FARM_SCENARIO_OPTS};
use cs_apps::{fmt, fmt_opt, Table};
use cs_now::default_snapshot_path;
use cs_now::farm::Farm;
use cs_obs::{analyze_lines, check_text, diff_bench, diff_registries, DiffRow, TraceAnalysis};
use std::path::Path;

const USAGE: &str = "\
usage:
    cyclesteal obs report <trace.jsonl>
        Event counts, span timing tree (p50/p90/p99) and per-workstation
        bank/loss attribution for one trace.
    cyclesteal obs check [--strict] <trace.jsonl>
        Schema + invariant gate: run bracketing, balanced spans, monotone
        span/progress stamps, bitwise bank reconciliation. Non-zero exit
        on any violation. A torn final record (a crash mid-write, e.g. a
        killed journaled run) is reported as a warning and the rest of the
        trace is checked as an interrupted prefix; --strict makes the torn
        tail itself a failure.
    cyclesteal obs diff [--threshold <rel>] [--bench] [--only <substr>]
                        [--min <row>=<value>] <a> <b>
        Compare two traces' folded metrics (or, with --bench, two
        BENCH.json baselines, flagging only regressions). --only keeps
        just the rows whose metric name contains <substr> (repeatable;
        a row is kept when any filter matches) — the CI perf gate uses
        this to pin workload-independent rows like
        'farm_clean.events_per_sec' and 'spans.farm.dispatch.mean_ns'.
        --min asserts an absolute floor on the candidate side of the
        named row (repeatable, exact name, checked before --only
        filtering) — e.g. --min mc_scaling_4.speedup=2.5 is the
        parallel-efficiency gate. Non-zero exit when a kept change
        beyond the threshold (default 0.2) is flagged or a floor is
        missed.
    cyclesteal obs replay --journal <file> --to <record> [scenario flags]
        Time travel: deterministically re-execute the journaled run up to
        (and including) record <record>, verifying every record against
        the journal, and print the farm's reconstructed state there. The
        scenario flags (--workstations, --tasks, --seed, --faults, ...)
        must match the run that wrote the journal.
    cyclesteal obs replay --journal <file> --fork [scenario flags]
        What-if fork: restore <file>.snap and run the rest of the episode
        under the scenario the flags describe. Pass the original flags to
        reproduce the recorded outcome bitwise; perturb the fault flags
        (--faults, --loss, --slowdown, --crash) to ask what the same
        mid-run state would have done under different conditions.";

/// Entry point: `args` is everything after the `obs` token. Returns
/// `Err` (non-zero exit) on usage errors, check violations, and flagged
/// diffs.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(one_path(&args[1..], "obs report")?),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => Err(USAGE.to_string()),
    }
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest.iter().cloned()).map_err(|e| format!("obs replay: {e}"))?;
    if args.command.is_some() {
        return Err(format!(
            "obs replay takes only --key value options\n\n{USAGE}"
        ));
    }
    let mut allowed: Vec<&str> = FARM_SCENARIO_OPTS.to_vec();
    allowed.extend_from_slice(&["journal", "to", "fork"]);
    args.check_known(&allowed)?;
    let journal = args.require("journal")?.to_string();
    let fork = args.flag("fork");
    let to = match args.get("to") {
        None => None,
        Some(_) => Some(args.u64_or("to", 0)?),
    };
    if fork == to.is_some() {
        return Err(format!(
            "obs replay needs exactly one of --to <record> or --fork\n\n{USAGE}"
        ));
    }
    let FarmScenario {
        config,
        bag,
        policy,
        ..
    } = farm_scenario_from_args(&args)?;
    if let Some(to) = to {
        let state = Farm::replay_to(config, bag, Path::new(&journal), to)
            .map_err(|e| format!("obs replay: {e}"))?;
        println!(
            "journal       : {journal} ({} records)",
            state.total_records
        );
        println!("policy        : {}", policy.label());
        println!(
            "replayed to   : record {} (virtual time {:.2})",
            state.records, state.virtual_time
        );
        println!("episodes      : {} started", state.episodes);
        println!(
            "task bag      : {} pending, {} banked, {} chunks in flight",
            state.pending_tasks, state.banked_tasks, state.in_flight_chunks
        );
        println!(
            "work          : {:.1} banked, {:.1} lost",
            state.completed_work, state.lost_work
        );
    } else {
        let snap = default_snapshot_path(Path::new(&journal));
        let (report, meta) =
            Farm::fork_from_snapshot(config, &snap).map_err(|e| format!("obs replay: {e}"))?;
        println!(
            "fork point    : {} (virtual time {:.2})",
            snap.display(),
            meta.virtual_time
        );
        println!(
            "snapshot      : seed {}, {} workstations, {} tasks, {} journal records",
            meta.seed, meta.workstations, meta.tasks, meta.journal_records
        );
        println!("policy        : {}", policy.label());
        println!("drained       : {}", report.drained);
        println!("makespan      : {:.2}", report.makespan);
        println!("banked work   : {:.1}", report.completed_work);
        println!("lost work     : {:.1}", report.lost_work);
        let rb = &report.robustness;
        println!(
            "faults        : {} lost msgs, {} stragglers, {} crashes, {} storm kills",
            rb.messages_lost, rb.straggled_chunks, rb.crashes, rb.storm_kills
        );
    }
    Ok(())
}

fn one_path<'a>(rest: &'a [String], what: &str) -> Result<&'a str, String> {
    match rest {
        [path] if !path.starts_with("--") => Ok(path),
        _ => Err(format!("{what} takes exactly one trace file\n\n{USAGE}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn analyze_file(path: &str) -> Result<TraceAnalysis, String> {
    let text = read(path)?;
    analyze_lines(text.lines()).map_err(|e| format!("{path}: {e}"))
}

fn cmd_report(path: &str) -> Result<(), String> {
    let a = analyze_file(path)?;
    println!("trace         : {path}");
    println!(
        "events        : {} lines, {} complete runs (schema v{})",
        a.lines,
        a.runs,
        cs_obs::SCHEMA_VERSION
    );
    let mut kinds = Table::new(&["event kind", "count"]);
    for (kind, n) in &a.kind_counts {
        kinds.row(&[kind.clone(), n.to_string()]);
    }
    println!("{}", kinds.render());
    if !a.per_ws.is_empty() {
        let mut ws = Table::new(&["ws", "banked", "duplicate", "lost", "banks", "dispatches"]);
        for (id, row) in &a.per_ws {
            ws.row(&[
                id.to_string(),
                fmt(row.banked, 1),
                fmt(row.duplicate, 1),
                fmt(row.lost, 1),
                row.banks.to_string(),
                row.dispatches.to_string(),
            ]);
        }
        println!("per-workstation attribution:\n{}", ws.render());
    }
    if !a.span_tree.is_empty() {
        let mut spans = Table::new(&[
            "span", "count", "total ms", "mean ms", "p50 ms", "p90 ms", "p99 ms",
        ]);
        for node in &a.span_tree {
            let h = &node.hist;
            let ms = |v: Option<f64>| fmt_opt(v.map(|ns| ns / 1e6), 3);
            spans.row(&[
                format!("{}{}", "  ".repeat(node.depth), node.name),
                h.count().to_string(),
                fmt(h.sum() / 1e6, 3),
                ms(h.mean()),
                ms(h.quantile(0.50)),
                ms(h.quantile(0.90)),
                ms(h.quantile(0.99)),
            ]);
        }
        println!("span timing tree (wall clock):\n{}", spans.render());
    }
    Ok(())
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let mut strict = false;
    let mut path: Option<&str> = None;
    for tok in rest {
        match tok.as_str() {
            "--strict" => strict = true,
            p if p.starts_with("--") => {
                return Err(format!("obs check: unknown option {p}\n\n{USAGE}"))
            }
            p if path.is_none() => path = Some(p),
            _ => return Err(format!("obs check takes exactly one trace file\n\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("obs check takes exactly one trace file\n\n{USAGE}"))?;
    let text = read(path)?;
    let s = check_text(&text, strict);
    println!(
        "checked       : {} events, {} runs ({} bank-reconciled), {} spans",
        s.lines, s.runs, s.reconciled_runs, s.spans
    );
    if let Some(warn) = &s.torn_tail {
        println!("WARNING: {warn} (interrupted-run prefix tolerated; --strict fails)");
    }
    if s.ok() {
        println!("PASS: every invariant holds");
        Ok(())
    } else {
        for v in &s.violations {
            println!("VIOLATION: {v}");
        }
        Err(format!(
            "{path}: {} invariant violation(s)",
            s.violations.len()
        ))
    }
}

fn cmd_diff(rest: &[String]) -> Result<(), String> {
    let mut threshold = 0.2f64;
    let mut bench = false;
    let mut only: Vec<String> = Vec::new();
    let mut mins: Vec<(String, f64)> = Vec::new();
    let mut paths: Vec<&str> = Vec::new();
    let mut it = rest.iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--bench" => bench = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold: bad number {v:?}"))?;
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a substring")?;
                only.push(v.clone());
            }
            "--min" => {
                let v = it.next().ok_or("--min needs <row>=<value>")?;
                let (name, floor) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--min: expected <row>=<value>, got {v:?}"))?;
                let floor: f64 = floor
                    .parse()
                    .map_err(|_| format!("--min {name}: bad number {floor:?}"))?;
                mins.push((name.to_string(), floor));
            }
            p if !p.starts_with("--") => paths.push(p),
            other => return Err(format!("obs diff: unknown option {other}\n\n{USAGE}")),
        }
    }
    let [a, b] = paths[..] else {
        return Err(format!("obs diff takes exactly two files\n\n{USAGE}"));
    };
    let mut rows = if bench {
        diff_bench(&read(a)?, &read(b)?, threshold)?
    } else {
        diff_registries(
            &analyze_file(a)?.registry,
            &analyze_file(b)?.registry,
            threshold,
        )
    };
    // Absolute floors run against the full row set (before --only
    // filtering) and look at the candidate side only: a gate like
    // `--min mc_scaling_4.speedup=2.5` must fail loudly when the row is
    // missing, not silently pass.
    let mut floor_misses = Vec::new();
    for (name, floor) in &mins {
        match rows.iter().find(|r| &r.name == name) {
            None => floor_misses.push(format!("--min {name}: no such row in the diff")),
            Some(r) if r.b.is_nan() || r.b < *floor => floor_misses.push(format!(
                "--min {name}: candidate {} below floor {floor}",
                fmt(r.b, 4)
            )),
            Some(r) => println!("min ok: {name} = {} (floor {floor})", fmt(r.b, 4)),
        }
    }
    if !only.is_empty() {
        rows.retain(|r| only.iter().any(|f| r.name.contains(f.as_str())));
        if rows.is_empty() {
            return Err(format!(
                "obs diff: no metric matched --only {:?} (check the row names)",
                only
            ));
        }
    }
    let flagged = rows.iter().filter(|r| r.flagged).count();
    if flagged > 0 {
        let mut table = Table::new(&["metric", "baseline", "candidate", "change"]);
        for row in rows.iter().filter(|r| r.flagged) {
            table.row(&[
                row.name.clone(),
                fmt(row.a, 4),
                fmt(row.b, 4),
                rel_display(row),
            ]);
        }
        println!("flagged changes:\n{}", table.render());
    }
    if !floor_misses.is_empty() {
        return Err(format!(
            "floor violations:\n  {}",
            floor_misses.join("\n  ")
        ));
    }
    if flagged == 0 {
        println!(
            "PASS: {} metrics compared, none beyond threshold {threshold}",
            rows.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{flagged} of {} metrics beyond threshold {threshold}",
            rows.len()
        ))
    }
}

fn rel_display(row: &DiffRow) -> String {
    if row.rel.is_nan() {
        "n/a".to_string()
    } else if row.rel.is_infinite() {
        format!("{}inf", if row.rel > 0.0 { "+" } else { "-" })
    } else {
        format!("{:+.1}%", row.rel * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_name_the_subcommand() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("obs report"), "{err}");
        let err = run(&["report".to_string()]).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&["diff".to_string(), "a".to_string()]).unwrap_err();
        assert!(err.contains("exactly two files"), "{err}");
    }

    #[test]
    fn check_parses_strict_and_rejects_extras() {
        let err = run(&["check".to_string()]).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&[
            "check".to_string(),
            "a.jsonl".to_string(),
            "b.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&[
            "check".to_string(),
            "--struct".to_string(),
            "a.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown option --struct"), "{err}");
        // --strict itself parses; the error is then the missing file.
        let err = run(&[
            "check".to_string(),
            "--strict".to_string(),
            "/no/such/trace.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
    }

    #[test]
    fn replay_validates_its_flag_grammar() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let err = run(&to_args("replay")).unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        let err = run(&to_args("replay --journal j.jsonl")).unwrap_err();
        assert!(
            err.contains("exactly one of --to <record> or --fork"),
            "{err}"
        );
        let err = run(&to_args("replay --journal j.jsonl --to 3 --fork")).unwrap_err();
        assert!(
            err.contains("exactly one of --to <record> or --fork"),
            "{err}"
        );
        // Scenario flags get the same did-you-mean treatment as `farm`.
        let err = run(&to_args("replay --journal j.jsonl --to 3 --taskss 50")).unwrap_err();
        assert!(err.contains("did you mean --tasks?"), "{err}");
        // A well-formed invocation over a missing journal is a clean error.
        let err = run(&to_args("replay --journal /no/such/j.jsonl --to 3")).unwrap_err();
        assert!(err.contains("obs replay"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&["check".to_string(), "/no/such/trace.jsonl".to_string()]).unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
    }

    #[test]
    fn diff_only_filters_rows_and_rejects_empty_matches() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("cs_obs_diff_only_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        // s1 regresses on wall time; s2 is clean.
        std::fs::write(
            &a,
            r#"{"commit":"a","date":"d","scenarios":[
                {"id":"s1","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null},
                {"id":"s2","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null}]}"#,
        )
        .unwrap();
        std::fs::write(
            &b,
            r#"{"commit":"b","date":"d","scenarios":[
                {"id":"s1","wall_ns":9000,"events_per_sec":500,"mc_trials_per_sec":null},
                {"id":"s2","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null}]}"#,
        )
        .unwrap();
        let (a, b) = (a.display().to_string(), b.display().to_string());
        // Unfiltered: the s1 wall regression fails the diff.
        let err = run(&to_args(&format!("diff --bench {a} {b}"))).unwrap_err();
        assert!(err.contains("beyond threshold"), "{err}");
        // Filtered to s2 rows only: the regression is out of scope.
        run(&to_args(&format!("diff --bench --only s2. {a} {b}"))).unwrap();
        // Several filters are OR'd: adding the regressing row fails again.
        let err = run(&to_args(&format!(
            "diff --bench --only s2. --only s1.wall_ns {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("beyond threshold"), "{err}");
        // A filter matching nothing is an error, not a silent PASS.
        let err = run(&to_args(&format!("diff --bench --only nope {a} {b}"))).unwrap_err();
        assert!(err.contains("no metric matched"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_min_enforces_absolute_floors_on_the_candidate() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("cs_obs_diff_min_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        // The candidate's speedup improves (no relative regression), so
        // only the absolute floor can fail the gate.
        std::fs::write(
            &a,
            r#"{"commit":"a","date":"d","scenarios":[
                {"id":"mc_scaling_4","wall_ns":1000,"events_per_sec":null,
                 "mc_trials_per_sec":500,"speedup":1.0,"efficiency":0.25}]}"#,
        )
        .unwrap();
        std::fs::write(
            &b,
            r#"{"commit":"b","date":"d","scenarios":[
                {"id":"mc_scaling_4","wall_ns":1000,"events_per_sec":null,
                 "mc_trials_per_sec":500,"speedup":2.0,"efficiency":0.5}]}"#,
        )
        .unwrap();
        let (a, b) = (a.display().to_string(), b.display().to_string());
        // Floor met: 2.0 >= 1.5 passes.
        run(&to_args(&format!(
            "diff --bench --min mc_scaling_4.speedup=1.5 {a} {b}"
        )))
        .unwrap();
        // Floor missed: 2.0 < 2.5 fails, even though the relative diff
        // shows an improvement.
        let err = run(&to_args(&format!(
            "diff --bench --min mc_scaling_4.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("below floor 2.5"), "{err}");
        // The floor is checked before --only filtering drops its row.
        let err = run(&to_args(&format!(
            "diff --bench --only wall_ns --min mc_scaling_4.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("below floor 2.5"), "{err}");
        // A floor naming a missing row is an error, not a silent pass.
        let err = run(&to_args(&format!(
            "diff --bench --min nope.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("no such row"), "{err}");
        // Malformed floors are usage errors.
        let err = run(&to_args(&format!("diff --bench --min nope {a} {b}"))).unwrap_err();
        assert!(err.contains("expected <row>=<value>"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rel_display_handles_special_values() {
        let row = |rel: f64| DiffRow {
            name: String::new(),
            a: 0.0,
            b: 0.0,
            rel,
            flagged: false,
        };
        assert_eq!(rel_display(&row(0.5)), "+50.0%");
        assert_eq!(rel_display(&row(-0.25)), "-25.0%");
        assert_eq!(rel_display(&row(f64::INFINITY)), "+inf");
        assert_eq!(rel_display(&row(f64::NAN)), "n/a");
    }
}
