//! The `cyclesteal obs` subcommand: trace reports, invariant checks,
//! regression diffs over `--trace-out` JSONL files and `BENCH.json`
//! baselines, and time-travel replay over journals. Thin shell over
//! `cs_obs::{analyze_lines, check_lines, diff_registries, diff_bench}`
//! and `cs_now::{Farm::replay_to, Farm::fork_from_snapshot}`; all the
//! logic (and its tests) lives in the libraries.

use crate::args::Args;
use crate::{farm_scenario_from_args, FarmScenario, FARM_SCENARIO_OPTS};
use cs_apps::{fmt, fmt_opt, Table};
use cs_now::farm::Farm;
use cs_now::{default_snapshot_path, ring_snapshot_path};
use cs_obs::{
    analyze_lineage_lines, analyze_lines, check_text, diff_bench, diff_registries, DiffRow,
    LineageAnalysis, PhaseAttribution, TraceAnalysis,
};
use std::path::Path;

const USAGE: &str = "\
usage:
    cyclesteal obs report <trace.jsonl>
        Event counts, span timing tree (p50/p90/p99), per-workstation
        bank/loss attribution, worker-pool counters (when folded into the
        trace's registry) and — for farm traces — the wall-time phase
        attribution summary.
    cyclesteal obs path [--l <lifespan>] [--c <overhead>] <trace.jsonl>
        Causal makespan analysis of one farm trace: the critical-path
        chunk chain, the phase attribution table (phases sum to
        workstations x makespan), the bitwise lost-work reconciliation,
        and a side-by-side of observed banked work per episode against
        the paper's expected-work prediction for the scenario's uniform
        life function (--l, default 150) and overhead (--c, default 2 —
        pass the values the farm ran with).
    cyclesteal obs chunks [--top <k>] <trace.jsonl>
        Per-chunk waterfall for one farm trace: the top-k chunks by
        service time (default 10) with queue wait, retries and waste,
        plus straggler and per-fate waste attribution tables.
    cyclesteal obs check [--strict] <trace.jsonl>
        Schema + invariant gate: run bracketing, balanced spans, monotone
        span/progress stamps, bitwise bank reconciliation. Non-zero exit
        on any violation. A torn final record (a crash mid-write, e.g. a
        killed journaled run) is reported as a warning and the rest of the
        trace is checked as an interrupted prefix; --strict makes the torn
        tail itself a failure.
    cyclesteal obs diff [--threshold <rel>] [--bench] [--only <substr>]
                        [--min <row>=<value>] <a> <b>
        Compare two traces' folded metrics (or, with --bench, two
        BENCH.json baselines, flagging only regressions). --only keeps
        just the rows whose metric name contains <substr> (repeatable;
        a row is kept when any filter matches) — the CI perf gate uses
        this to pin workload-independent rows like
        'farm_clean.events_per_sec' and 'spans.farm.dispatch.mean_ns'.
        --min asserts an absolute floor on the candidate side of the
        named row (repeatable, exact name, checked before --only
        filtering) — e.g. --min mc_scaling_4.speedup=2.5 is the
        parallel-efficiency gate. Non-zero exit when a kept change
        beyond the threshold (default 0.2) is flagged or a floor is
        missed.
    cyclesteal obs replay --journal <file> --to <record> [scenario flags]
        Time travel: deterministically re-execute the journaled run up to
        (and including) record <record>, verifying every record against
        the journal, and print the farm's reconstructed state there. The
        scenario flags (--workstations, --tasks, --seed, --faults, ...)
        must match the run that wrote the journal.
    cyclesteal obs replay --journal <file> --fork [scenario flags]
        What-if fork: restore <file>.snap and run the rest of the episode
        under the scenario the flags describe. Pass the original flags to
        reproduce the recorded outcome bitwise; perturb the fault flags
        (--faults, --loss, --slowdown, --crash) to ask what the same
        mid-run state would have done under different conditions.
        Both replay forms accept --generation <g> to pin the snapshot to
        ring generation <file>.snap.<g> (runs journaled with
        --snapshot-ring) instead of the newest usable snapshot; a
        GC-truncated journal replays from a retained generation
        automatically.";

/// Entry point: `args` is everything after the `obs` token. Returns
/// `Err` (non-zero exit) on usage errors, check violations, and flagged
/// diffs.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(one_path(&args[1..], "obs report")?),
        Some("path") => cmd_path(&args[1..]),
        Some("chunks") => cmd_chunks(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => Err(USAGE.to_string()),
    }
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest.iter().cloned()).map_err(|e| format!("obs replay: {e}"))?;
    if args.command.is_some() {
        return Err(format!(
            "obs replay takes only --key value options\n\n{USAGE}"
        ));
    }
    let mut allowed: Vec<&str> = FARM_SCENARIO_OPTS.to_vec();
    allowed.extend_from_slice(&["journal", "to", "fork", "generation"]);
    args.check_known(&allowed)?;
    let journal = args.require("journal")?.to_string();
    let fork = args.flag("fork");
    let to = match args.get("to") {
        None => None,
        Some(_) => Some(args.u64_or("to", 0)?),
    };
    if fork == to.is_some() {
        return Err(format!(
            "obs replay needs exactly one of --to <record> or --fork\n\n{USAGE}"
        ));
    }
    let generation = match args.get("generation") {
        None => None,
        Some(_) => {
            let g = args.u64_or("generation", 0)?;
            if g >= 64 {
                return Err("obs replay: --generation must be between 0 and 63".to_string());
            }
            Some(g as u32)
        }
    };
    let FarmScenario {
        config,
        bag,
        policy,
        ..
    } = farm_scenario_from_args(&args)?;
    if let Some(to) = to {
        let state = Farm::replay_to_from(config, bag, Path::new(&journal), to, generation)
            .map_err(|e| format!("obs replay: {e}"))?;
        println!(
            "journal       : {journal} ({} records)",
            state.total_records
        );
        println!("policy        : {}", policy.label());
        println!(
            "replayed to   : record {} (virtual time {:.2})",
            state.records, state.virtual_time
        );
        println!("episodes      : {} started", state.episodes);
        println!(
            "task bag      : {} pending, {} banked, {} chunks in flight",
            state.pending_tasks, state.banked_tasks, state.in_flight_chunks
        );
        println!(
            "work          : {:.1} banked, {:.1} lost",
            state.completed_work, state.lost_work
        );
    } else {
        let snap = match generation {
            Some(g) => ring_snapshot_path(Path::new(&journal), g),
            None => default_snapshot_path(Path::new(&journal)),
        };
        let (report, meta) =
            Farm::fork_from_snapshot(config, &snap).map_err(|e| format!("obs replay: {e}"))?;
        match generation {
            Some(g) => println!(
                "fork point    : {} (generation {g}, virtual time {:.2})",
                snap.display(),
                meta.virtual_time
            ),
            None => println!(
                "fork point    : {} (virtual time {:.2})",
                snap.display(),
                meta.virtual_time
            ),
        }
        println!(
            "snapshot      : seed {}, {} workstations, {} tasks, {} journal records",
            meta.seed, meta.workstations, meta.tasks, meta.journal_records
        );
        println!("policy        : {}", policy.label());
        println!("drained       : {}", report.drained);
        println!("makespan      : {:.2}", report.makespan);
        println!("banked work   : {:.1}", report.completed_work);
        println!("lost work     : {:.1}", report.lost_work);
        let rb = &report.robustness;
        println!(
            "faults        : {} lost msgs, {} stragglers, {} crashes, {} storm kills",
            rb.messages_lost, rb.straggled_chunks, rb.crashes, rb.storm_kills
        );
    }
    Ok(())
}

fn one_path<'a>(rest: &'a [String], what: &str) -> Result<&'a str, String> {
    match rest {
        [path] if !path.starts_with("--") => Ok(path),
        _ => Err(format!("{what} takes exactly one trace file\n\n{USAGE}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn analyze_file(path: &str) -> Result<TraceAnalysis, String> {
    let text = read(path)?;
    analyze_lines(text.lines()).map_err(|e| format!("{path}: {e}"))
}

fn lineage_file(path: &str) -> Result<LineageAnalysis, String> {
    let text = read(path)?;
    analyze_lineage_lines(text.lines()).map_err(|e| format!("{path}: {e}"))
}

/// The wall-time phase attribution table shared by `obs path` and
/// `obs report`: one row per phase, a TOTAL row, and each phase's share
/// of `workstations × makespan`. The totals sum to the wall by
/// construction — [`cs_obs::lineage`]'s invariant, re-rendered here.
fn phase_table(p: &PhaseAttribution) -> Table {
    let mut table = Table::new(&["phase", "time", "share"]);
    let wall = p.wall.max(f64::MIN_POSITIVE);
    for (label, v) in p.rows() {
        table.row(&[label.to_string(), fmt(v, 2), pct_of(v, wall)]);
    }
    table.row(&["TOTAL".to_string(), fmt(p.sum(), 2), pct_of(p.sum(), wall)]);
    table
}

fn pct_of(v: f64, of: f64) -> String {
    format!("{:.1}%", 100.0 * v / of)
}

/// Renders one chunk as a `[#id ws.. fate]` link for the critical-path
/// chain line.
fn chain_link(c: &cs_obs::ChunkRecord) -> String {
    format!("#{} (ws {}, {})", c.id, c.ws, c.fate.label())
}

fn cmd_path(rest: &[String]) -> Result<(), String> {
    let (flags, path) = flags_and_path(rest, "obs path", &["l", "c"])?;
    let l = parse_flag_f64(&flags, "l", 150.0)?;
    let c = parse_flag_f64(&flags, "c", 2.0)?;
    let a = lineage_file(path)?;
    println!("trace         : {path}");
    println!(
        "scenario      : {} workstations, {} tasks, seed {}",
        a.workstations, a.tasks, a.seed
    );
    for w in &a.warnings {
        println!("WARNING: {w}");
    }
    println!(
        "makespan      : {:.2} ({} chunks, {} episodes, run {})",
        a.phases.makespan,
        a.chunks.len(),
        a.episodes,
        if a.run_complete { "complete" } else { "torn" }
    );
    println!(
        "wall time     : {:.2} ({} workstations x makespan)",
        a.phases.wall, a.workstations
    );

    // The causal chain, earliest hop first: each step either waits on the
    // same workstation's previous chunk or rides a requeue from another
    // workstation's loss.
    println!("critical path : {} hops", a.critical_path.len());
    let mut chain = Table::new(&[
        "hop",
        "chunk",
        "ws",
        "dispatched",
        "resolved",
        "fate",
        "queue",
        "service",
        "retries",
    ]);
    for (hop, &id) in a.critical_path.iter().enumerate() {
        let c = &a.chunks[id];
        chain.row(&[
            hop.to_string(),
            format!("#{id}"),
            c.ws.to_string(),
            fmt(c.dispatched_at, 2),
            fmt(c.resolved_at, 2),
            c.fate.label().to_string(),
            fmt(c.queue_wait, 2),
            fmt(c.service, 2),
            c.retries.to_string(),
        ]);
    }
    println!("{}", chain.render());
    if let Some((first, last)) = a
        .critical_path
        .first()
        .zip(a.critical_path.last())
        .filter(|(f, l)| f != l)
    {
        println!(
            "chain         : {} -> ... -> {}",
            chain_link(&a.chunks[*first]),
            chain_link(&a.chunks[*last])
        );
    }

    println!("phase attribution (sums to wall time):");
    println!("{}", phase_table(&a.phases).render());
    if let Some(tail) = a.phases.end_game_tail {
        println!(
            "end-game tail : {:.2} from the first replica to the end of the run \
             (informational; contained in the phases above)",
            tail
        );
    }

    // Bitwise loss reconciliation against what the farm itself reported.
    match a.run_end_lost {
        Some(lost) => println!(
            "lost work     : {:.4} reconstructed vs {:.4} in run_end -> bitwise {}",
            a.lost_work,
            lost,
            if a.loss_reconciles() {
                "IDENTICAL"
            } else {
                "MISMATCH"
            }
        ),
        None => println!(
            "lost work     : {:.4} reconstructed (no run_end in a torn trace)",
            a.lost_work
        ),
    }

    // Side-by-side with the paper's prediction for the scenario's uniform
    // life function: expected banked work per episode from the guideline
    // schedule vs what the trace actually banked per episode.
    let life = cs_life::Uniform::new(l).map_err(|e| format!("--l: {e}"))?;
    let plan = cs_core::search::best_guideline_schedule(&life, c)
        .map_err(|e| format!("guideline plan (L={l}, c={c}): {e}"))?;
    let observed = a.banked / (a.episodes.max(1) as f64);
    println!(
        "model         : uniform L = {l}, c = {c} -> expected work/episode {:.4}",
        plan.expected_work
    );
    println!(
        "observed      : {:.1} banked over {} episodes -> {:.4}/episode ({} of model)",
        a.banked,
        a.episodes,
        observed,
        pct_of(observed, plan.expected_work.max(f64::MIN_POSITIVE))
    );
    if !a.loss_reconciles() {
        return Err(format!(
            "{path}: reconstructed lost work does not reconcile bitwise with run_end"
        ));
    }
    Ok(())
}

fn cmd_chunks(rest: &[String]) -> Result<(), String> {
    let (flags, path) = flags_and_path(rest, "obs chunks", &["top"])?;
    let top = parse_flag_f64(&flags, "top", 10.0)? as usize;
    let a = lineage_file(path)?;
    println!("trace         : {path}");
    println!(
        "scenario      : {} workstations, {} tasks, seed {} ({} chunks)",
        a.workstations,
        a.tasks,
        a.seed,
        a.chunks.len()
    );
    for w in &a.warnings {
        println!("WARNING: {w}");
    }

    // Top-k slowest chunks by service time: where the makespan's minutes
    // actually went.
    let mut by_service: Vec<&cs_obs::ChunkRecord> = a.chunks.iter().collect();
    by_service.sort_by(|x, y| {
        y.service
            .partial_cmp(&x.service)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.id.cmp(&y.id))
    });
    let shown = top.min(by_service.len());
    let mut slow = Table::new(&[
        "chunk",
        "ws",
        "tasks",
        "dispatched",
        "queue",
        "service",
        "fate",
        "retries",
        "banked",
        "wasted",
    ]);
    for c in &by_service[..shown] {
        slow.row(&[
            format!("#{}", c.id),
            c.ws.to_string(),
            c.tasks.to_string(),
            fmt(c.dispatched_at, 2),
            fmt(c.queue_wait, 2),
            fmt(c.service, 2),
            c.fate.label().to_string(),
            c.retries.to_string(),
            fmt(c.banked, 1),
            fmt(c.wasted, 1),
        ]);
    }
    println!("top {shown} chunks by service time:\n{}", slow.render());

    // Waste attribution by fate: every chunk lands in exactly one row, so
    // the work column sums to the total dispatched work.
    let mut fates: std::collections::BTreeMap<&'static str, (u64, f64, f64, f64)> =
        std::collections::BTreeMap::new();
    for c in &a.chunks {
        let e = fates.entry(c.fate.label()).or_default();
        e.0 += 1;
        e.1 += c.work;
        e.2 += c.banked;
        e.3 += c.wasted;
    }
    let mut waste = Table::new(&["fate", "chunks", "work", "banked", "wasted"]);
    for (label, (n, work, banked, wasted)) in &fates {
        waste.row(&[
            label.to_string(),
            n.to_string(),
            fmt(*work, 1),
            fmt(*banked, 1),
            fmt(*wasted, 1),
        ]);
    }
    println!("waste attribution by fate:\n{}", waste.render());

    // Stragglers and retries: the chunks that needed more than one try.
    let stragglers: Vec<&cs_obs::ChunkRecord> = a
        .chunks
        .iter()
        .filter(|ch| ch.retries > 0 || ch.timed_out || ch.replica || ch.winning_replica)
        .collect();
    if stragglers.is_empty() {
        println!("stragglers    : none (no retries, timeouts or replicas)");
    } else {
        let mut tbl = Table::new(&["chunk", "ws", "retries", "timed out", "replica", "fate"]);
        for ch in &stragglers {
            tbl.row(&[
                format!("#{}", ch.id),
                ch.ws.to_string(),
                ch.retries.to_string(),
                if ch.timed_out { "yes" } else { "-" }.to_string(),
                match (ch.winning_replica, ch.replica) {
                    (true, _) => "won",
                    (false, true) => "yes",
                    (false, false) => "-",
                }
                .to_string(),
                ch.fate.label().to_string(),
            ]);
        }
        println!(
            "stragglers    : {} chunk(s) needed retries, timed out, or raced a replica\n{}",
            stragglers.len(),
            tbl.render()
        );
    }
    println!(
        "totals        : {} requeues, {} replicas, {} dispatch-time crashes",
        a.requeues, a.replicas, a.dispatch_crashes
    );
    Ok(())
}

/// `--key value` pairs parsed ahead of a lineage subcommand's positional
/// trace path.
type ParsedFlags = Vec<(String, String)>;

/// Parses `[--key value ...] <trace>` for the lineage subcommands: only
/// the listed keys are legal, exactly one positional path is required.
fn flags_and_path<'a>(
    rest: &'a [String],
    what: &str,
    keys: &[&str],
) -> Result<(ParsedFlags, &'a str), String> {
    let mut flags = Vec::new();
    let mut path: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                if !keys.contains(&key) {
                    return Err(format!("{what}: unknown option {flag}\n\n{USAGE}"));
                }
                let v = it
                    .next()
                    .ok_or_else(|| format!("{what}: {flag} needs a value"))?;
                flags.push((key.to_string(), v.clone()));
            }
            p if path.is_none() => path = Some(p),
            _ => return Err(format!("{what} takes exactly one trace file\n\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("{what} takes exactly one trace file\n\n{USAGE}"))?;
    Ok((flags, path))
}

fn parse_flag_f64(flags: &ParsedFlags, key: &str, default: f64) -> Result<f64, String> {
    match flags.iter().rev().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, v)) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
    }
}

fn cmd_report(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let a = analyze_lines(text.lines()).map_err(|e| format!("{path}: {e}"))?;
    println!("trace         : {path}");
    println!(
        "events        : {} lines, {} complete runs (schema v{})",
        a.lines,
        a.runs,
        cs_obs::SCHEMA_VERSION
    );
    let mut kinds = Table::new(&["event kind", "count"]);
    for (kind, n) in &a.kind_counts {
        kinds.row(&[kind.clone(), n.to_string()]);
    }
    println!("{}", kinds.render());
    if !a.per_ws.is_empty() {
        let mut ws = Table::new(&["ws", "banked", "duplicate", "lost", "banks", "dispatches"]);
        for (id, row) in &a.per_ws {
            ws.row(&[
                id.to_string(),
                fmt(row.banked, 1),
                fmt(row.duplicate, 1),
                fmt(row.lost, 1),
                row.banks.to_string(),
                row.dispatches.to_string(),
            ]);
        }
        println!("per-workstation attribution:\n{}", ws.render());
    }
    if !a.span_tree.is_empty() {
        let mut spans = Table::new(&[
            "span", "count", "total ms", "mean ms", "p50 ms", "p90 ms", "p99 ms",
        ]);
        for node in &a.span_tree {
            let h = &node.hist;
            let ms = |v: Option<f64>| fmt_opt(v.map(|ns| ns / 1e6), 3);
            spans.row(&[
                format!("{}{}", "  ".repeat(node.depth), node.name),
                h.count().to_string(),
                fmt(h.sum() / 1e6, 3),
                ms(h.mean()),
                ms(h.quantile(0.50)),
                ms(h.quantile(0.90)),
                ms(h.quantile(0.99)),
            ]);
        }
        println!("span timing tree (wall clock):\n{}", spans.render());
    }
    if let Some(pool) = pool_table(&a.registry) {
        println!("worker pool (from the trace's folded registry):\n{pool}");
    }
    // Farm traces also get the lineage phase summary; other trace shapes
    // (episode sims, Monte-Carlo sweeps) simply don't reconstruct.
    if let Ok(lin) = analyze_lineage_lines(text.lines()) {
        println!(
            "phase attribution ({} chunks; run `obs path` for the critical path):\n{}",
            lin.chunks.len(),
            phase_table(&lin.phases).render()
        );
    }
    Ok(())
}

/// Renders the `pool.*` scheduling counters when the trace's folded
/// registry carries them (a pooled run that folded the work-stealing
/// pool's `PoolMetrics` into its metrics). Returns `None` — and
/// `obs report` prints nothing — for the common single-threaded trace.
fn pool_table(reg: &cs_obs::MetricsRegistry) -> Option<String> {
    let mut rows: Vec<(String, String)> = reg
        .counters()
        .filter(|(k, _)| k.starts_with("pool."))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    rows.extend(
        reg.gauges()
            .filter(|(k, _)| k.starts_with("pool."))
            .map(|(k, v)| (k.to_string(), fmt(v, 0))),
    );
    rows.extend(
        reg.histograms()
            .filter(|(k, _)| k.starts_with("pool."))
            .map(|(k, h)| {
                (
                    k.to_string(),
                    format!(
                        "{} samples, mean {}, max {}",
                        h.count(),
                        fmt_opt(h.mean(), 2),
                        fmt_opt(h.max(), 0)
                    ),
                )
            }),
    );
    if rows.is_empty() {
        return None;
    }
    rows.sort();
    let mut table = Table::new(&["pool metric", "value"]);
    for (k, v) in rows {
        table.row(&[k, v]);
    }
    Some(table.render())
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let mut strict = false;
    let mut path: Option<&str> = None;
    for tok in rest {
        match tok.as_str() {
            "--strict" => strict = true,
            p if p.starts_with("--") => {
                return Err(format!("obs check: unknown option {p}\n\n{USAGE}"))
            }
            p if path.is_none() => path = Some(p),
            _ => return Err(format!("obs check takes exactly one trace file\n\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("obs check takes exactly one trace file\n\n{USAGE}"))?;
    let text = read(path)?;
    let s = check_text(&text, strict);
    println!(
        "checked       : {} events, {} runs ({} bank-reconciled), {} spans",
        s.lines, s.runs, s.reconciled_runs, s.spans
    );
    if let Some(warn) = &s.torn_tail {
        println!("WARNING: {warn} (interrupted-run prefix tolerated; --strict fails)");
    }
    if s.ok() {
        println!("PASS: every invariant holds");
        Ok(())
    } else {
        for v in &s.violations {
            println!("VIOLATION: {v}");
        }
        Err(format!(
            "{path}: {} invariant violation(s)",
            s.violations.len()
        ))
    }
}

fn cmd_diff(rest: &[String]) -> Result<(), String> {
    let mut threshold = 0.2f64;
    let mut bench = false;
    let mut only: Vec<String> = Vec::new();
    let mut mins: Vec<(String, f64)> = Vec::new();
    let mut paths: Vec<&str> = Vec::new();
    let mut it = rest.iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--bench" => bench = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold: bad number {v:?}"))?;
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a substring")?;
                only.push(v.clone());
            }
            "--min" => {
                let v = it.next().ok_or("--min needs <row>=<value>")?;
                let (name, floor) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--min: expected <row>=<value>, got {v:?}"))?;
                let floor: f64 = floor
                    .parse()
                    .map_err(|_| format!("--min {name}: bad number {floor:?}"))?;
                mins.push((name.to_string(), floor));
            }
            p if !p.starts_with("--") => paths.push(p),
            other => return Err(format!("obs diff: unknown option {other}\n\n{USAGE}")),
        }
    }
    let [a, b] = paths[..] else {
        return Err(format!("obs diff takes exactly two files\n\n{USAGE}"));
    };
    let mut rows = if bench {
        diff_bench(&read(a)?, &read(b)?, threshold)?
    } else {
        diff_registries(
            &analyze_file(a)?.registry,
            &analyze_file(b)?.registry,
            threshold,
        )
    };
    // Absolute floors run against the full row set (before --only
    // filtering) and look at the candidate side only: a gate like
    // `--min mc_scaling_4.speedup=2.5` must fail loudly when the row is
    // missing, not silently pass.
    let mut floor_misses = Vec::new();
    for (name, floor) in &mins {
        match rows.iter().find(|r| &r.name == name) {
            None => floor_misses.push(format!("--min {name}: no such row in the diff")),
            Some(r) if r.b.is_nan() || r.b < *floor => floor_misses.push(format!(
                "--min {name}: candidate {} below floor {floor}",
                fmt(r.b, 4)
            )),
            Some(r) => println!("min ok: {name} = {} (floor {floor})", fmt(r.b, 4)),
        }
    }
    if !only.is_empty() {
        rows.retain(|r| only.iter().any(|f| r.name.contains(f.as_str())));
        if rows.is_empty() {
            return Err(format!(
                "obs diff: no metric matched --only {:?} (check the row names)",
                only
            ));
        }
    }
    let flagged = rows.iter().filter(|r| r.flagged).count();
    if flagged > 0 {
        let mut table = Table::new(&["metric", "baseline", "candidate", "change"]);
        for row in rows.iter().filter(|r| r.flagged) {
            table.row(&[
                row.name.clone(),
                fmt(row.a, 4),
                fmt(row.b, 4),
                rel_display(row),
            ]);
        }
        println!("flagged changes:\n{}", table.render());
    }
    if !floor_misses.is_empty() {
        return Err(format!(
            "floor violations:\n  {}",
            floor_misses.join("\n  ")
        ));
    }
    if flagged == 0 {
        println!(
            "PASS: {} metrics compared, none beyond threshold {threshold}",
            rows.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{flagged} of {} metrics beyond threshold {threshold}",
            rows.len()
        ))
    }
}

fn rel_display(row: &DiffRow) -> String {
    if row.rel.is_nan() {
        "n/a".to_string()
    } else if row.rel.is_infinite() {
        format!("{}inf", if row.rel > 0.0 { "+" } else { "-" })
    } else {
        format!("{:+.1}%", row.rel * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_name_the_subcommand() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("obs report"), "{err}");
        let err = run(&["report".to_string()]).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&["diff".to_string(), "a".to_string()]).unwrap_err();
        assert!(err.contains("exactly two files"), "{err}");
    }

    #[test]
    fn check_parses_strict_and_rejects_extras() {
        let err = run(&["check".to_string()]).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&[
            "check".to_string(),
            "a.jsonl".to_string(),
            "b.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&[
            "check".to_string(),
            "--struct".to_string(),
            "a.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown option --struct"), "{err}");
        // --strict itself parses; the error is then the missing file.
        let err = run(&[
            "check".to_string(),
            "--strict".to_string(),
            "/no/such/trace.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
    }

    #[test]
    fn path_and_chunks_validate_their_flag_grammar() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let err = run(&to_args("path")).unwrap_err();
        assert!(
            err.contains("obs path takes exactly one trace file"),
            "{err}"
        );
        let err = run(&to_args("path a.jsonl b.jsonl")).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&to_args("path --lifespans 10 a.jsonl")).unwrap_err();
        assert!(err.contains("unknown option --lifespans"), "{err}");
        let err = run(&to_args("path --l a.jsonl")).unwrap_err();
        assert!(err.contains("exactly one trace file"), "{err}");
        let err = run(&to_args("path --l nope a.jsonl")).unwrap_err();
        assert!(err.contains("--l: bad number"), "{err}");
        let err = run(&to_args("path --l 150 --c 2 /no/such/trace.jsonl")).unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
        let err = run(&to_args("chunks --top k a.jsonl")).unwrap_err();
        assert!(err.contains("--top: bad number"), "{err}");
        let err = run(&to_args("chunks --strict a.jsonl")).unwrap_err();
        assert!(err.contains("unknown option --strict"), "{err}");
        let err = run(&to_args("chunks /no/such/trace.jsonl")).unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
    }

    #[test]
    fn pool_table_is_presence_keyed() {
        let mut reg = cs_obs::MetricsRegistry::new();
        reg.counter_add("farm.dispatches", 3);
        assert!(pool_table(&reg).is_none(), "no pool rows -> no section");
        reg.counter_add("pool.tasks", 22);
        reg.counter_add("pool.steals", 4);
        reg.gauge_set("pool.threads", 4.0);
        reg.observe("pool.steal_batch", 2.0);
        let table = pool_table(&reg).expect("pool rows render");
        assert!(table.contains("pool.tasks"), "{table}");
        assert!(table.contains("pool.threads"), "{table}");
        assert!(table.contains("pool.steal_batch"), "{table}");
        assert!(!table.contains("farm.dispatches"), "{table}");
    }

    #[test]
    fn replay_validates_its_flag_grammar() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let err = run(&to_args("replay")).unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        let err = run(&to_args("replay --journal j.jsonl")).unwrap_err();
        assert!(
            err.contains("exactly one of --to <record> or --fork"),
            "{err}"
        );
        let err = run(&to_args("replay --journal j.jsonl --to 3 --fork")).unwrap_err();
        assert!(
            err.contains("exactly one of --to <record> or --fork"),
            "{err}"
        );
        // Scenario flags get the same did-you-mean treatment as `farm`.
        let err = run(&to_args("replay --journal j.jsonl --to 3 --taskss 50")).unwrap_err();
        assert!(err.contains("did you mean --tasks?"), "{err}");
        // A well-formed invocation over a missing journal is a clean error.
        let err = run(&to_args("replay --journal /no/such/j.jsonl --to 3")).unwrap_err();
        assert!(err.contains("obs replay"), "{err}");
        // --generation is range-checked against the ring-scan cap.
        let err = run(&to_args("replay --journal j.jsonl --fork --generation 64")).unwrap_err();
        assert!(err.contains("between 0 and 63"), "{err}");
        // A pinned generation over a missing sidecar is a clean error too.
        let err = run(&to_args(
            "replay --journal /no/such/j.jsonl --fork --generation 2",
        ))
        .unwrap_err();
        assert!(err.contains("obs replay"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&["check".to_string(), "/no/such/trace.jsonl".to_string()]).unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
    }

    #[test]
    fn diff_only_filters_rows_and_rejects_empty_matches() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("cs_obs_diff_only_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        // s1 regresses on wall time; s2 is clean.
        std::fs::write(
            &a,
            r#"{"commit":"a","date":"d","scenarios":[
                {"id":"s1","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null},
                {"id":"s2","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null}]}"#,
        )
        .unwrap();
        std::fs::write(
            &b,
            r#"{"commit":"b","date":"d","scenarios":[
                {"id":"s1","wall_ns":9000,"events_per_sec":500,"mc_trials_per_sec":null},
                {"id":"s2","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null}]}"#,
        )
        .unwrap();
        let (a, b) = (a.display().to_string(), b.display().to_string());
        // Unfiltered: the s1 wall regression fails the diff.
        let err = run(&to_args(&format!("diff --bench {a} {b}"))).unwrap_err();
        assert!(err.contains("beyond threshold"), "{err}");
        // Filtered to s2 rows only: the regression is out of scope.
        run(&to_args(&format!("diff --bench --only s2. {a} {b}"))).unwrap();
        // Several filters are OR'd: adding the regressing row fails again.
        let err = run(&to_args(&format!(
            "diff --bench --only s2. --only s1.wall_ns {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("beyond threshold"), "{err}");
        // A filter matching nothing is an error, not a silent PASS.
        let err = run(&to_args(&format!("diff --bench --only nope {a} {b}"))).unwrap_err();
        assert!(err.contains("no metric matched"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_min_enforces_absolute_floors_on_the_candidate() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join(format!("cs_obs_diff_min_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        // The candidate's speedup improves (no relative regression), so
        // only the absolute floor can fail the gate.
        std::fs::write(
            &a,
            r#"{"commit":"a","date":"d","scenarios":[
                {"id":"mc_scaling_4","wall_ns":1000,"events_per_sec":null,
                 "mc_trials_per_sec":500,"speedup":1.0,"efficiency":0.25}]}"#,
        )
        .unwrap();
        std::fs::write(
            &b,
            r#"{"commit":"b","date":"d","scenarios":[
                {"id":"mc_scaling_4","wall_ns":1000,"events_per_sec":null,
                 "mc_trials_per_sec":500,"speedup":2.0,"efficiency":0.5}]}"#,
        )
        .unwrap();
        let (a, b) = (a.display().to_string(), b.display().to_string());
        // Floor met: 2.0 >= 1.5 passes.
        run(&to_args(&format!(
            "diff --bench --min mc_scaling_4.speedup=1.5 {a} {b}"
        )))
        .unwrap();
        // Floor missed: 2.0 < 2.5 fails, even though the relative diff
        // shows an improvement.
        let err = run(&to_args(&format!(
            "diff --bench --min mc_scaling_4.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("below floor 2.5"), "{err}");
        // The floor is checked before --only filtering drops its row.
        let err = run(&to_args(&format!(
            "diff --bench --only wall_ns --min mc_scaling_4.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("below floor 2.5"), "{err}");
        // A floor naming a missing row is an error, not a silent pass.
        let err = run(&to_args(&format!(
            "diff --bench --min nope.speedup=2.5 {a} {b}"
        )))
        .unwrap_err();
        assert!(err.contains("no such row"), "{err}");
        // Malformed floors are usage errors.
        let err = run(&to_args(&format!("diff --bench --min nope {a} {b}"))).unwrap_err();
        assert!(err.contains("expected <row>=<value>"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rel_display_handles_special_values() {
        let row = |rel: f64| DiffRow {
            name: String::new(),
            a: 0.0,
            b: 0.0,
            rel,
            flagged: false,
        };
        assert_eq!(rel_display(&row(0.5)), "+50.0%");
        assert_eq!(rel_display(&row(-0.25)), "-25.0%");
        assert_eq!(rel_display(&row(f64::INFINITY)), "+inf");
        assert_eq!(rel_display(&row(f64::NAN)), "n/a");
    }
}
