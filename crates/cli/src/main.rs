//! `cyclesteal` — command-line planner for data-parallel cycle-stealing.
//!
//! ```text
//! cyclesteal plan     --family uniform --l 1000 --c 5
//! cyclesteal simulate --family geometric --a 2 --c 1 --trials 100000 --threads 4
//! cyclesteal fit      --input absences.txt --c 1
//! cyclesteal fit      --synthetic diurnal --days 60 --c 0.05
//! cyclesteal farm     --workstations 8 --tasks 2000 --l 150 --c 2 --policy guideline
//! cyclesteal exp      --id exp_4_2_geometric --quick
//! ```
//!
//! See `cyclesteal help` for the full option list.

mod args;
mod obs_cmd;

use args::Args;
use cs_apps::{fmt, pct, Table};
use cs_bench::harness::{by_id, run_to_writer, ExpOptions};
use cs_core::{dp, search};
use cs_life::LifeFunction;
use cs_now::farm::{Farm, FarmConfig, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::{
    guideline_fsync_policy, guideline_snapshot_interval, IoErrorPolicy, JournalOptions,
    SnapshotOutcome,
};
use cs_obs::{JsonlSink, MetricsSink, ProgressSink, RunSummary, SpanProfiler, TeeSink};
use cs_scenarios::{LifeSpec, PolicyParseError, LIFE_OPTS};
use cs_tasks::{workloads, TaskBag};
use cs_trace::{estimate::estimate_life, fit::fit_all, owner::DiurnalOwner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const HELP: &str = "\
cyclesteal — scheduling guidelines for data-parallel cycle-stealing
(Rosenberg, IPPS'98 reproduction)

USAGE:
    cyclesteal <command> [--option value ...]

COMMANDS:
    plan       Compute the guideline schedule for one episode.
               --family uniform|poly|geometric|increasing|pareto|weibull
               family params: --l, --d, --a, --half-life, --k, --lambda
               --c <overhead>           communication overhead (required)
               --oracle                 also run the DP oracle for comparison
    simulate   Monte-Carlo validation of the planned schedule.
               (plan options) --trials <n> --threads <k> --seed <s>
               --trace-out <file>       write the event stream as JSONL
               --metrics                print the folded metrics registry
               --profile                time internal phases (span profiler)
               --progress-every <s>     RUN-PROGRESS heartbeats on stderr
                                        every s wall-clock seconds (0 = every
                                        event); pass-through, output identical
    fit        Fit life functions to absence durations.
               --input <file>           one duration per line
               --synthetic diurnal --days <n> [--seed <s>]
               --c <overhead>           also plan on the best fit
    farm       Run the virtual-time NOW farm.
               --workstations <n> --tasks <m> --l <lifespan> --c <overhead>
               --policy guideline|greedy|fixed:<t> --gap <mean> --seed <s>
               fault injection (all optional, applied to every workstation):
               --faults <intensity>     canonical escalation of every class
               --loss <p>               dispatch/result loss probability
               --slowdown <f>           multiplicative straggler factor (>= 1)
               --crash <rate>           permanent-crash hazard rate
               --storms <t1,t2,...>     correlated reclaim-storm times
               --trace-out <file>       write the event stream as JSONL
               --metrics                print the folded metrics registry
               --profile                time master phases (span profiler)
               durability (journal and resume are mutually exclusive, and
               neither combines with --trace-out/--metrics/--profile):
               --journal <file>         run with a durable write-ahead journal
               --resume <file>          recover an interrupted journaled run
                                        (restores <file>.snap when present;
                                        falls back to full replay with a
                                        warning when missing or corrupt)
               --kill-after <n>         crash drill: abort the process after
                                        n committed journal records
               --snapshot-every <dt>    state-snapshot cadence in virtual
                                        time (needs --journal or --resume;
                                        default: the saves guideline)
               --snapshot-ring <n>      keep n snapshot generations
                                        (<file>.snap.0..n-1) instead of one
                                        sidecar (needs --journal/--resume;
                                        default 1 = legacy <file>.snap)
               --journal-gc             prune journal records the oldest
                                        retained generation makes redundant
                                        (bounded disk; needs
                                        --snapshot-ring >= 2)
               --on-io-error <policy>   fail-stop (default: any journal I/O
                                        error aborts with a non-zero exit)
                                        or degrade (finish the run in-memory
                                        with a warning and a flagged
                                        RUN-SUMMARY)
               --progress-every <s>     RUN-PROGRESS heartbeats on stderr
                                        (journaled runs heartbeat from the
                                        journal driver; pass-through either
                                        way)
    chaos      Kill-anywhere proof: journal a faulty farm, kill the master
               at record boundaries, resume — through the snapshot fast
               path, a corrupted sidecar, and full redo — and demand
               bitwise-identical reports and a byte-identical stitched
               journal.
               --workstations <n> --tasks <m> --seed <s>
               --faults <intensity>     canonical escalation (as farm)
               --sample <k>             kill at k spread boundaries (default:
                                        every record boundary)
               --snapshot-every <dt>    reference-run snapshot cadence in
                                        virtual time (default 10)
               --quick                  small farm + sampled kills (CI smoke)
               --disk-faults            additionally resume each kill point
                                        through a seeded faulty filesystem
                                        (failed/short writes, fsync errors,
                                        rename failures, ENOSPC; fail-stop
                                        and degrade policies) and demand a
                                        bitwise report or the typed injected
                                        error
               --threads <n>            run kill/resume trials on the
                                        work-stealing pool (default: available
                                        parallelism; 1 = serial, identical
                                        outcome either way)
               --progress-every <s>     heartbeat the reference journaled run
                                        (trials stay quiet)
    saves      Checkpoint-interval planning under Poisson faults.
               --work <w> --c <save cost> --lambda <fault rate>
    exp        Run registered paper experiments (crates/bench registry).
               --list                   show every experiment id
               --id <exp_id>            run one experiment by id
               --all                    run every experiment in paper order
               --quick                  shrink Monte-Carlo budgets (CI smoke)
               --trace-out <file>       write the event stream as JSONL
               --input <file>           experiment input (exp_obs_validate)
               --threads <n>            with --all: run experiments
                                        concurrently on the work-stealing
                                        pool, output buffered per experiment
                                        (bytes identical to serial; default:
                                        available parallelism; forced serial
                                        with --trace-out)
               --progress-every <s>     RUN-PROGRESS heartbeats on stderr for
                                        observed runs; with --trace-out also
                                        line-buffers the trace for tail -f
    obs        Analyze recorded traces and perf baselines.
               report <trace.jsonl>     event counts, span tree, attribution,
                                        pool counters, phase summary
               path [--l <L>] [--c <c>] <trace.jsonl>
                                        critical-path chain + wall-time phase
                                        attribution for a farm trace, with
                                        bitwise lost-work reconciliation and
                                        an expected-work side-by-side
               chunks [--top <k>] <trace.jsonl>
                                        per-chunk waterfall: top-k slowest,
                                        stragglers, waste by fate
               check [--strict] <trace.jsonl>
                                        invariant gate (non-zero exit on fail);
                                        a torn final record is a warning
                                        unless --strict
               diff [--threshold <rel>] [--bench] <a> <b>
                                        flag metric/baseline regressions
               replay --journal <file> --to <record> [farm scenario flags]
                                        time travel: reconstruct the farm's
                                        state as of a journal record
               replay --journal <file> --fork [farm scenario flags]
                                        what-if: restore <file>.snap under a
                                        (possibly perturbed) fault plan and
                                        run the rest of the episode
               replay ... --generation <g>
                                        pin --to/--fork to ring generation
                                        <file>.snap.<g> instead of the
                                        newest usable snapshot
    help       Show this message.
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `obs` takes positional file arguments, which the `--key value`
    // grammar of Args rejects — dispatch it on the raw argv.
    if raw.first().map(String::as_str) == Some("obs") {
        return match obs_cmd::run(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("plan") => cmd_plan(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("fit") => cmd_fit(&args),
        Some("farm") => cmd_farm(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("saves") => cmd_saves(&args),
        Some("exp") => cmd_exp(&args),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds a life function from `--family` + parameter flags. The grammar,
/// defaults and error messages live in [`cs_scenarios::LifeSpec`] now; this
/// wrapper just feeds it the argument table.
fn parse_life(args: &Args) -> Result<cs_life::ArcLife, String> {
    LifeSpec::from_lookup(|key| args.get(key))?.build()
}

/// Rejects unknown options, allowing the life-spec options plus `extra`.
fn check_known_with_life(args: &Args, extra: &[&str]) -> Result<(), String> {
    let mut allowed: Vec<&str> = LIFE_OPTS.to_vec();
    allowed.extend_from_slice(extra);
    args.check_known(&allowed)
}

/// Renders an optional 95% CI half-width ([`cs_sim::Summary::ci95`]):
/// `"n/a"` when fewer than two samples make the CI undefined, so a
/// single-trial run prints `± n/a` instead of `± NaN`.
fn ci_display(ci: Option<f64>) -> String {
    match ci {
        Some(half) => format!("{half:.4}"),
        None => "n/a".to_string(),
    }
}

/// The `model agrees` verdict. With fewer than two samples the standard
/// error is NaN and every comparison is false, so the old code reported a
/// spurious `NO`; that case now reports its own line.
fn agreement_verdict(mean: f64, expected: f64, std_error: f64, n: u64) -> &'static str {
    if n < 2 {
        "insufficient samples (need >= 2 episodes)"
    } else if (mean - expected).abs() <= 3.0 * std_error + 1e-9 {
        "yes (within 3 s.e.)"
    } else {
        "NO"
    }
}

/// Parses the `--progress-every <seconds>` heartbeat cadence (`0` = every
/// event; `None` = heartbeats off).
fn progress_every_from_args(args: &Args) -> Result<Option<f64>, String> {
    match args.get("progress-every") {
        None => Ok(None),
        Some(_) => {
            let every = args.f64_or("progress-every", 0.0)?;
            if !every.is_finite() || every < 0.0 {
                return Err(
                    "--progress-every: cadence must be a finite non-negative number of seconds"
                        .into(),
                );
            }
            Ok(Some(every))
        }
    }
}

/// The JSONL / metrics / heartbeat sinks behind `--trace-out`,
/// `--metrics` and `--progress-every`.
struct TraceOutputs {
    jsonl: Option<(String, JsonlSink)>,
    metrics: Option<MetricsSink>,
    progress: Option<ProgressSink<std::io::Stderr>>,
}

impl TraceOutputs {
    fn from_args(args: &Args) -> Result<Self, String> {
        let progress_every = progress_every_from_args(args)?;
        let jsonl = match args.get("trace-out") {
            Some(path) => {
                let mut sink =
                    JsonlSink::create(path).map_err(|e| format!("--trace-out {path}: {e}"))?;
                if progress_every.is_some() {
                    // A heartbeating run is being watched live: switch the
                    // trace to line-buffered writes so `tail -f` sees
                    // events as they happen instead of 4096-line batches.
                    sink = sink.flush_every(1);
                }
                Some((path.to_string(), sink))
            }
            None => None,
        };
        let metrics = args.flag("metrics").then(MetricsSink::new);
        let progress = progress_every.map(|every| ProgressSink::new(std::io::stderr(), every));
        Ok(Self {
            jsonl,
            metrics,
            progress,
        })
    }

    /// A tee over whichever sinks were requested (empty tee = no-op).
    fn tee(&mut self) -> TeeSink<'_> {
        let mut tee = TeeSink::new();
        if let Some((_, sink)) = self.jsonl.as_mut() {
            tee.push(sink);
        }
        if let Some(sink) = self.metrics.as_mut() {
            tee.push(sink);
        }
        if let Some(sink) = self.progress.as_mut() {
            tee.push(sink);
        }
        tee
    }

    /// Closes the JSONL file (surfacing deferred I/O errors), prints the
    /// metrics registry, and emits a closing heartbeat.
    fn finish(self) -> Result<(), String> {
        if let Some((path, sink)) = self.jsonl {
            let lines = sink
                .finish()
                .map_err(|e| format!("--trace-out {path}: {e}"))?;
            println!("trace written : {lines} events -> {path}");
        }
        if let Some(metrics) = self.metrics {
            print!("{}", metrics.registry.render());
        }
        if let Some(mut progress) = self.progress {
            // The final totals, so even a sub-cadence run reports once.
            progress.emit_heartbeat();
        }
        Ok(())
    }
}

/// The span profiler behind `--profile` (inert when the flag is absent).
fn profiler_from_args(args: &Args) -> SpanProfiler {
    if args.flag("profile") {
        SpanProfiler::new()
    } else {
        SpanProfiler::disabled()
    }
}

/// Prints the `--profile` span registry (no-op for a disabled profiler).
fn print_profile(mut prof: SpanProfiler) {
    if prof.is_enabled() {
        print!(
            "-- span profile (wall clock) --\n{}",
            prof.take_registry().render()
        );
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    check_known_with_life(args, &["c", "oracle"])?;
    let life = parse_life(args)?;
    let c: f64 = args.require_f64("c")?;
    let plan = search::best_guideline_schedule(&life, c).map_err(|e| e.to_string())?;
    println!("life function : {}", life.describe());
    println!("overhead c    : {c}");
    println!(
        "t0 bracket    : [{:.4}, {:.4}]  ({})",
        plan.bracket.lower,
        plan.bracket.upper,
        if plan.bracket.upper_from_shape {
            "Thm 3.2 / Thm 3.3"
        } else {
            "Thm 3.2 / horizon"
        }
    );
    println!("chosen t0     : {:.4}", plan.t0);
    println!("schedule      : {}", plan.schedule);
    println!("periods       : {}", plan.schedule.len());
    println!("expected work : {:.4}", plan.expected_work);
    if args.flag("oracle") {
        let oracle = dp::solve_auto(&life, c, 4000).map_err(|e| e.to_string())?;
        println!(
            "dp oracle     : E = {:.4} (guideline efficiency {})",
            oracle.expected_work,
            pct(plan.expected_work / oracle.expected_work.max(1e-300))
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    check_known_with_life(
        args,
        &[
            "c",
            "trials",
            "threads",
            "seed",
            "trace-out",
            "metrics",
            "profile",
            "progress-every",
        ],
    )?;
    let life = parse_life(args)?;
    let c: f64 = args.require_f64("c")?;
    let trials = args.u64_or("trials", 100_000)?;
    let threads = args.usize_or("threads", 4)?;
    let seed = args.u64_or("seed", 42)?;
    let plan = search::best_guideline_schedule(&life, c).map_err(|e| e.to_string())?;
    let mut trace = TraceOutputs::from_args(args)?;
    let mut prof = profiler_from_args(args);
    let (mc, pool) = cs_sim::simulate_expected_work_parallel_metrics(
        &plan.schedule,
        &life,
        c,
        trials,
        seed,
        threads,
        trace.tee(),
        &mut prof,
    );
    if let Some(pm) = &pool {
        if let Some(metrics) = trace.metrics.as_mut() {
            pm.fold_into(&mut metrics.registry);
        }
    }
    println!("life function  : {}", life.describe());
    println!("schedule       : {}", plan.schedule);
    println!("analytic E     : {:.4}", plan.expected_work);
    println!(
        "simulated mean : {:.4} ± {} (95% CI, {} episodes, {} threads)",
        mc.work.mean(),
        ci_display(mc.work.ci95()),
        trials,
        threads
    );
    println!("interrupted    : {}", pct(mc.interrupted_fraction));
    println!("mean periods   : {:.2}", mc.mean_periods);
    if let Some(pm) = &pool {
        println!(
            "worker pool    : {} threads, {} tasks run, {} steals ({} tasks stolen), \
             {} parks",
            pm.threads, pm.tasks, pm.steals, pm.stolen_tasks, pm.parks
        );
    }
    println!(
        "model agrees   : {}",
        agreement_verdict(
            mc.work.mean(),
            plan.expected_work,
            mc.work.std_error(),
            mc.work.count()
        )
    );
    print_profile(prof);
    trace.finish()
}

fn cmd_fit(args: &Args) -> Result<(), String> {
    args.check_known(&["input", "synthetic", "days", "seed", "c"])?;
    let samples: Vec<f64> = if let Some(path) = args.get("input") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--input {path}: {e}"))?;
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push(
                line.parse::<f64>()
                    .map_err(|_| format!("{path}:{}: not a number: {line:?}", lineno + 1))?,
            );
        }
        out
    } else if args.get("synthetic") == Some("diurnal") {
        let days = args.usize_or("days", 60)?;
        let seed = args.u64_or("seed", 1)?;
        let mut rng = StdRng::seed_from_u64(seed);
        DiurnalOwner::default()
            .absence_durations(days, &mut rng)
            .map_err(|e| e.to_string())?
    } else {
        return Err("fit needs --input <file> or --synthetic diurnal".into());
    };
    println!("{} absence durations", samples.len());
    let est = estimate_life(&samples, 24).map_err(|e| e.to_string())?;
    println!("empirical estimate: {}", est.describe());
    let mut table = Table::new(&["family", "KS distance", "description"]);
    let fits = fit_all(&samples).map_err(|e| e.to_string())?;
    for cand in &fits {
        table.row(&[cand.family.clone(), fmt(cand.ks, 4), cand.life.describe()]);
    }
    println!("{}", table.render());
    if let Some(c) = args.get("c") {
        let c: f64 = c.parse().map_err(|_| "--c: bad number".to_string())?;
        let plan = search::best_guideline_schedule(&est, c).map_err(|e| e.to_string())?;
        println!("guideline plan on the empirical estimate (c = {c}):");
        println!("  schedule      : {}", plan.schedule);
        println!("  expected work : {:.4}", plan.expected_work);
    }
    Ok(())
}

fn cmd_saves(args: &Args) -> Result<(), String> {
    args.check_known(&["work", "c", "lambda"])?;
    let w = args.f64_or("work", 100.0)?;
    let c: f64 = args.require_f64("c")?;
    let lambda: f64 = args.require_f64("lambda")?;
    let s_opt = cs_saves::optimal_interval(c, lambda).map_err(|e| e.to_string())?;
    let s_young = cs_saves::young_interval(c, lambda);
    let s_guide = cs_saves::guideline_interval(c, lambda).map_err(|e| e.to_string())?;
    let (n, makespan) = cs_saves::optimal_schedule(w, c, lambda).map_err(|e| e.to_string())?;
    println!("job work          : {w}");
    println!("save cost         : {c}");
    println!(
        "fault rate lambda : {lambda} (mean time between faults {:.2})",
        1.0 / lambda
    );
    println!("optimal interval  : {s_opt:.4}");
    println!("young sqrt(2c/l)  : {s_young:.4}");
    println!("cycle-steal guide : {s_guide:.4}");
    println!("optimal schedule  : {n} saves, expected makespan {makespan:.2}");
    println!(
        "no-checkpoint     : expected makespan {:.2}",
        cs_saves::uniform_makespan(w, 1, c, lambda).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// The farm-scenario options shared by `farm` and `obs replay` (a journal
/// header pins the scenario, so replaying or forking one needs the same
/// flags that produced it).
pub(crate) const FARM_SCENARIO_OPTS: &[&str] = &[
    "workstations",
    "tasks",
    "l",
    "c",
    "gap",
    "seed",
    "policy",
    "faults",
    "loss",
    "slowdown",
    "crash",
    "storms",
];

/// A fully built farm scenario plus the display facts the CLI prints.
pub(crate) struct FarmScenario {
    pub config: FarmConfig,
    pub bag: TaskBag,
    pub policy: PolicySpec,
    pub n_ws: usize,
    pub tasks: usize,
    pub l: f64,
    pub c: f64,
    pub gap: f64,
    pub injecting: bool,
}

/// Builds the farm scenario from [`FARM_SCENARIO_OPTS`] flags — identical
/// defaults and error messages wherever the scenario grammar appears.
pub(crate) fn farm_scenario_from_args(args: &Args) -> Result<FarmScenario, String> {
    let n_ws = args.usize_or("workstations", 4)?;
    let tasks = args.usize_or("tasks", 1000)?;
    let l = args.f64_or("l", 150.0)?;
    let c = args.f64_or("c", 2.0)?;
    let gap = args.f64_or("gap", 10.0)?;
    let seed = args.u64_or("seed", 7)?;
    let mut faults = FaultPlan::scaled(args.f64_or("faults", 0.0)?);
    if let Some(p) = args.get("loss") {
        faults.loss_prob = p.parse().map_err(|_| "--loss: bad number".to_string())?;
    }
    if let Some(f) = args.get("slowdown") {
        faults.slowdown = f
            .parse()
            .map_err(|_| "--slowdown: bad number".to_string())?;
    }
    if let Some(r) = args.get("crash") {
        faults.crash_rate = r.parse().map_err(|_| "--crash: bad number".to_string())?;
    }
    let storms: Vec<f64> = match args.get("storms") {
        None => Vec::new(),
        Some(list) => {
            // Storms only matter if something is susceptible to them.
            if faults.storm_hit_prob == 0.0 {
                faults.storm_hit_prob = 1.0;
            }
            list.split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| format!("--storms: bad time {t:?}"))
                })
                .collect::<Result<_, _>>()?
        }
    };
    // Surface the typed per-field diagnosis now, before the plan is cloned
    // into every workstation and re-validated behind FarmConfigError.
    faults
        .validate()
        .map_err(|e| format!("invalid fault plan: {e}"))?;
    let policy = PolicySpec::parse(args.get("policy").unwrap_or("guideline")).map_err(
        // Reconstruct the exact option-prefixed messages this command has
        // always printed.
        |e| match e {
            PolicyParseError::Unknown(_) => format!("--policy: {e}"),
            PolicyParseError::BadNumber(t) => format!("--policy fixed: bad number {t:?}"),
        },
    )?;
    let life: cs_life::ArcLife =
        std::sync::Arc::new(cs_life::Uniform::new(l).map_err(|e| e.to_string())?);
    let workstations = (0..n_ws)
        .map(|_| WorkstationConfig {
            life: life.clone(),
            believed: life.clone(),
            c,
            policy,
            gap_mean: gap,
            faults: faults.clone(),
        })
        .collect();
    let bag = workloads::uniform(tasks, 1.0).map_err(|e| e.to_string())?;
    let mut config = FarmConfig::new(workstations, 1e7, seed);
    config.storms = storms;
    config.validate().map_err(|e| e.to_string())?;
    let injecting = !faults.is_zero() || !config.storms.is_empty();
    Ok(FarmScenario {
        config,
        bag,
        policy,
        n_ws,
        tasks,
        l,
        c,
        gap,
        injecting,
    })
}

fn cmd_farm(args: &Args) -> Result<(), String> {
    let mut allowed: Vec<&str> = FARM_SCENARIO_OPTS.to_vec();
    allowed.extend_from_slice(&[
        "trace-out",
        "metrics",
        "profile",
        "progress-every",
        "journal",
        "resume",
        "kill-after",
        "snapshot-every",
        "snapshot-ring",
        "journal-gc",
        "on-io-error",
    ]);
    args.check_known(&allowed)?;
    let journal = args.get("journal").map(String::from);
    let resume = args.get("resume").map(String::from);
    if journal.is_some() && resume.is_some() {
        return Err("--journal and --resume are mutually exclusive".into());
    }
    let kill_after = match args.get("kill-after") {
        None => None,
        Some(_) => Some(args.u64_or("kill-after", 0)?),
    };
    let snapshot_every = match args.get("snapshot-every") {
        None => None,
        Some(_) => {
            let dt = args.f64_or("snapshot-every", 0.0)?;
            if !dt.is_finite() || dt <= 0.0 {
                return Err("--snapshot-every: cadence must be a finite positive time".into());
            }
            Some(dt)
        }
    };
    let snapshot_ring = match args.get("snapshot-ring") {
        None => 1u32,
        Some(_) => {
            let n = args.u64_or("snapshot-ring", 1)?;
            if !(1..=64).contains(&n) {
                return Err("--snapshot-ring: ring size must be between 1 and 64".into());
            }
            n as u32
        }
    };
    let journal_gc = args.flag("journal-gc");
    if journal_gc && snapshot_ring < 2 {
        return Err(
            "--journal-gc needs --snapshot-ring >= 2 (pruning the journal prefix is only \
             safe with at least one older generation retained)"
                .into(),
        );
    }
    let on_io_error = match args.get("on-io-error") {
        None | Some("fail-stop") => IoErrorPolicy::FailStop,
        Some("degrade") => IoErrorPolicy::Degrade,
        Some(other) => {
            return Err(format!(
                "--on-io-error: unknown policy {other:?} (expected fail-stop or degrade)"
            ))
        }
    };
    if journal.is_some() || resume.is_some() {
        // Journaled runs must replay deterministically on resume; the span
        // profiler stamps wall-clock events and the tee sinks would observe
        // a second, unjournaled copy of the stream.
        for opt in ["trace-out", "metrics", "profile"] {
            if args.get(opt).is_some() {
                return Err(format!(
                    "--{opt} cannot be combined with --journal/--resume \
                     (the journal itself is the trace; replay must be \
                     deterministic)"
                ));
            }
        }
    } else if kill_after.is_some() {
        return Err("--kill-after needs --journal or --resume".into());
    } else if snapshot_every.is_some() {
        return Err("--snapshot-every needs --journal or --resume".into());
    } else if args.get("snapshot-ring").is_some() {
        return Err("--snapshot-ring needs --journal or --resume".into());
    } else if journal_gc {
        return Err("--journal-gc needs --journal or --resume".into());
    } else if args.get("on-io-error").is_some() {
        return Err("--on-io-error needs --journal or --resume".into());
    }
    let FarmScenario {
        config,
        bag,
        policy,
        n_ws,
        tasks,
        l,
        c,
        gap,
        injecting,
    } = farm_scenario_from_args(args)?;
    let progress_every = progress_every_from_args(args)?;
    let mut trace = TraceOutputs::from_args(args)?;
    let mut prof = profiler_from_args(args);
    if journal.is_some() || resume.is_some() {
        // Durable runs heartbeat from inside the journal driver (the tee
        // never sees their events); drop the CLI-side sink so it cannot
        // emit a misleading all-zero closing line.
        trace.progress = None;
    }
    // `durable_lines` carries the journal/recovery stats printed after the
    // standard report (empty for plain runs).
    let mut durable_lines: Vec<String> = Vec::new();
    let report = if let Some(path) = resume {
        let opts = JournalOptions {
            fsync: guideline_fsync_policy(&config),
            kill_after,
            snapshot_every: snapshot_every.or_else(|| guideline_snapshot_interval(&config)),
            progress_every,
            snapshot_ring,
            gc: journal_gc,
            on_io_error,
        };
        let (report, info) =
            Farm::resume_with(config, bag, &path, opts).map_err(|e| e.to_string())?;
        let mut summary = RunSummary::new("farm_resume")
            .int("records_replayed", info.records_replayed)
            .int("records_appended", info.records_appended)
            .int("segment_base", info.segment_base)
            .flag("degraded", info.degraded);
        match info.snapshot {
            SnapshotOutcome::Used { records_skipped } => {
                let sidecar = match info.generation {
                    Some(g) => format!("{path}.snap.{g} (generation {g})"),
                    None => format!("{path}.snap"),
                };
                durable_lines.push(format!(
                    "snapshot      : restored {sidecar}, {records_skipped} records skipped"
                ));
                summary = summary
                    .text("snapshot", "used")
                    .int("records_skipped", records_skipped);
                if let Some(g) = info.generation {
                    summary = summary.int("generation", u64::from(g));
                }
            }
            SnapshotOutcome::Fallback(kind) => {
                eprintln!(
                    "warning: snapshot {path}.snap unusable ({kind}); \
                     falling back to full redo replay"
                );
                summary = summary.text("snapshot", &format!("fallback:{kind}"));
            }
            SnapshotOutcome::None => {
                summary = summary.text("snapshot", "none");
            }
        }
        if info.segment_base > 0 {
            durable_lines.push(format!(
                "journal gc    : {} records pruned before the journal's first surviving line",
                info.segment_base
            ));
        }
        durable_lines.push(format!(
            "resumed       : {} records replayed, {} appended -> {path}",
            info.records_replayed, info.records_appended
        ));
        if info.torn_bytes_discarded > 0 {
            durable_lines.push(format!(
                "torn tail     : {} bytes of a half-written record discarded",
                info.torn_bytes_discarded
            ));
        }
        if info.degraded {
            durable_lines.push(
                "degraded      : journal I/O failed mid-run; results completed in-memory only"
                    .to_string(),
            );
        }
        durable_lines.push(format!("RUN-SUMMARY {}", summary.to_json()));
        report
    } else if let Some(path) = journal {
        let fsync = guideline_fsync_policy(&config);
        let cadence = match fsync {
            cs_obs::FsyncPolicy::EveryRecord => "every record".to_string(),
            cs_obs::FsyncPolicy::Interval(dt) => format!("cadence {dt:.2} virtual time"),
        };
        let opts = JournalOptions {
            fsync,
            kill_after,
            snapshot_every: snapshot_every.or_else(|| guideline_snapshot_interval(&config)),
            progress_every,
            snapshot_ring,
            gc: journal_gc,
            on_io_error,
        };
        let snap_line = match opts.snapshot_every {
            Some(dt) if snapshot_ring > 1 => format!(
                "snapshots     : every {dt:.2} virtual time -> {path}.snap.0..{} \
                 ({snapshot_ring}-generation ring{})",
                snapshot_ring - 1,
                if journal_gc { ", journal gc" } else { "" }
            ),
            Some(dt) => format!("snapshots     : every {dt:.2} virtual time -> {path}.snap"),
            None => "snapshots     : disabled (fsync-every-record farms)".to_string(),
        };
        let (report, stats) = Farm::new(config, bag)
            .map_err(|e| e.to_string())?
            .run_journaled_with(&path, opts)
            .map_err(|e| e.to_string())?;
        durable_lines.push(format!(
            "journal       : {} records, {} fsyncs ({cadence}) -> {path}",
            stats.records, stats.syncs
        ));
        durable_lines.push(snap_line);
        if stats.gc_truncated_records > 0 {
            durable_lines.push(format!(
                "journal gc    : {} records / {} bytes pruned from the journal prefix",
                stats.gc_truncated_records, stats.gc_truncated_bytes
            ));
        }
        if stats.degraded {
            durable_lines.push(
                "degraded      : journal I/O failed mid-run; results completed in-memory only"
                    .to_string(),
            );
        }
        let summary = RunSummary::new("farm_journal")
            .int("records", stats.records)
            .int("syncs", stats.syncs)
            .int("snapshots_written", stats.snapshots_written)
            .int("ring", u64::from(snapshot_ring))
            .int("gc_truncated_records", stats.gc_truncated_records)
            .int("gc_truncated_bytes", stats.gc_truncated_bytes)
            .flag("degraded", stats.degraded);
        durable_lines.push(format!("RUN-SUMMARY {}", summary.to_json()));
        report
    } else {
        let mut tee = trace.tee();
        Farm::new(config, bag)
            .map_err(|e| e.to_string())?
            .run_profiled(&mut tee, &mut prof)
    };
    println!("policy        : {}", policy.label());
    println!("workstations  : {n_ws} (uniform L = {l}, c = {c}, gap mean = {gap})");
    println!("tasks         : {tasks}");
    println!("drained       : {}", report.drained);
    println!("makespan      : {:.2}", report.makespan);
    println!("banked work   : {:.1}", report.completed_work);
    println!("lost work     : {:.1}", report.lost_work);
    if injecting {
        let rb = &report.robustness;
        println!(
            "faults        : {} lost msgs, {} stragglers, {} crashes, {} storm kills",
            rb.messages_lost, rb.straggled_chunks, rb.crashes, rb.storm_kills
        );
        println!(
            "resilience    : {} lease timeouts, {} backoffs, {} quarantines, \
             {} replicas, {:.1} duplicate work discarded",
            rb.lease_timeouts,
            rb.backoff_delays,
            rb.quarantines,
            rb.replicas_dispatched,
            rb.duplicate_work
        );
    }
    let mut table = Table::new(&["ws", "banked", "lost", "chunks", "killed", "episodes"]);
    for (i, w) in report.per_workstation.iter().enumerate() {
        table.row(&[
            i.to_string(),
            fmt(w.completed_work, 1),
            fmt(w.lost_work, 1),
            w.chunks_completed.to_string(),
            w.chunks_lost.to_string(),
            w.episodes.to_string(),
        ]);
    }
    println!("{}", table.render());
    for line in &durable_lines {
        println!("{line}");
    }
    print_profile(prof);
    trace.finish()
}

fn cmd_chaos(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "workstations",
        "tasks",
        "seed",
        "faults",
        "sample",
        "quick",
        "snapshot-every",
        "threads",
        "progress-every",
        "disk-faults",
    ])?;
    let quick = args.flag("quick");
    let snapshot_every = args.f64_or("snapshot-every", 10.0)?;
    if !snapshot_every.is_finite() || snapshot_every <= 0.0 {
        return Err("--snapshot-every: cadence must be a finite positive time".into());
    }
    let cfg = cs_bench::chaos::ChaosConfig {
        workstations: args.usize_or("workstations", if quick { 2 } else { 4 })?,
        tasks: args.usize_or("tasks", if quick { 60 } else { 200 })?,
        seed: args.u64_or("seed", 4242)?,
        intensity: args.f64_or("faults", 0.6)?,
        sample: match args.get("sample") {
            Some(_) => Some(args.usize_or("sample", 0)?),
            None if quick => Some(16),
            None => None,
        },
        snapshot_every,
        threads: args.usize_or("threads", default_threads())?,
        progress_every: progress_every_from_args(args)?,
        disk_faults: args.flag("disk-faults"),
    };
    let out = cs_bench::chaos::run_chaos(&cfg)?;
    println!(
        "farm          : {} workstations, {} tasks, seed {}, fault intensity {}",
        cfg.workstations, cfg.tasks, cfg.seed, cfg.intensity
    );
    if cfg.threads > 1 {
        println!(
            "threads       : {} (kill/resume trials on the work-stealing pool; \
             outcome identical to serial)",
            cfg.threads
        );
    }
    println!(
        "journal       : {} records in the uninterrupted reference",
        out.records
    );
    println!(
        "kill points   : {} exercised ({} with a torn half-record, \
         {} with a corrupted snapshot sidecar)",
        out.kill_points, out.torn_trials, out.corrupt_trials
    );
    println!(
        "snapshots     : {} fast-path resumes, {} graceful fallbacks to full redo",
        out.snapshot_resumes, out.snapshot_fallbacks
    );
    if cfg.disk_faults {
        let kinds: Vec<String> = out
            .fault_kinds_fired
            .iter()
            .map(|k| k.to_string())
            .collect();
        println!(
            "disk faults   : {} faulted resumes; fired kinds: {}",
            out.disk_fault_trials,
            if kinds.is_empty() {
                "none".to_string()
            } else {
                kinds.join(", ")
            }
        );
        println!(
            "io policies   : {} degraded completions (bitwise, in-memory), \
             {} fail-stop errors (typed, recovered bitwise)",
            out.degraded_completions, out.fail_stop_errors
        );
    }
    println!("exact resumes : {}", out.resumed_ok);
    for m in &out.mismatches {
        println!("MISMATCH: {m}");
    }
    if out.ok() {
        println!("PASS: every kill point recovered bitwise-identically");
        Ok(())
    } else {
        Err(format!(
            "{} mismatch(es) across {} kill points",
            out.mismatches.len(),
            out.kill_points
        ))
    }
}

/// Default worker count for pooled subcommands: the machine's available
/// parallelism, serial when it cannot be determined.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn cmd_exp(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "list",
        "id",
        "all",
        "quick",
        "trace-out",
        "input",
        "threads",
        "progress-every",
    ])?;
    let registry = cs_bench::experiments::all();
    if args.flag("list") {
        let mut table = Table::new(&["id", "paper", "title"]);
        for e in &registry {
            table.row(&[
                e.id().to_string(),
                e.paper().to_string(),
                e.title().to_string(),
            ]);
        }
        println!("{}", table.render());
        println!(
            "{} experiments; run one with `cyclesteal exp --id <id>`",
            registry.len()
        );
        return Ok(());
    }
    let opts = ExpOptions {
        quick: args.flag("quick"),
        trace_out: args.get("trace-out").map(String::from),
        input: args.get("input").map(String::from),
        progress_every: progress_every_from_args(args)?,
    };
    if args.flag("all") {
        if opts.trace_out.is_some() {
            // A single trace file cannot carry interleaved event streams:
            // a traced sweep stays on the serial in-place path.
            let stdout = std::io::stdout();
            for exp in registry {
                println!("== {} [{}] {}", exp.id(), exp.paper(), exp.title());
                let mut out = stdout.lock();
                run_to_writer(exp, &opts, &mut out).map_err(|e| format!("{}: {e}", exp.id()))?;
            }
            return Ok(());
        }
        // Experiments render concurrently into per-experiment buffers that
        // are printed in registry order — bytes identical to serial for
        // any thread count.
        let threads = args.usize_or("threads", default_threads())?;
        let (entries, pool) = cs_bench::harness::run_all_buffered_metrics(&opts, threads);
        for (exp, result) in entries {
            // The one header line the shared harness adds over the
            // standalone binaries; everything below it is byte-identical
            // to them.
            println!("== {} [{}] {}", exp.id(), exp.paper(), exp.title());
            let buf = result.map_err(|e| format!("{}: {e}", exp.id()))?;
            use std::io::Write;
            std::io::stdout()
                .write_all(&buf)
                .map_err(|e| e.to_string())?;
        }
        if let Some(pm) = pool {
            // Worker-pool utilization for the sweep itself, greppable like
            // the per-experiment summaries — on stderr, because steal
            // counts are scheduling-dependent and stdout is promised
            // byte-identical to the serial sweep.
            cs_obs::RunSummary::new("exp_sweep_pool")
                .int("threads", pm.threads as u64)
                .int("tasks", pm.tasks)
                .int("steals", pm.steals)
                .int("stolen_tasks", pm.stolen_tasks)
                .int("parks", pm.parks)
                .emit_to(&mut std::io::stderr())
                .ok();
        }
        return Ok(());
    }
    let id = args
        .get("id")
        .ok_or("exp needs --list, --all or --id <experiment>")?;
    let exp = by_id(id).ok_or_else(|| {
        format!("unknown experiment {id:?}; `cyclesteal exp --list` shows the registry")
    })?;
    println!("== {} [{}] {}", exp.id(), exp.paper(), exp.title());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    run_to_writer(exp, &opts, &mut out).map_err(|e| format!("{}: {e}", exp.id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_display_handles_undefined_ci() {
        // Regression: `simulate --trials 1` used to print `± NaN`.
        assert_eq!(ci_display(None), "n/a");
        assert_eq!(ci_display(Some(0.25)), "0.2500");
        assert!(!ci_display(None).contains("NaN"));
    }

    #[test]
    fn agreement_verdict_needs_two_samples() {
        // Regression: with n = 1 the standard error is NaN, the `<=`
        // comparison is false, and the CLI claimed `model agrees : NO`.
        let v = agreement_verdict(5.0, 5.0, f64::NAN, 1);
        assert!(v.contains("insufficient samples"), "{v}");
        assert_eq!(agreement_verdict(5.0, 5.0, 0.1, 100), "yes (within 3 s.e.)");
        assert_eq!(agreement_verdict(5.0, 9.0, 0.1, 100), "NO");
    }

    fn farm_args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn farm_rejects_contradictory_durability_flags() {
        let err = cmd_farm(&farm_args("farm --journal a.jsonl --resume b.jsonl")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        for opt in ["--trace-out t.jsonl", "--metrics", "--profile"] {
            let err = cmd_farm(&farm_args(&format!("farm --journal a.jsonl {opt}"))).unwrap_err();
            assert!(err.contains("--journal/--resume"), "{err}");
            let err = cmd_farm(&farm_args(&format!("farm --resume a.jsonl {opt}"))).unwrap_err();
            assert!(err.contains("--journal/--resume"), "{err}");
        }
        let err = cmd_farm(&farm_args("farm --kill-after 5")).unwrap_err();
        assert!(err.contains("needs --journal or --resume"), "{err}");
    }

    #[test]
    fn farm_validates_the_ring_and_io_policy_flags() {
        for opt in [
            "--snapshot-ring 3",
            "--snapshot-ring 2 --journal-gc",
            "--on-io-error degrade",
        ] {
            let err = cmd_farm(&farm_args(&format!("farm {opt}"))).unwrap_err();
            assert!(err.contains("needs --journal or --resume"), "{err}");
        }
        let err = cmd_farm(&farm_args("farm --journal a.jsonl --snapshot-ring 0")).unwrap_err();
        assert!(err.contains("between 1 and 64"), "{err}");
        let err = cmd_farm(&farm_args("farm --journal a.jsonl --snapshot-ring 65")).unwrap_err();
        assert!(err.contains("between 1 and 64"), "{err}");
        let err = cmd_farm(&farm_args("farm --journal a.jsonl --journal-gc")).unwrap_err();
        assert!(err.contains("--snapshot-ring >= 2"), "{err}");
        let err =
            cmd_farm(&farm_args("farm --journal a.jsonl --on-io-error sometimes")).unwrap_err();
        assert!(err.contains("expected fail-stop or degrade"), "{err}");
    }

    #[test]
    fn farm_surfaces_the_typed_fault_plan_error() {
        let err = cmd_farm(&farm_args("farm --loss 1.5")).unwrap_err();
        assert!(err.contains("invalid fault plan"), "{err}");
        assert!(err.contains("loss_prob"), "{err}");
        assert!(err.contains("1.5"), "{err}");
        let err = cmd_farm(&farm_args("farm --slowdown 0.5")).unwrap_err();
        assert!(err.contains("slowdown"), "{err}");
    }

    #[test]
    fn subcommand_allowlists_cover_documented_options() {
        // Every `--option` named in HELP must be accepted by its command's
        // allowlist (via check_known), so the typo guard can never reject a
        // documented flag.
        let probe = |opts: &[&str], extra: &[&str]| {
            let args = Args::parse(opts.iter().map(|o| format!("--{o}"))).unwrap();
            check_known_with_life(&args, extra)
        };
        probe(LIFE_OPTS, &[]).unwrap();
        probe(&["c", "oracle"], &["c", "oracle"]).unwrap();
        probe(
            &[
                "trials",
                "threads",
                "seed",
                "trace-out",
                "metrics",
                "progress-every",
            ],
            &[
                "c",
                "trials",
                "threads",
                "seed",
                "trace-out",
                "metrics",
                "progress-every",
            ],
        )
        .unwrap();
        assert!(probe(&["trails"], &["c", "trials", "threads", "seed"])
            .unwrap_err()
            .contains("did you mean --trials?"));
    }
}
