//! Minimal `--key value` argument parsing (no external dependency).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    opts: BTreeMap<String, String>,
}

impl Args {
    /// Parses tokens of the form `<command> --key value …`. Bare `--flag`
    /// tokens (no value) map to `"true"`.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                out.command = it.next();
            }
        }
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {tok}"));
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            if out.opts.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate option: --{key}"));
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Required float option.
    pub fn require_f64(&self, key: &str) -> Result<f64, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("--{key}: expected a number"))
    }

    /// Float option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: expected a number, got {v:?}")),
        }
    }

    /// Integer option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: expected an integer, got {v:?}")),
        }
    }

    /// u64 option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: expected an integer, got {v:?}")),
        }
    }

    /// True when `--key` was given (any value but `"false"`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some(v) if v != "false")
    }

    /// Rejects any option not in `allowed`, suggesting the closest known
    /// option. A typo like `--trails` must fail loudly instead of silently
    /// running with defaults.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.opts.keys() {
            if allowed.iter().any(|a| a == key) {
                continue;
            }
            let suggestion = allowed
                .iter()
                .map(|a| (levenshtein(key, a), *a))
                .min()
                .filter(|&(d, a)| d <= 2.max(a.len() / 3))
                .map(|(_, a)| format!(" (did you mean --{a}?)"))
                .unwrap_or_default();
            return Err(format!("unknown option --{key}{suggestion}"));
        }
        Ok(())
    }
}

/// Edit distance for `check_known`'s did-you-mean suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("plan --family uniform --l 1000 --c 5").unwrap();
        assert_eq!(a.command.as_deref(), Some("plan"));
        assert_eq!(a.get("family"), Some("uniform"));
        assert_eq!(a.f64_or("l", 0.0).unwrap(), 1000.0);
        assert_eq!(a.f64_or("c", 0.0).unwrap(), 5.0);
        assert_eq!(a.f64_or("missing", 7.0).unwrap(), 7.0);
    }

    #[test]
    fn bare_flags() {
        let a = parse("simulate --parallel --trials 100").unwrap();
        assert!(a.flag("parallel"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.u64_or("trials", 0).unwrap(), 100);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("plan stray").is_err());
        assert!(parse("plan --x 1 --x 2").is_err());
        assert!(parse("plan -- 1").is_err());
        let a = parse("plan --n abc").unwrap();
        assert!(a.usize_or("n", 1).is_err());
    }

    #[test]
    fn no_command() {
        let a = parse("--help").unwrap();
        assert!(a.command.is_none());
        assert!(a.flag("help"));
    }

    #[test]
    fn require_reports_missing() {
        let a = parse("fit").unwrap();
        assert!(a.require("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn require_f64_parses_and_reports() {
        let a = parse("plan --c 2.5 --bad xyz").unwrap();
        assert_eq!(a.require_f64("c").unwrap(), 2.5);
        assert!(a.require_f64("bad").unwrap_err().contains("--bad"));
        assert!(a.require_f64("absent").unwrap_err().contains("--absent"));
    }

    #[test]
    fn unknown_option_is_rejected_with_suggestion() {
        // Regression: `--trails 50` used to run silently with defaults.
        let a = parse("simulate --trails 50").unwrap();
        let err = a.check_known(&["trials", "seed", "threads"]).unwrap_err();
        assert!(err.contains("unknown option --trails"), "{err}");
        assert!(err.contains("did you mean --trials?"), "{err}");
    }

    #[test]
    fn unknown_option_without_close_match_has_no_suggestion() {
        let a = parse("simulate --zzzzzzzz 1").unwrap();
        let err = a.check_known(&["trials", "seed"]).unwrap_err();
        assert!(err.contains("unknown option --zzzzzzzz"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn known_options_pass_check() {
        let a = parse("simulate --trials 50 --seed 1").unwrap();
        assert!(a.check_known(&["trials", "seed", "threads"]).is_ok());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("trails", "trials"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }
}
