//! Parsing life-function specifications from the command line.
//!
//! Grammar (`--family <spec>` plus family parameters):
//!
//! * `uniform`              — needs `--l <lifespan>`
//! * `poly`                 — needs `--d <degree>` and `--l <lifespan>`
//! * `geometric`            — needs `--a <risk factor>` *or* `--half-life <h>`
//! * `increasing`           — needs `--l <lifespan>`
//! * `pareto`               — needs `--d <exponent>`
//! * `weibull`              — needs `--k <shape>` and `--lambda <scale>`

use crate::args::Args;
use cs_life::{
    ArcLife, GeometricDecreasing, GeometricIncreasing, Pareto, Polynomial, Uniform, Weibull,
};
use std::sync::Arc;

/// Builds a life function from parsed arguments.
pub fn parse_life(args: &Args) -> Result<ArcLife, String> {
    let family = args.get("family").unwrap_or("uniform");
    let life: ArcLife = match family {
        "uniform" => {
            let l = args.f64_or("l", f64::NAN)?;
            Arc::new(Uniform::new(l).map_err(|e| format!("uniform: {e}"))?)
        }
        "poly" | "polynomial" => {
            let d = args.usize_or("d", 2)? as u32;
            let l = args.f64_or("l", f64::NAN)?;
            Arc::new(Polynomial::new(d, l).map_err(|e| format!("poly: {e}"))?)
        }
        "geometric" | "geo" => {
            if let Some(h) = args.get("half-life") {
                let h: f64 =
                    h.parse().map_err(|_| format!("--half-life: bad number {h:?}"))?;
                Arc::new(
                    GeometricDecreasing::from_half_life(h)
                        .map_err(|e| format!("geometric: {e}"))?,
                )
            } else {
                let a = args.f64_or("a", 2.0)?;
                Arc::new(GeometricDecreasing::new(a).map_err(|e| format!("geometric: {e}"))?)
            }
        }
        "increasing" | "coffee" => {
            let l = args.f64_or("l", f64::NAN)?;
            Arc::new(GeometricIncreasing::new(l).map_err(|e| format!("increasing: {e}"))?)
        }
        "pareto" => {
            let d = args.f64_or("d", 2.0)?;
            Arc::new(Pareto::new(d).map_err(|e| format!("pareto: {e}"))?)
        }
        "weibull" => {
            let k = args.f64_or("k", 1.5)?;
            let lambda = args.f64_or("lambda", f64::NAN)?;
            Arc::new(Weibull::new(k, lambda).map_err(|e| format!("weibull: {e}"))?)
        }
        other => {
            return Err(format!(
                "unknown family {other:?}; expected uniform | poly | geometric | increasing | pareto | weibull"
            ))
        }
    };
    Ok(life)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::LifeFunction;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_all_families() {
        assert!(parse_life(&args("x --family uniform --l 100")).is_ok());
        assert!(parse_life(&args("x --family poly --d 3 --l 100")).is_ok());
        assert!(parse_life(&args("x --family geometric --a 2")).is_ok());
        assert!(parse_life(&args("x --family geometric --half-life 10")).is_ok());
        assert!(parse_life(&args("x --family increasing --l 64")).is_ok());
        assert!(parse_life(&args("x --family pareto --d 2")).is_ok());
        assert!(parse_life(&args("x --family weibull --k 1.5 --lambda 10")).is_ok());
    }

    #[test]
    fn default_family_is_uniform() {
        let p = parse_life(&args("x --l 50")).unwrap();
        assert!(p.describe().contains("uniform"));
        assert_eq!(p.lifespan(), Some(50.0));
    }

    #[test]
    fn rejects_unknown_or_incomplete() {
        assert!(parse_life(&args("x --family martian")).is_err());
        assert!(parse_life(&args("x --family uniform")).is_err()); // missing --l
        assert!(parse_life(&args("x --family weibull --k 1.5")).is_err());
    }

    #[test]
    fn half_life_round_trip() {
        let p = parse_life(&args("x --family geometric --half-life 8")).unwrap();
        assert!((p.survival(8.0) - 0.5).abs() < 1e-12);
    }
}
