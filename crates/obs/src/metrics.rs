//! Metrics: named counters, gauges and streaming histograms.
//!
//! The registry is deliberately simple — a `BTreeMap` per metric class, no
//! interior mutability, no background threads. Producers that run
//! single-threaded (the virtual-time farm, the serial Monte-Carlo loop, a
//! CLI command) mutate it directly; parallel producers aggregate shard
//! results first and fold them in afterwards, which keeps the registry off
//! every hot path.

use std::collections::BTreeMap;

/// Number of power-of-two histogram buckets (covering `2^-20 .. 2^43`).
const BUCKETS: usize = 64;
/// Bucket index offset: values in `[2^k, 2^(k+1))` land in `k + OFFSET`.
const OFFSET: i32 = 20;

/// A streaming histogram with power-of-two buckets plus exact
/// count/sum/min/max. Constant memory, O(1) insert, mergeable.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `buckets[i]` counts values in `[2^(i-OFFSET), 2^(i-OFFSET+1))`;
    /// non-positive values land in bucket 0, huge ones in the last.
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn bucket_index(v: f64) -> usize {
        // Bucket 0 absorbs non-positive and non-finite values (incl. NaN).
        if v > 0.0 && v.is_finite() {
            let idx = v.log2().floor() as i32 + OFFSET;
            idx.clamp(0, BUCKETS as i32 - 1) as usize
        } else {
            0
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Quantile estimate via within-bucket linear interpolation: the
    /// `q`-quantile rank is located in its power-of-two bucket and the
    /// value interpolated between the bucket's edges by the rank's fraction
    /// of the bucket's population, clamped to the observed `[min, max]`.
    /// The tails are exact: `q <= 0` returns `min`, `q >= 1` returns `max`.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                // Interpolate between the bucket's edges by how far into
                // its population the target rank falls. Bucket 0 also
                // absorbs non-positive values, so its lower edge is the
                // observed min rather than 2^-OFFSET.
                let lower = if i == 0 {
                    self.min.min(2f64.powi(-OFFSET))
                } else {
                    2f64.powi(i as i32 - OFFSET)
                };
                let upper = 2f64.powi(i as i32 - OFFSET + 1);
                let frac = (target - seen) as f64 / n as f64;
                let v = lower + frac * (upper - lower);
                return Some(v.min(self.max).max(self.min));
            }
            seen += n;
        }
        Some(self.max)
    }
}

/// A registry of named counters (monotone `u64`), gauges (`f64` last-write
/// or accumulate) and streaming [`Histogram`]s.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Reads counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Adds `by` to gauge `name` (creating it at zero).
    pub fn gauge_add(&mut self, name: &str, by: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += by;
    }

    /// Reads gauge `name` (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into histogram `name` (creating it).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Reads histogram `name` (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates all counters in name order (used by `obs diff`).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates all gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merges another registry into this one (counters and histograms add,
    /// gauges take the other's values).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.counter_add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_set(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a fixed-width text report, one metric per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, v) in &self.counters {
            writeln!(out, "counter   {k:<28} {v}").expect("write to String");
        }
        for (k, v) in &self.gauges {
            writeln!(out, "gauge     {k:<28} {v:.4}").expect("write to String");
        }
        for (k, h) in &self.histograms {
            writeln!(
                out,
                "histogram {k:<28} n={} mean={} min={} max={} p50={} p99={}",
                h.count(),
                h.mean().map_or("-".into(), |v| format!("{v:.4}")),
                h.min().map_or("-".into(), |v| format!("{v:.4}")),
                h.max().map_or("-".into(), |v| format!("{v:.4}")),
                h.quantile(0.5).map_or("-".into(), |v| format!("{v:.4}")),
                h.quantile(0.99).map_or("-".into(), |v| format!("{v:.4}")),
            )
            .expect("write to String");
        }
        out
    }

    /// Serializes the registry as one JSON object (counters and gauges
    /// verbatim; histograms as `{count, sum, min, max, p50, p99}`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(s, "\"{k}\":{v}").expect("write to String");
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(s, "\"{k}\":").expect("write to String");
            crate::event::push_json_f64(&mut s, *v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(s, "\"{k}\":{{\"count\":{},\"sum\":", h.count()).expect("write to String");
            crate::event::push_json_f64(&mut s, h.sum());
            for (field, v) in [
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.quantile(0.5)),
                ("p99", h.quantile(0.99)),
            ] {
                write!(s, ",\"{field}\":").expect("write to String");
                crate::event::push_json_f64(&mut s, v.unwrap_or(f64::NAN));
            }
            s.push('}');
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.counter_add("banks", 2);
        r.counter_add("banks", 3);
        assert_eq!(r.counter("banks"), 5);
        assert_eq!(r.counter("absent"), 0);
        r.gauge_set("makespan", 12.5);
        r.gauge_add("work", 1.0);
        r.gauge_add("work", 2.0);
        assert_eq!(r.gauge("makespan"), Some(12.5));
        assert_eq!(r.gauge("work"), Some(3.0));
        assert!(!r.is_empty());
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.mean().is_none() && h.quantile(0.5).is_none());
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), Some(3.75));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(8.0));
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=4.0).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), Some(8.0));
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert!(h.quantile(q).is_none());
        }
    }

    #[test]
    fn quantile_single_sample_is_exact_everywhere() {
        let mut h = Histogram::new();
        h.observe(3.7);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.7), "q={q}");
        }
    }

    #[test]
    fn quantile_tails_are_exact_min_max() {
        let mut h = Histogram::new();
        for v in [0.3, 1.7, 5.0, 100.0, 6543.2] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.3));
        assert_eq!(h.quantile(-1.0), Some(0.3));
        assert_eq!(h.quantile(1.0), Some(6543.2));
        assert_eq!(h.quantile(2.0), Some(6543.2));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // 100 samples spread across [16, 32): one bucket. The p-th
        // quantile should move smoothly through the bucket instead of
        // pinning to an edge.
        let mut h = Histogram::new();
        for i in 0..100 {
            h.observe(16.0 + 0.16 * i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 > 16.0 && p50 < 32.0, "{p50}");
        assert!(p90 > p50, "p90={p90} p50={p50}");
        assert!(p99 >= p90, "p99={p99} p90={p90}");
        // Within-bucket interpolation is linear in rank: p50 lands near
        // the middle of the bucket's population.
        assert!((p50 - 24.0).abs() < 1.0, "{p50}");
    }

    #[test]
    fn quantile_of_merged_histograms_matches_sequential() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..200 {
            let v = 0.5 + (i as f64) * 0.37;
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        a.merge(&b);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn registry_iterators_cover_all_metrics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 1);
        r.counter_add("b", 2);
        r.gauge_set("g", 0.5);
        r.observe("h", 1.0);
        assert_eq!(
            r.counters().collect::<Vec<_>>(),
            vec![("a", 1u64), ("b", 2u64)]
        );
        assert_eq!(r.gauges().collect::<Vec<_>>(), vec![("g", 0.5)]);
        let hists: Vec<&str> = r.histograms().map(|(k, _)| k).collect();
        assert_eq!(hists, vec!["h"]);
    }

    #[test]
    fn histogram_handles_edge_values() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e300); // clamps to the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-3.0));
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            let v = (i as f64 * 0.7).exp() % 50.0;
            all.observe(v);
            if i < 40 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum().to_bits(), all.sum().to_bits());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn registry_merge_render_json() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.observe("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 2);
        b.gauge_set("g", 7.0);
        b.observe("h", 4.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        let text = a.render();
        assert!(
            text.contains("counter") && text.contains("histogram"),
            "{text}"
        );
        let json = a.to_json();
        assert!(
            json.contains("\"x\":3") && json.contains("\"g\":7"),
            "{json}"
        );
    }
}
