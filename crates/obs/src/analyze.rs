//! The trace analyzer: reads `--trace-out` JSONL back in and turns it
//! into reports, invariant checks and regression diffs. This is the
//! consumer half of the observability loop; `cyclesteal obs` is a thin
//! CLI shell over these functions.
//!
//! * [`analyze_lines`] — folds a validated trace into a [`TraceAnalysis`]:
//!   per-kind counts, the span timing tree (rebuilt from
//!   `span_start`/`span_end` parent links, one [`Histogram`] per tree
//!   path), per-workstation bank/loss attribution and a
//!   [`MetricsRegistry`] equivalent to what a live
//!   [`crate::MetricsSink`] would have folded.
//! * [`check_lines`] — the invariant gate behind `obs check`: schema
//!   validation plus structural checks (run bracketing, monotone span
//!   timestamps and Monte-Carlo progress, balanced span nesting,
//!   bitwise bank-sum reconciliation against `run_end`, and — for farm
//!   runs — chunk conservation: every dispatched chunk resolves exactly
//!   once (bank, reclaim, crash, message loss or straggle) and no bank
//!   lands without a chunk to account for it).
//! * [`diff_registries`] / [`diff_bench`] — compare two runs' metrics or
//!   two `BENCH.json` baselines and flag changes beyond a threshold.
//!
//! On timestamp monotonicity: farm events carry *virtual* time and the
//! master deliberately schedules look-ahead events (an `episode_start`
//! can be timestamped later than events it precedes in the file), so the
//! checker does not demand a globally sorted file. What it does demand is
//! monotone wall-clock span timestamps, monotone `mc_progress.done`
//! within a run, and well-bracketed runs.

use crate::event::SCHEMA_VERSION;
use crate::json::{parse_json, Json};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::schema::{validate_line, ValidatedEvent};
use std::collections::BTreeMap;

/// Per-workstation attribution folded from the event stream.
#[derive(Debug, Clone, Default)]
pub struct WsRow {
    /// Task time banked by this workstation (first-bank-wins).
    pub banked: f64,
    /// Task time it computed that another copy banked first.
    pub duplicate: f64,
    /// Task time destroyed on it (period interrupts).
    pub lost: f64,
    /// Chunks banked.
    pub banks: u64,
    /// Chunks dispatched to it.
    pub dispatches: u64,
}

/// One node of the span timing tree: a unique root-to-node name path and
/// the durations of every span that ran at that path.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Slash-joined path (`farm.run/farm.dispatch`).
    pub path: String,
    /// Leaf name (`farm.dispatch`).
    pub name: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Durations (ns) of all spans at this path.
    pub hist: Histogram,
}

/// Everything [`analyze_lines`] extracts from one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Number of event lines.
    pub lines: usize,
    /// Events per kind.
    pub kind_counts: BTreeMap<String, u64>,
    /// Complete `run_start`..`run_end` pairs seen.
    pub runs: usize,
    /// Per-workstation attribution (farm traces; empty for pure MC).
    pub per_ws: BTreeMap<u64, WsRow>,
    /// Span timing tree in pre-order (parents before children).
    pub span_tree: Vec<SpanNode>,
    /// The metrics a live [`crate::MetricsSink`] would have folded.
    pub registry: MetricsRegistry,
}

/// Folds one validated event into a registry, mirroring what
/// [`crate::MetricsSink`] does on the live stream (so `obs diff` compares
/// like with like, including for v1 traces).
fn fold_metrics(r: &mut MetricsRegistry, ev: &ValidatedEvent) {
    let f = |key: &str| ev.f64(key).unwrap_or(f64::NAN);
    let u = |key: &str| ev.u64(key).unwrap_or(0);
    match ev.kind.as_str() {
        "run_start" => {
            r.gauge_set("workstations", u("workstations") as f64);
            r.gauge_set("tasks", u("tasks") as f64);
        }
        "episode_start" => r.counter_add("episodes", 1),
        "period_start" => {
            r.counter_add("periods", 1);
            r.observe("period_len", f("len"));
        }
        "period_commit" => {
            r.counter_add("periods_committed", 1);
            r.observe("period_work", f("work"));
        }
        "period_interrupt" => {
            r.counter_add("periods_interrupted", 1);
            r.observe("period_lost", f("lost"));
        }
        "dispatch" => {
            r.counter_add("dispatches", 1);
            r.counter_add("tasks_dispatched", u("tasks"));
            r.observe("chunk_work", f("work"));
        }
        "bank" => {
            r.counter_add("chunks_banked", 1);
            r.gauge_add("banked_work", f("work"));
            r.gauge_add("duplicate_work", f("duplicate"));
            r.observe("bank_work", f("work"));
        }
        "lease_timeout" => r.counter_add("lease_timeouts", 1),
        "requeue" => {
            r.counter_add("requeues", 1);
            r.counter_add("tasks_requeued", u("tasks"));
        }
        "backoff" => {
            r.counter_add("backoff_delays", 1);
            r.observe("backoff_delay", f("delay"));
        }
        "quarantine" => r.counter_add("quarantines", 1),
        "storm_kill" => r.counter_add("storm_kills", 1),
        "crash" => r.counter_add("crashes", 1),
        "message_lost" => r.counter_add("messages_lost", 1),
        "straggle" => r.counter_add("straggled_chunks", 1),
        "replica" => {
            r.counter_add("replicas_dispatched", 1);
            r.counter_add("replica_tasks", u("tasks"));
        }
        "mc_progress" => {
            r.gauge_set("mc_done", u("done") as f64);
            r.gauge_set("mc_total", u("total") as f64);
        }
        "run_end" => {
            r.gauge_set("run_banked", f("banked"));
            r.gauge_set("run_lost", f("lost"));
            let drained = ev
                .fields
                .get("drained")
                .and_then(crate::json::JsonValue::as_bool);
            r.gauge_set("run_drained", if drained == Some(true) { 1.0 } else { 0.0 });
            r.gauge_set("run_end_time", ev.time);
        }
        "span_start" => r.counter_add("spans_opened", 1),
        "span_end" => {
            r.counter_add("spans_closed", 1);
            if let Some(name) = ev
                .fields
                .get("name")
                .and_then(crate::json::JsonValue::as_str)
            {
                r.observe(&format!("span_ns.{name}"), f("dur_ns"));
            }
        }
        _ => {}
    }
}

/// Open-span bookkeeping shared by the analyzer and the checker.
#[derive(Debug, Default)]
struct SpanState {
    /// Stack of open spans: `(id, path)`.
    stack: Vec<(u64, String)>,
    /// Histogram per tree path.
    by_path: BTreeMap<String, Histogram>,
}

impl SpanState {
    fn start(&mut self, id: u64, name: &str) {
        let path = match self.stack.last() {
            Some((_, parent_path)) => format!("{parent_path}/{name}"),
            None => name.to_string(),
        };
        self.stack.push((id, path));
    }

    /// Closes span `id` if it is the innermost open span; returns the
    /// path, or `None` on a nesting violation (the span is still removed
    /// if present, so one bad line doesn't cascade).
    fn end(&mut self, id: u64, dur_ns: f64) -> Option<String> {
        match self.stack.last() {
            Some((top, _)) if *top == id => {
                let (_, path) = self.stack.pop().expect("non-empty");
                self.by_path
                    .entry(path.clone())
                    .or_default()
                    .observe(dur_ns);
                Some(path)
            }
            _ => {
                if let Some(pos) = self.stack.iter().rposition(|(sid, _)| *sid == id) {
                    let (_, path) = self.stack.remove(pos);
                    self.by_path.entry(path).or_default().observe(dur_ns);
                }
                None
            }
        }
    }

    fn into_tree(self) -> Vec<SpanNode> {
        self.by_path
            .into_iter()
            .map(|(path, hist)| {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(&path).to_string();
                SpanNode {
                    path,
                    name,
                    depth,
                    hist,
                }
            })
            .collect()
    }
}

/// Validates and folds a trace into a [`TraceAnalysis`]. The first
/// malformed line aborts with `Err` naming the line number; structural
/// oddities (unbalanced spans, odd nesting) are tolerated here — use
/// [`check_lines`] to gate on them.
pub fn analyze_lines<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<TraceAnalysis, String> {
    let mut a = TraceAnalysis::default();
    let mut spans = SpanState::default();
    for (i, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        a.lines += 1;
        *a.kind_counts.entry(ev.kind.clone()).or_insert(0) += 1;
        fold_metrics(&mut a.registry, &ev);
        match ev.kind.as_str() {
            "run_end" => a.runs += 1,
            "dispatch" => a.per_ws.entry(ev.u64("ws")?).or_default().dispatches += 1,
            "bank" => {
                let row = a.per_ws.entry(ev.u64("ws")?).or_default();
                row.banks += 1;
                row.banked += ev.f64("work")?;
                row.duplicate += ev.f64("duplicate")?;
            }
            "period_interrupt" => {
                a.per_ws.entry(ev.u64("ws")?).or_default().lost += ev.f64("lost")?;
            }
            "span_start" => spans.start(ev.u64("id")?, span_name(&ev)),
            "span_end" => {
                spans.end(ev.u64("id")?, ev.f64("dur_ns")?);
            }
            _ => {}
        }
    }
    a.span_tree = spans.into_tree();
    Ok(a)
}

fn span_name(ev: &ValidatedEvent) -> &str {
    ev.fields
        .get("name")
        .and_then(crate::json::JsonValue::as_str)
        .unwrap_or("?")
}

/// What [`check_lines`] verified, plus every violation found.
#[derive(Debug, Clone, Default)]
pub struct CheckSummary {
    /// Event lines checked.
    pub lines: usize,
    /// Complete runs seen.
    pub runs: usize,
    /// Spans opened.
    pub spans: u64,
    /// Farm runs whose bank sums reconciled bitwise with `run_end`.
    pub reconciled_runs: usize,
    /// Every invariant violation, in file order (capped).
    pub violations: Vec<String>,
    /// Set by [`check_text`] (non-strict) when the trace ends in a torn
    /// final record — a warning, not a violation: a run killed mid-write
    /// legitimately leaves one, and the journal reader truncates it.
    pub torn_tail: Option<String>,
}

impl CheckSummary {
    /// True when the trace passed every check (a torn tail alone, being a
    /// warning, does not fail the check).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

const MAX_VIOLATIONS: usize = 25;

/// Runs the full invariant suite over a trace (see the module docs for
/// the invariant list). Never aborts early: all violations up to a cap
/// are collected so one bad line still yields a useful report.
pub fn check_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> CheckSummary {
    check_impl(lines, false)
}

/// [`check_lines`] over raw trace text, with torn-tail awareness.
///
/// A process killed mid-write (the crash the `cs-obs` journal exists to
/// survive) leaves a final partial JSONL line. In the default lenient
/// mode that tail is reported as a [`CheckSummary::torn_tail`] *warning*,
/// the remaining trace is checked as a known prefix of a run (so an
/// unfinished run bracket or still-open spans are expected, not
/// violations), and mid-trace damage still fails. With `strict` the torn
/// line is a schema violation and incompleteness fails, exactly as
/// [`check_lines`] behaves.
pub fn check_text(text: &str, strict: bool) -> CheckSummary {
    let tail_is_torn = match text.rsplit('\n').next() {
        Some(tail) if !tail.trim().is_empty() => validate_line(tail).is_err(),
        _ => false, // empty text or newline-terminated
    };
    if !tail_is_torn || strict {
        return check_impl(text.lines(), false);
    }
    let head_end = text.rfind('\n').map_or(0, |i| i + 1);
    let tail = &text[head_end..];
    let mut s = check_impl(text[..head_end].lines(), true);
    s.torn_tail = Some(format!(
        "torn final record ({} bytes): {}",
        tail.len(),
        preview(tail)
    ));
    s
}

/// First few characters of a torn fragment, for the warning message.
fn preview(tail: &str) -> String {
    let cut = tail.char_indices().nth(40).map_or(tail.len(), |(i, _)| i);
    if cut < tail.len() {
        format!("{}…", &tail[..cut])
    } else {
        tail.to_string()
    }
}

/// Shared body of [`check_lines`] / [`check_text`]. With
/// `tolerate_prefix`, end-of-trace incompleteness (open run, open spans)
/// is not a violation — the caller knows the trace is a torn prefix.
fn check_impl<'a>(lines: impl IntoIterator<Item = &'a str>, tolerate_prefix: bool) -> CheckSummary {
    let mut s = CheckSummary::default();
    let violate = |s: &mut CheckSummary, msg: String| {
        if s.violations.len() < MAX_VIOLATIONS {
            s.violations.push(msg);
        }
    };

    // Run bracketing state.
    let mut in_run = false;
    let mut run_is_farm = false;
    let mut workstations = 0u64;
    let mut bank_sums: BTreeMap<u64, f64> = BTreeMap::new();
    let mut last_mc_done: Option<u64> = None;
    // Chunk-conservation state (farm runs only). The farm emits a chunk's
    // fate event right after its dispatch, so per workstation at most one
    // chunk awaits a fate (`open` = its dispatch line) and at most one
    // straggled chunk awaits a late arrival bank (`straggling`).
    #[derive(Default)]
    struct WsLife {
        open: Option<usize>,
        straggling: Option<usize>,
    }
    let mut ws_life: BTreeMap<u64, WsLife> = BTreeMap::new();
    // Span state.
    let mut spans = SpanState::default();
    let mut open_ids: BTreeMap<u64, usize> = BTreeMap::new(); // id -> start line
    let mut last_span_time = f64::NEG_INFINITY;

    for (i, line) in lines.into_iter().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let ev = match validate_line(line) {
            Ok(ev) => ev,
            Err(e) => {
                violate(&mut s, format!("line {n}: schema: {e}"));
                continue;
            }
        };
        s.lines += 1;
        match ev.kind.as_str() {
            "run_start" => {
                if in_run {
                    violate(&mut s, format!("line {n}: run_start inside an open run"));
                }
                in_run = true;
                workstations = ev.u64("workstations").unwrap_or(0);
                run_is_farm = workstations > 0;
                bank_sums.clear();
                last_mc_done = None;
                ws_life.clear();
            }
            "run_end" => {
                if !in_run {
                    violate(&mut s, format!("line {n}: run_end without run_start"));
                } else {
                    s.runs += 1;
                    if run_is_farm {
                        // The farm's completed_work is Σ over workstations
                        // (in index order) of per-ws bank sums (in event
                        // order); f64 addition is order-sensitive, so this
                        // recomputation is bitwise, not approximate.
                        let banked = ev.f64("banked").unwrap_or(f64::NAN);
                        let mut total = 0.0f64;
                        for ws in 0..workstations {
                            total += bank_sums.get(&ws).copied().unwrap_or(0.0);
                        }
                        if total.to_bits() != banked.to_bits() {
                            violate(
                                &mut s,
                                format!(
                                    "line {n}: bank sums do not reconcile with run_end: \
                                     Σ bank.work = {total:?}, run_end.banked = {banked:?}"
                                ),
                            );
                        } else {
                            s.reconciled_runs += 1;
                        }
                        // Chunk conservation at the run boundary: a chunk
                        // still awaiting its fate was neither banked nor
                        // explicitly lost. (An outstanding straggle lease
                        // is legal — the run can complete on the requeued
                        // copy while the late duplicate arrival is still
                        // in the air.)
                        for (ws, life) in &ws_life {
                            if let Some(open_line) = life.open {
                                violate(
                                    &mut s,
                                    format!(
                                        "line {n}: chunk dispatched to ws {ws} (line \
                                         {open_line}) never banked or lost by run_end"
                                    ),
                                );
                            }
                        }
                    }
                }
                in_run = false;
                ws_life.clear();
            }
            "bank" => {
                let ws = ev.u64("ws").unwrap_or(0);
                let work = ev.f64("work").unwrap_or(f64::NAN);
                if work < 0.0 || work.is_nan() {
                    violate(
                        &mut s,
                        format!("line {n}: bank.work = {work:?} (negative or NaN)"),
                    );
                }
                *bank_sums.entry(ws).or_insert(0.0) += work;
                if run_is_farm && ws >= workstations {
                    violate(
                        &mut s,
                        format!("line {n}: bank.ws = {ws} out of range (run has {workstations})"),
                    );
                } else if run_is_farm {
                    // Conservation: a bank must settle the open chunk or a
                    // straggler's late arrival; anything else is a second
                    // bank for work already accounted for.
                    let life = ws_life.entry(ws).or_default();
                    if life.open.take().is_none() && life.straggling.take().is_none() {
                        violate(
                            &mut s,
                            format!(
                                "line {n}: bank on ws {ws} with no dispatched chunk to \
                                 settle (double bank?)"
                            ),
                        );
                    }
                }
            }
            "dispatch" if run_is_farm => {
                let ws = ev.u64("ws").unwrap_or(0);
                let life = ws_life.entry(ws).or_default();
                if let Some(open_line) = life.open.replace(n) {
                    violate(
                        &mut s,
                        format!(
                            "line {n}: dispatch on ws {ws} while the chunk from line \
                             {open_line} is unresolved"
                        ),
                    );
                }
            }
            "period_interrupt" if run_is_farm => {
                let ws = ev.u64("ws").unwrap_or(0);
                if ws_life.entry(ws).or_default().open.take().is_none() {
                    violate(
                        &mut s,
                        format!("line {n}: period_interrupt on ws {ws} with no open chunk"),
                    );
                }
            }
            "message_lost" if run_is_farm => {
                let ws = ev.u64("ws").unwrap_or(0);
                if ws_life.entry(ws).or_default().open.take().is_none() {
                    violate(
                        &mut s,
                        format!("line {n}: message_lost on ws {ws} with no open chunk"),
                    );
                }
            }
            "crash" if run_is_farm => {
                // Legal with or without an open chunk: a crash can strike
                // mid-compute (killing the chunk) or between chunks.
                let ws = ev.u64("ws").unwrap_or(0);
                ws_life.entry(ws).or_default().open.take();
            }
            "straggle" if run_is_farm => {
                let ws = ev.u64("ws").unwrap_or(0);
                let life = ws_life.entry(ws).or_default();
                match life.open.take() {
                    Some(open_line) => {
                        if let Some(prev) = life.straggling.replace(open_line) {
                            violate(
                                &mut s,
                                format!(
                                    "line {n}: ws {ws} straggles while the chunk from \
                                     line {prev} is still in the air"
                                ),
                            );
                        }
                    }
                    None => violate(
                        &mut s,
                        format!("line {n}: straggle on ws {ws} with no open chunk"),
                    ),
                }
            }
            "mc_progress" => {
                let done = ev.u64("done").unwrap_or(0);
                let total = ev.u64("total").unwrap_or(0);
                if done > total {
                    violate(
                        &mut s,
                        format!("line {n}: mc_progress done {done} > total {total}"),
                    );
                }
                if let Some(prev) = last_mc_done {
                    if done <= prev {
                        violate(
                            &mut s,
                            format!("line {n}: mc_progress done {done} not after {prev}"),
                        );
                    }
                }
                last_mc_done = Some(done);
            }
            "span_start" => {
                s.spans += 1;
                let id = ev.u64("id").unwrap_or(0);
                if open_ids.insert(id, n).is_some() {
                    violate(
                        &mut s,
                        format!("line {n}: span id {id} reopened while open"),
                    );
                }
                if ev.time < last_span_time {
                    violate(
                        &mut s,
                        format!(
                            "line {n}: span timestamp {} before previous span event {}",
                            ev.time, last_span_time
                        ),
                    );
                }
                last_span_time = ev.time;
                spans.start(id, span_name(&ev));
            }
            "span_end" => {
                let id = ev.u64("id").unwrap_or(0);
                let dur = ev.f64("dur_ns").unwrap_or(f64::NAN);
                if dur < 0.0 || dur.is_nan() {
                    violate(&mut s, format!("line {n}: span_end dur_ns = {dur:?}"));
                }
                if ev.time < last_span_time {
                    violate(
                        &mut s,
                        format!(
                            "line {n}: span timestamp {} before previous span event {}",
                            ev.time, last_span_time
                        ),
                    );
                }
                last_span_time = ev.time;
                if open_ids.remove(&id).is_none() {
                    violate(
                        &mut s,
                        format!("line {n}: span_end for id {id} that is not open"),
                    );
                } else if spans.end(id, dur).is_none() {
                    violate(
                        &mut s,
                        format!("line {n}: span id {id} closed out of nesting order"),
                    );
                }
            }
            _ => {}
        }
    }
    if !tolerate_prefix {
        if in_run {
            violate(
                &mut s,
                "end of trace: run_start without run_end".to_string(),
            );
        }
        for (id, start_line) in &open_ids {
            violate(
                &mut s,
                format!("end of trace: span id {id} (opened line {start_line}) never closed"),
            );
        }
    }
    s
}

/// One row of a metrics or baseline diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name (`counter dispatches`, `sim_serial.wall_ns`, …).
    pub name: String,
    /// Value in the first (baseline) input.
    pub a: f64,
    /// Value in the second (candidate) input.
    pub b: f64,
    /// Signed relative change `(b - a) / |a|` (infinite when `a` is 0 and
    /// `b` is not; NaN when either side is missing/NaN).
    pub rel: f64,
    /// True when the change trips the threshold (for perf baselines, only
    /// in the regression direction).
    pub flagged: bool,
}

fn rel_change(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return if a.is_nan() && b.is_nan() {
            0.0
        } else {
            f64::NAN
        };
    }
    if a == b {
        return 0.0;
    }
    if a == 0.0 {
        return if b > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    (b - a) / a.abs()
}

/// Compares two metric registries (e.g. folded from two traces of the
/// same scenario). Every counter, gauge, and histogram (count and mean)
/// present in either side becomes a row; rows whose absolute relative
/// change exceeds `threshold` are flagged.
pub fn diff_registries(a: &MetricsRegistry, b: &MetricsRegistry, threshold: f64) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let mut keys: Vec<(String, f64, f64)> = Vec::new();

    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    names.extend(a.counters().map(|(k, _)| format!("counter {k}")));
    names.extend(b.counters().map(|(k, _)| format!("counter {k}")));
    for name in &names {
        let k = &name["counter ".len()..];
        keys.push((name.clone(), a.counter(k) as f64, b.counter(k) as f64));
    }
    let mut gnames: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    gnames.extend(a.gauges().map(|(k, _)| k.to_string()));
    gnames.extend(b.gauges().map(|(k, _)| k.to_string()));
    for k in &gnames {
        keys.push((
            format!("gauge {k}"),
            a.gauge(k).unwrap_or(f64::NAN),
            b.gauge(k).unwrap_or(f64::NAN),
        ));
    }
    let mut hnames: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    hnames.extend(a.histograms().map(|(k, _)| k.to_string()));
    hnames.extend(b.histograms().map(|(k, _)| k.to_string()));
    for k in &hnames {
        let (ac, am) = a.histogram(k).map_or((0.0, f64::NAN), |h| {
            (h.count() as f64, h.mean().unwrap_or(f64::NAN))
        });
        let (bc, bm) = b.histogram(k).map_or((0.0, f64::NAN), |h| {
            (h.count() as f64, h.mean().unwrap_or(f64::NAN))
        });
        keys.push((format!("histogram {k}.count"), ac, bc));
        keys.push((format!("histogram {k}.mean"), am, bm));
    }

    for (name, av, bv) in keys {
        let rel = rel_change(av, bv);
        let flagged = rel.is_nan() || rel.abs() > threshold;
        rows.push(DiffRow {
            name,
            a: av,
            b: bv,
            rel,
            flagged,
        });
    }
    rows
}

/// Reads one scenario's perf numbers out of a parsed `BENCH.json`.
fn bench_scenarios(doc: &Json) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("BENCH.json: missing \"scenarios\" array")?;
    let mut out = BTreeMap::new();
    for sc in scenarios {
        let id = sc
            .get("id")
            .and_then(Json::as_str)
            .ok_or("BENCH.json: scenario missing \"id\"")?
            .to_string();
        let mut nums = BTreeMap::new();
        // "speedup"/"efficiency" carry the mc_scaling_* parallel-scaling
        // ladder; like the throughput keys they regress downward (the
        // non-`_ns` direction rule below already handles that).
        for key in [
            "wall_ns",
            "events_per_sec",
            "mc_trials_per_sec",
            "speedup",
            "efficiency",
        ] {
            if let Some(v) = sc.get(key).and_then(Json::as_f64) {
                nums.insert(key.to_string(), v);
            }
        }
        // Span means are the workload-size-independent hot-path numbers
        // (`farm.dispatch` especially) — the rows a CI gate wants when the
        // scenario's total workload changed between baselines.
        if let Some(spans) = sc.get("spans").and_then(Json::as_obj) {
            for (name, span) in spans {
                if let Some(mean) = span.get("mean_ns").and_then(Json::as_f64) {
                    nums.insert(format!("spans.{name}.mean_ns"), mean);
                }
            }
        }
        out.insert(id, nums);
    }
    Ok(out)
}

/// Compares two `BENCH.json` baselines (`a` = baseline, `b` = candidate).
/// Rows are flagged only for *regressions* beyond `threshold`: wall time
/// or span means going up, throughput going down. Scenario sets may
/// differ; a scenario present on one side only is flagged.
pub fn diff_bench(a_text: &str, b_text: &str, threshold: f64) -> Result<Vec<DiffRow>, String> {
    let a = bench_scenarios(&parse_json(a_text)?)?;
    let b = bench_scenarios(&parse_json(b_text)?)?;
    let mut ids: std::collections::BTreeSet<&String> = a.keys().collect();
    ids.extend(b.keys());
    let mut rows = Vec::new();
    for id in ids {
        match (a.get(id), b.get(id)) {
            (Some(am), Some(bm)) => {
                let mut keys: std::collections::BTreeSet<&String> = am.keys().collect();
                keys.extend(bm.keys());
                for key in keys {
                    let av = am.get(key).copied().unwrap_or(f64::NAN);
                    let bv = bm.get(key).copied().unwrap_or(f64::NAN);
                    if av.is_nan() && bv.is_nan() {
                        continue; // metric not applicable to this scenario
                    }
                    let rel = rel_change(av, bv);
                    // Regression direction: wall time and span latencies
                    // up, throughput down.
                    let regression = if key.ends_with("_ns") { rel } else { -rel };
                    let flagged = rel.is_nan() || regression > threshold;
                    rows.push(DiffRow {
                        name: format!("{id}.{key}"),
                        a: av,
                        b: bv,
                        rel,
                        flagged,
                    });
                }
            }
            (only_a, _) => {
                rows.push(DiffRow {
                    name: format!(
                        "{id} (only in {})",
                        if only_a.is_some() {
                            "baseline"
                        } else {
                            "candidate"
                        }
                    ),
                    a: f64::NAN,
                    b: f64::NAN,
                    rel: f64::NAN,
                    flagged: true,
                });
            }
        }
    }
    Ok(rows)
}

/// The schema version the analyzer writes and understands (re-exported
/// so CLI help text stays in one place).
pub fn analyzer_schema_version() -> u32 {
    SCHEMA_VERSION
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::sink::{EventSink, MemorySink};
    use crate::span::SpanProfiler;

    fn farm_like_trace() -> Vec<String> {
        // A tiny hand-built farm trace: 2 workstations, profiled,
        // conservation-clean (every dispatch gets exactly one fate).
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::new();
        let run = prof.start("farm.run", &mut sink);
        sink.emit(&Event {
            time: 0.0,
            kind: EventKind::RunStart {
                seed: 1,
                workstations: 2,
                tasks: 10,
            },
        });
        let d = prof.start("farm.dispatch", &mut sink);
        sink.emit(&Event {
            time: 0.0,
            kind: EventKind::Dispatch {
                ws: 0,
                tasks: 3,
                work: 3.0,
            },
        });
        prof.end(d, &mut sink);
        let dispatch = |time: f64, ws: u64, tasks: u64, work: f64| Event {
            time,
            kind: EventKind::Dispatch { ws, tasks, work },
        };
        let bank = |time: f64, ws: u64, work: f64| Event {
            time,
            kind: EventKind::Bank {
                ws,
                work,
                duplicate: 0.0,
            },
        };
        sink.emit(&bank(1.0, 0, 3.0));
        // ws1's first chunk is reclaimed mid-compute; its redispatch banks.
        sink.emit(&dispatch(0.0, 1, 1, 0.5));
        sink.emit(&Event {
            time: 2.0,
            kind: EventKind::PeriodInterrupt { ws: 1, lost: 0.5 },
        });
        sink.emit(&dispatch(2.0, 1, 4, 4.0));
        sink.emit(&bank(6.0, 1, 4.0));
        sink.emit(&dispatch(1.0, 0, 2, 2.5));
        sink.emit(&bank(3.5, 0, 2.5));
        prof.end(run, &mut sink);
        sink.emit(&Event {
            time: 9.0,
            kind: EventKind::RunEnd {
                banked: (3.0 + 2.5) + 4.0,
                lost: 0.5,
                drained: true,
            },
        });
        sink.events.iter().map(Event::to_jsonl).collect()
    }

    #[test]
    fn analyze_folds_counts_spans_and_attribution() {
        let lines = farm_like_trace();
        let a = analyze_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.lines, lines.len());
        assert_eq!(a.runs, 1);
        assert_eq!(a.kind_counts["bank"], 3);
        assert_eq!(a.kind_counts["span_start"], 2);
        assert_eq!(a.per_ws[&0].banks, 2);
        assert_eq!(a.per_ws[&0].banked, 5.5);
        assert_eq!(a.per_ws[&1].lost, 0.5);
        assert_eq!(a.per_ws[&0].dispatches, 2);
        assert_eq!(a.per_ws[&1].dispatches, 2);
        // Span tree: farm.run root with farm.dispatch child.
        let paths: Vec<&str> = a.span_tree.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["farm.run", "farm.run/farm.dispatch"]);
        assert_eq!(a.span_tree[1].depth, 1);
        assert_eq!(a.span_tree[1].name, "farm.dispatch");
        // Registry mirrors MetricsSink.
        assert_eq!(a.registry.counter("chunks_banked"), 3);
        assert_eq!(a.registry.gauge("banked_work"), Some(9.5));
        assert!(a.registry.histogram("span_ns.farm.dispatch").is_some());
    }

    #[test]
    fn check_passes_a_well_formed_trace() {
        let lines = farm_like_trace();
        let s = check_lines(lines.iter().map(String::as_str));
        assert!(s.ok(), "{:?}", s.violations);
        assert_eq!(s.runs, 1);
        assert_eq!(s.reconciled_runs, 1);
        assert_eq!(s.spans, 2);
    }

    #[test]
    fn check_catches_corruption() {
        let mut lines = farm_like_trace();
        // Tamper with one bank amount: reconciliation must break.
        let idx = lines.iter().position(|l| l.contains("\"bank\"")).unwrap();
        lines[idx] = lines[idx].replace("\"work\":3", "\"work\":2.75");
        let s = check_lines(lines.iter().map(String::as_str));
        assert!(!s.ok());
        assert!(
            s.violations.iter().any(|v| v.contains("reconcile")),
            "{:?}",
            s.violations
        );

        // Truncation: drop the tail (run_end + span ends) — must be caught.
        let lines = farm_like_trace();
        let cut = &lines[..lines.len() - 2];
        let s = check_lines(cut.iter().map(String::as_str));
        assert!(!s.ok());
        assert!(
            s.violations.iter().any(|v| v.contains("never closed"))
                || s.violations.iter().any(|v| v.contains("without run_end")),
            "{:?}",
            s.violations
        );

        // Garbage line: schema violation.
        let mut lines = farm_like_trace();
        lines[2] = "{not json".to_string();
        let s = check_lines(lines.iter().map(String::as_str));
        assert!(
            s.violations.iter().any(|v| v.contains("schema")),
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn check_catches_conservation_violations() {
        // A bank with no dispatched chunk to settle.
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":2,"tasks":4}"#,
            r#"{"v":2,"t":1,"type":"bank","ws":1,"work":4,"duplicate":0}"#,
            r#"{"v":2,"t":1,"type":"run_end","banked":4,"lost":0,"drained":true}"#,
        ];
        let s = check_lines(lines);
        assert!(
            s.violations.iter().any(|v| v.contains("double bank")),
            "{:?}",
            s.violations
        );

        // A dispatched chunk that never resolves before run_end.
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":1,"tasks":4}"#,
            r#"{"v":2,"t":0,"type":"dispatch","ws":0,"tasks":4,"work":4}"#,
            r#"{"v":2,"t":1,"type":"run_end","banked":0,"lost":0,"drained":false}"#,
        ];
        let s = check_lines(lines);
        assert!(
            s.violations
                .iter()
                .any(|v| v.contains("never banked or lost")),
            "{:?}",
            s.violations
        );

        // Two dispatches with the first chunk unresolved.
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":1,"tasks":4}"#,
            r#"{"v":2,"t":0,"type":"dispatch","ws":0,"tasks":2,"work":2}"#,
            r#"{"v":2,"t":2,"type":"dispatch","ws":0,"tasks":2,"work":2}"#,
            r#"{"v":2,"t":4,"type":"bank","ws":0,"work":4,"duplicate":0}"#,
            r#"{"v":2,"t":4,"type":"run_end","banked":4,"lost":0,"drained":true}"#,
        ];
        let s = check_lines(lines);
        assert!(
            s.violations.iter().any(|v| v.contains("unresolved")),
            "{:?}",
            s.violations
        );

        // A reclaim with nothing in flight.
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":1,"tasks":4}"#,
            r#"{"v":2,"t":1,"type":"period_interrupt","ws":0,"lost":1}"#,
            r#"{"v":2,"t":2,"type":"run_end","banked":0,"lost":1,"drained":false}"#,
        ];
        let s = check_lines(lines);
        assert!(
            s.violations.iter().any(|v| v.contains("no open chunk")),
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn check_allows_legal_fates_and_stragglers() {
        // Crash between chunks, message loss, a straggler whose late bank
        // lands, and a reclaim — all conservation-legal.
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":3,"tasks":9}"#,
            // ws0: message lost, then redispatch banks.
            r#"{"v":2,"t":0,"type":"dispatch","ws":0,"tasks":3,"work":3}"#,
            r#"{"v":2,"t":0,"type":"message_lost","ws":0}"#,
            r#"{"v":2,"t":2,"type":"lease_timeout","ws":0,"lease":0}"#,
            r#"{"v":2,"t":2,"type":"requeue","ws":0,"tasks":3}"#,
            r#"{"v":2,"t":3,"type":"dispatch","ws":0,"tasks":3,"work":3}"#,
            r#"{"v":2,"t":6,"type":"bank","ws":0,"work":3,"duplicate":0}"#,
            // ws1: straggles, late arrival banks.
            r#"{"v":2,"t":0,"type":"dispatch","ws":1,"tasks":3,"work":6}"#,
            r#"{"v":2,"t":0,"type":"straggle","ws":1}"#,
            r#"{"v":2,"t":6,"type":"bank","ws":1,"work":6,"duplicate":0}"#,
            // ws2: dispatch-time crash (no open chunk) is legal.
            r#"{"v":2,"t":1,"type":"crash","ws":2}"#,
            r#"{"v":2,"t":7,"type":"run_end","banked":9,"lost":0,"drained":true}"#,
        ];
        let s = check_lines(lines);
        assert!(s.ok(), "{:?}", s.violations);
        assert_eq!(s.reconciled_runs, 1);
    }

    #[test]
    fn check_accepts_v1_traces() {
        let lines = [
            r#"{"v":1,"t":0,"type":"run_start","seed":1,"workstations":0,"tasks":0}"#,
            r#"{"v":1,"t":5,"type":"mc_progress","done":5,"total":10}"#,
            r#"{"v":1,"t":10,"type":"mc_progress","done":10,"total":10}"#,
            r#"{"v":1,"t":10,"type":"run_end","banked":4.5,"lost":1.5,"drained":false}"#,
        ];
        let s = check_lines(lines);
        assert!(s.ok(), "{:?}", s.violations);
        assert_eq!(s.runs, 1);
    }

    #[test]
    fn check_catches_non_monotone_mc_progress() {
        let lines = [
            r#"{"v":1,"t":0,"type":"run_start","seed":1,"workstations":0,"tasks":0}"#,
            r#"{"v":1,"t":8,"type":"mc_progress","done":8,"total":10}"#,
            r#"{"v":1,"t":5,"type":"mc_progress","done":5,"total":10}"#,
            r#"{"v":1,"t":10,"type":"run_end","banked":4.5,"lost":1.5,"drained":false}"#,
        ];
        let s = check_lines(lines);
        assert!(
            s.violations.iter().any(|v| v.contains("not after")),
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn diff_flags_changes_beyond_threshold() {
        let mut a = MetricsRegistry::new();
        a.counter_add("dispatches", 100);
        a.gauge_set("banked_work", 50.0);
        a.observe("bank_work", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("dispatches", 104); // +4% — under a 10% threshold
        b.gauge_set("banked_work", 80.0); // +60% — flagged
        b.observe("bank_work", 2.0);
        b.observe("bank_work", 2.0); // count doubles — flagged
        let rows = diff_registries(&a, &b, 0.10);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(!by_name("counter dispatches").flagged);
        assert!(by_name("gauge banked_work").flagged);
        assert!(by_name("histogram bank_work.count").flagged);
        assert!(!by_name("histogram bank_work.mean").flagged);
    }

    #[test]
    fn diff_bench_flags_regressions_only() {
        let a = r#"{"commit":"aaa","date":"2026-01-01","scenarios":[
            {"id":"s1","wall_ns":1000000,"events_per_sec":500000,"mc_trials_per_sec":null},
            {"id":"s2","wall_ns":2000000,"events_per_sec":100,"mc_trials_per_sec":800}]}"#;
        let b = r#"{"commit":"bbb","date":"2026-01-02","scenarios":[
            {"id":"s1","wall_ns":1500000,"events_per_sec":900000,"mc_trials_per_sec":null},
            {"id":"s3","wall_ns":1,"events_per_sec":1,"mc_trials_per_sec":1}]}"#;
        let rows = diff_bench(a, b, 0.20).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // Wall time +50% — regression, flagged.
        assert!(by_name("s1.wall_ns").flagged);
        // Throughput +80% — an improvement, not flagged.
        assert!(!by_name("s1.events_per_sec").flagged);
        // Scenario set drift is flagged both ways.
        assert!(rows.iter().any(|r| r.name.contains("s2") && r.flagged));
        assert!(rows.iter().any(|r| r.name.contains("s3") && r.flagged));
        // mc_trials_per_sec null on both sides of s1: no row at all.
        assert!(!rows.iter().any(|r| r.name == "s1.mc_trials_per_sec"));
    }

    #[test]
    fn diff_bench_compares_span_means_as_latencies() {
        let a = r#"{"commit":"aaa","date":"2026-01-01","scenarios":[
            {"id":"farm","wall_ns":1000,"events_per_sec":500,"mc_trials_per_sec":null,
             "spans":{"farm.dispatch":{"count":10,"total_ns":1000,"mean_ns":100,
                      "p50_ns":100,"p99_ns":100}}}]}"#;
        let b = r#"{"commit":"bbb","date":"2026-01-02","scenarios":[
            {"id":"farm","wall_ns":9000,"events_per_sec":500,"mc_trials_per_sec":null,
             "spans":{"farm.dispatch":{"count":90,"total_ns":4500,"mean_ns":50,
                      "p50_ns":50,"p99_ns":50}}}]}"#;
        let rows = diff_bench(a, b, 0.20).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // The span mean halved — an improvement for a latency row — even
        // though wall time blew up (bigger workload): per-row direction.
        assert!(!by_name("farm.spans.farm.dispatch.mean_ns").flagged);
        assert!(by_name("farm.wall_ns").flagged);
        // And a mean regression on the same numbers flags.
        let rows = diff_bench(b, a, 0.20).unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name == "farm.spans.farm.dispatch.mean_ns" && r.flagged));
    }

    #[test]
    fn schema_version_accessor_matches() {
        assert_eq!(analyzer_schema_version(), crate::SCHEMA_VERSION);
    }

    #[test]
    fn check_text_reports_a_torn_tail_as_a_warning() {
        // A run killed mid-episode: run_start + one bank, then a partial
        // record with no newline.
        let text = concat!(
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":1,"tasks":4}"#,
            "\n",
            r#"{"v":2,"t":0,"type":"dispatch","ws":0,"tasks":2,"work":2}"#,
            "\n",
            r#"{"v":2,"t":1,"type":"bank","ws":0,"work":2,"duplicate":0}"#,
            "\n",
            r#"{"v":2,"t":3,"ty"#,
        );
        let s = check_text(text, false);
        assert!(s.ok(), "lenient mode must pass: {:?}", s.violations);
        assert_eq!(s.lines, 3);
        let warn = s.torn_tail.expect("torn tail reported");
        assert!(warn.contains("torn final record"), "{warn}");
        // The open run is expected in a torn prefix, not a violation.
        assert!(!s.violations.iter().any(|v| v.contains("without run_end")));
    }

    #[test]
    fn check_text_strict_fails_on_a_torn_tail() {
        let text = concat!(
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":0,"tasks":0}"#,
            "\n",
            r#"{"v":2,"t":10,"type":"run_end","banked":4,"lost":0,"drained":true}"#,
            "\n",
            r#"{"v":2,"t":11,"type":"run_sta"#,
        );
        let s = check_text(text, true);
        assert!(!s.ok());
        assert!(
            s.violations.iter().any(|v| v.contains("schema")),
            "{:?}",
            s.violations
        );
        assert!(
            s.torn_tail.is_none(),
            "strict mode fails instead of warning"
        );
    }

    #[test]
    fn check_text_on_a_clean_trace_matches_check_lines() {
        let lines = farm_like_trace();
        let mut text = lines.join("\n");
        text.push('\n');
        let s = check_text(&text, false);
        assert!(s.ok(), "{:?}", s.violations);
        assert!(s.torn_tail.is_none());
        assert_eq!(s.runs, 1);
        assert_eq!(s.reconciled_runs, 1);
        // Strict on a clean trace is identical.
        let s = check_text(&text, true);
        assert!(s.ok(), "{:?}", s.violations);

        // Mid-trace damage still fails even in lenient mode.
        let damaged = text.replacen("\"type\":\"bank\"", "\"type\":\"bnak\"", 1);
        let s = check_text(&damaged, false);
        assert!(!s.ok());
    }

    #[test]
    fn check_text_truncated_but_valid_final_line_is_not_torn() {
        // No trailing newline, but the final line is a complete record:
        // not a torn tail, and normal incompleteness rules apply.
        let text = concat!(
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":0,"tasks":0}"#,
            "\n",
            r#"{"v":2,"t":10,"type":"run_end","banked":4,"lost":0,"drained":true}"#,
        );
        let s = check_text(text, false);
        assert!(s.ok(), "{:?}", s.violations);
        assert!(s.torn_tail.is_none());
        assert_eq!(s.runs, 1);
    }
}
