//! The span profiler: where does wall-clock time go inside a run?
//!
//! A [`SpanProfiler`] hands out hierarchical spans — named, nested
//! wall-clock intervals measured with [`Instant`] — and records them two
//! ways at once:
//!
//! * into its own [`MetricsRegistry`] as `span_ns.<name>` duration
//!   histograms (so p50/p90/p99 are one [`crate::Histogram::quantile`]
//!   call away), plus per-span counters via [`SpanProfiler::bump`];
//! * into the run's [`EventSink`] as schema-v2 `span_start`/`span_end`
//!   events, so a `--trace-out` JSONL file carries the timing tree
//!   alongside the simulation facts and `cyclesteal obs report` can
//!   rebuild it offline.
//!
//! Profiling is strictly **pass-through**: the profiler only ever reads
//! the wall clock, never the simulation's RNG or state, so a seeded run is
//! bit-identical in results with profiling on or off (regression-tested in
//! `tests/observability.rs`). A profiler built with
//! [`SpanProfiler::disabled`] is inert — every call is a cheap no-op — so
//! instrumented hot paths pay one branch when profiling is off.
//!
//! Two usage styles:
//!
//! * [`SpanProfiler::scope`] — RAII: the returned [`SpanGuard`] closes the
//!   span when dropped. Ergonomic for straight-line sections, but the
//!   guard borrows both the profiler and the sink for its lifetime.
//! * [`SpanProfiler::start`] / [`SpanProfiler::end`] — explicit pairing
//!   for loops that must keep using the sink inside the span (the farm
//!   event loop, the Monte-Carlo trial loop). Ending a span implicitly
//!   closes any children left open, keeping the emitted tree balanced
//!   even on early exits.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::sink::EventSink;
use std::time::Instant;

/// Handle to an open span. The zero id is inert: returned by a disabled
/// profiler, and safe to pass to [`SpanProfiler::end`] (no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The inert id (no span).
    pub const NONE: SpanId = SpanId(0);

    /// True for the inert id.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

#[derive(Debug)]
struct Frame {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
}

/// A hierarchical wall-clock span profiler (see the module docs).
#[derive(Debug)]
pub struct SpanProfiler {
    enabled: bool,
    epoch: Instant,
    next_id: u64,
    stack: Vec<Frame>,
    registry: MetricsRegistry,
}

impl SpanProfiler {
    /// An enabled profiler with its epoch at "now". Span event times are
    /// wall-clock seconds since this epoch (*not* virtual time).
    pub fn new() -> Self {
        Self {
            enabled: true,
            epoch: Instant::now(),
            next_id: 1,
            stack: Vec::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// An inert profiler: every call is a no-op. This is what
    /// un-profiled code paths thread through instrumented internals.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// True when spans are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` under the innermost open span (or as a
    /// root), emitting a `span_start` event. Returns the id to pass to
    /// [`SpanProfiler::end`].
    pub fn start(&mut self, name: &'static str, sink: &mut dyn EventSink) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let now = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.stack.last().map_or(0, |f| f.id);
        sink.emit(&Event {
            time: now.duration_since(self.epoch).as_secs_f64(),
            kind: EventKind::SpanStart { id, parent, name },
        });
        self.stack.push(Frame {
            id,
            parent,
            name,
            start: now,
        });
        SpanId(id)
    }

    /// Closes the span `id` (and, if the caller left any of its children
    /// open, those first — the emitted tree stays balanced). Records the
    /// duration into the `span_ns.<name>` histogram and emits `span_end`.
    /// No-op for [`SpanId::NONE`] or an id that is no longer open.
    pub fn end(&mut self, id: SpanId, sink: &mut dyn EventSink) {
        if id.is_none() || !self.enabled {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|f| f.id == id.0) else {
            self.registry.counter_add("span_end_mismatches", 1);
            return;
        };
        let now = Instant::now();
        while self.stack.len() > pos {
            let frame = self.stack.pop().expect("pos < len");
            let dur_ns = now.duration_since(frame.start).as_nanos() as f64;
            self.registry
                .observe(&format!("span_ns.{}", frame.name), dur_ns);
            sink.emit(&Event {
                time: now.duration_since(self.epoch).as_secs_f64(),
                kind: EventKind::SpanEnd {
                    id: frame.id,
                    parent: frame.parent,
                    name: frame.name,
                    dur_ns,
                },
            });
        }
    }

    /// Opens a RAII-scoped span: the returned guard closes it on drop.
    /// The guard borrows the profiler *and* the sink, so use
    /// [`SpanProfiler::start`]/[`SpanProfiler::end`] where the body needs
    /// the sink.
    pub fn scope<'a>(
        &'a mut self,
        name: &'static str,
        sink: &'a mut dyn EventSink,
    ) -> SpanGuard<'a> {
        let id = self.start(name, &mut *sink);
        SpanGuard {
            prof: self,
            sink,
            id,
        }
    }

    /// Adds `by` to the counter `span.<innermost-open-span>.<key>`
    /// (`span.root.<key>` outside any span): cheap per-span counters for
    /// things like events handled or trials run.
    pub fn bump(&mut self, key: &str, by: u64) {
        if !self.enabled {
            return;
        }
        let scope = self.stack.last().map_or("root", |f| f.name);
        self.registry
            .counter_add(&format!("span.{scope}.{key}"), by);
    }

    /// Number of spans still open (0 after balanced use).
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// The duration histograms and counters recorded so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Takes the recorded registry out of the profiler, leaving it empty.
    pub fn take_registry(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.registry)
    }
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard from [`SpanProfiler::scope`]: closes its span when dropped.
pub struct SpanGuard<'a> {
    prof: &'a mut SpanProfiler,
    sink: &'a mut dyn EventSink,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The guarded span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.prof.end(self.id, &mut *self.sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn names(events: &[Event]) -> Vec<(&'static str, &'static str)> {
        events
            .iter()
            .map(|e| match e.kind {
                EventKind::SpanStart { name, .. } => ("start", name),
                EventKind::SpanEnd { name, .. } => ("end", name),
                _ => panic!("unexpected kind"),
            })
            .collect()
    }

    #[test]
    fn nested_spans_emit_balanced_events_and_histograms() {
        let mut prof = SpanProfiler::new();
        let mut sink = MemorySink::new();
        let outer = prof.start("outer", &mut sink);
        let inner = prof.start("inner", &mut sink);
        prof.end(inner, &mut sink);
        prof.end(outer, &mut sink);
        assert_eq!(prof.open_spans(), 0);
        assert_eq!(
            names(&sink.events),
            vec![
                ("start", "outer"),
                ("start", "inner"),
                ("end", "inner"),
                ("end", "outer"),
            ]
        );
        // Parent/child linkage.
        let EventKind::SpanStart {
            id: outer_id,
            parent: 0,
            ..
        } = sink.events[0].kind
        else {
            panic!("outer should be a root span");
        };
        let EventKind::SpanStart { parent, .. } = sink.events[1].kind else {
            panic!();
        };
        assert_eq!(parent, outer_id);
        // Histograms recorded one duration per span name.
        assert_eq!(
            prof.registry().histogram("span_ns.outer").unwrap().count(),
            1
        );
        assert_eq!(
            prof.registry().histogram("span_ns.inner").unwrap().count(),
            1
        );
        // Inclusive timing: outer covers inner.
        let outer_ns = prof.registry().histogram("span_ns.outer").unwrap().sum();
        let inner_ns = prof.registry().histogram("span_ns.inner").unwrap().sum();
        assert!(outer_ns >= inner_ns, "{outer_ns} < {inner_ns}");
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let mut prof = SpanProfiler::disabled();
        let mut sink = MemorySink::new();
        let id = prof.start("anything", &mut sink);
        assert!(id.is_none());
        prof.bump("ticks", 5);
        prof.end(id, &mut sink);
        assert!(sink.events.is_empty());
        assert!(prof.registry().is_empty());
        assert!(!prof.is_enabled());
    }

    #[test]
    fn ending_a_parent_closes_open_children() {
        let mut prof = SpanProfiler::new();
        let mut sink = MemorySink::new();
        let outer = prof.start("outer", &mut sink);
        let _leaked = prof.start("leaked", &mut sink);
        prof.end(outer, &mut sink);
        assert_eq!(prof.open_spans(), 0);
        assert_eq!(
            names(&sink.events),
            vec![
                ("start", "outer"),
                ("start", "leaked"),
                ("end", "leaked"),
                ("end", "outer"),
            ]
        );
    }

    #[test]
    fn double_end_is_a_counted_no_op() {
        let mut prof = SpanProfiler::new();
        let mut sink = MemorySink::new();
        let id = prof.start("s", &mut sink);
        prof.end(id, &mut sink);
        prof.end(id, &mut sink);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(prof.registry().counter("span_end_mismatches"), 1);
    }

    #[test]
    fn scope_guard_closes_on_drop() {
        let mut prof = SpanProfiler::new();
        let mut sink = MemorySink::new();
        {
            let guard = prof.scope("scoped", &mut sink);
            assert!(!guard.id().is_none());
        }
        assert_eq!(prof.open_spans(), 0);
        assert_eq!(
            names(&sink.events),
            vec![("start", "scoped"), ("end", "scoped")]
        );
        // Emitted lines validate under schema v2.
        for e in &sink.events {
            crate::validate_line(&e.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn bump_namespaces_counters_by_open_span() {
        let mut prof = SpanProfiler::new();
        let mut sink = MemorySink::new();
        prof.bump("loose", 1);
        let id = prof.start("phase", &mut sink);
        prof.bump("events", 2);
        prof.bump("events", 3);
        prof.end(id, &mut sink);
        assert_eq!(prof.registry().counter("span.root.loose"), 1);
        assert_eq!(prof.registry().counter("span.phase.events"), 5);
    }
}
