//! Live telemetry: the flight recorder and heartbeat progress sink.
//!
//! Both sinks exist for runs that are *in trouble while still running* —
//! the multi-minute chaos sweep that seems stuck, the mega-farm run that
//! will be killed before its trace is written. They are strictly
//! pass-through like every [`EventSink`]: attaching them changes nothing
//! about a seeded run's results.
//!
//! * [`FlightRecorder`] keeps the last `capacity` events in a fixed-size
//!   ring (drop-oldest) and can dump them as JSONL on demand — or
//!   automatically when the thread is panicking, so a crashed run leaves
//!   its final seconds of evidence behind even with tracing off.
//! * [`ProgressSink`] folds the stream into a handful of running counters
//!   and writes one `RUN-PROGRESS {json}` line every `every` wall-clock
//!   seconds. The heartbeat goes to its own writer (stderr in the CLI),
//!   never into the trace, so traced output stays byte-identical whether
//!   heartbeats are on or off.

use crate::event::{Event, EventKind};
use crate::sink::EventSink;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// A bounded ring-buffer sink holding the most recent events.
///
/// `emit` is O(1): once the ring is full the oldest event is dropped and
/// counted. [`FlightRecorder::dump_to`] renders the retained window
/// oldest-first as schema-v2 JSONL (the same bytes a [`crate::JsonlSink`]
/// would have written for those events). With
/// [`FlightRecorder::with_dump_path`] the recorder also dumps itself when
/// dropped during a panic — the black-box use case.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    dump_path: Option<PathBuf>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
            dump_path: None,
        }
    }

    /// Dump the retained window to `path` if this recorder is dropped
    /// while the thread is panicking (black-box crash dump).
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped off the old end of the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes the retained window, oldest first, as JSONL. Returns the
    /// number of lines written. The ring is left intact (dump-on-demand
    /// must not disturb an ongoing recording).
    pub fn dump_to(&self, out: &mut dyn Write) -> std::io::Result<u64> {
        let mut n = 0u64;
        for ev in &self.ring {
            out.write_all(ev.to_jsonl().as_bytes())?;
            out.write_all(b"\n")?;
            n += 1;
        }
        out.flush()?;
        Ok(n)
    }
}

impl EventSink for FlightRecorder {
    fn emit(&mut self, event: &Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*event);
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Only the black-box case: a configured dump path and a panic in
        // flight. A normal drop stays silent.
        let Some(path) = self.dump_path.take() else {
            return;
        };
        if !std::thread::panicking() {
            return;
        }
        match std::fs::File::create(&path) {
            Ok(mut f) => match self.dump_to(&mut f) {
                Ok(n) => eprintln!(
                    "flight recorder: dumped {n} events ({} dropped) to {}",
                    self.dropped,
                    path.display()
                ),
                Err(e) => eprintln!("flight recorder: dump to {} failed: {e}", path.display()),
            },
            Err(e) => eprintln!("flight recorder: cannot create {}: {e}", path.display()),
        }
    }
}

/// Running totals a heartbeat line reports.
#[derive(Debug, Clone, Copy, Default)]
struct ProgressCounters {
    events: u64,
    dispatches: u64,
    banks: u64,
    banked_work: f64,
    reclaims: u64,
    lost_work: f64,
    requeues: u64,
    crashes: u64,
    replicas: u64,
    mc_done: u64,
    mc_total: u64,
    /// Latest *virtual* timestamp seen (farm time or trial count).
    last_time: f64,
}

/// Emits a `RUN-PROGRESS {json}` heartbeat line at a wall-clock cadence.
///
/// The sink folds the stream into running counters and, at most once
/// per `every` seconds (measured with [`Instant`], so virtual-time runs
/// heartbeat in real time), writes one line to its writer. `every == 0`
/// emits on every event — useful in tests and for `tail`-speed debugging.
/// Write errors are silently dropped: a broken stderr must never damage
/// the run.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    out: W,
    every: f64,
    last_emit: Option<Instant>,
    counters: ProgressCounters,
}

impl<W: Write> ProgressSink<W> {
    /// A heartbeat sink writing to `out` every `every` wall-clock seconds.
    pub fn new(out: W, every: f64) -> Self {
        Self {
            out,
            every: every.max(0.0),
            last_emit: None,
            counters: ProgressCounters::default(),
        }
    }

    /// Heartbeat lines emitted are prefixed with this tag.
    pub const TAG: &'static str = "RUN-PROGRESS";

    fn due(&self) -> bool {
        if self.every == 0.0 {
            return true;
        }
        match self.last_emit {
            None => true,
            Some(at) => at.elapsed().as_secs_f64() >= self.every,
        }
    }

    fn render(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counters;
        let mut s = format!("{} {{\"t\":", Self::TAG);
        crate::event::push_json_f64(&mut s, c.last_time);
        write!(
            s,
            ",\"events\":{},\"dispatches\":{},\"banks\":{},\"banked_work\":",
            c.events, c.dispatches, c.banks
        )
        .expect("write to String");
        crate::event::push_json_f64(&mut s, c.banked_work);
        write!(s, ",\"reclaims\":{},\"lost_work\":", c.reclaims).expect("write to String");
        crate::event::push_json_f64(&mut s, c.lost_work);
        write!(
            s,
            ",\"requeues\":{},\"crashes\":{},\"replicas\":{}",
            c.requeues, c.crashes, c.replicas
        )
        .expect("write to String");
        if c.mc_total > 0 {
            write!(s, ",\"mc_done\":{},\"mc_total\":{}", c.mc_done, c.mc_total)
                .expect("write to String");
        }
        s.push('}');
        s
    }

    /// Writes a heartbeat line now, regardless of cadence.
    pub fn emit_heartbeat(&mut self) {
        let line = self.render();
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
        self.last_emit = Some(Instant::now());
    }
}

impl<W: Write> EventSink for ProgressSink<W> {
    fn emit(&mut self, event: &Event) {
        let c = &mut self.counters;
        c.events += 1;
        match event.kind {
            EventKind::Dispatch { .. } => c.dispatches += 1,
            EventKind::Bank { work, .. } => {
                c.banks += 1;
                c.banked_work += work;
            }
            EventKind::PeriodInterrupt { lost, .. } => {
                c.reclaims += 1;
                c.lost_work += lost;
            }
            EventKind::Requeue { .. } => c.requeues += 1,
            EventKind::Crash { .. } => c.crashes += 1,
            EventKind::Replica { .. } => c.replicas += 1,
            EventKind::McProgress { done, total } => {
                c.mc_done = done;
                c.mc_total = total;
            }
            _ => {}
        }
        // Span events carry wall-clock-since-epoch times; keep the
        // heartbeat's `t` on the run's virtual clock.
        if !matches!(
            event.kind,
            EventKind::SpanStart { .. } | EventKind::SpanEnd { .. }
        ) {
            c.last_time = c.last_time.max(event.time);
        }
        if self.due() {
            self.emit_heartbeat();
        }
    }

    fn flush_sink(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, kind: EventKind) -> Event {
        Event { time, kind }
    }

    #[test]
    fn recorder_keeps_the_newest_window() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for ws in 0..5u64 {
            fr.emit(&ev(ws as f64, EventKind::EpisodeStart { ws }));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let mut out = Vec::new();
        let n = fr.dump_to(&mut out).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Oldest-first window over the last three events (ws 2, 3, 4).
        assert!(lines[0].contains("\"ws\":2"), "{}", lines[0]);
        assert!(lines[2].contains("\"ws\":4"), "{}", lines[2]);
        // Dumping twice yields the same bytes (ring left intact).
        let mut again = Vec::new();
        fr.dump_to(&mut again).unwrap();
        assert_eq!(text.as_bytes(), &again[..]);
        // Each line is a valid schema-v2 record.
        for l in lines {
            crate::validate_line(l).unwrap();
        }
    }

    #[test]
    fn recorder_capacity_floor_is_one() {
        let mut fr = FlightRecorder::new(0);
        fr.emit(&ev(0.0, EventKind::EpisodeStart { ws: 0 }));
        fr.emit(&ev(1.0, EventKind::EpisodeStart { ws: 1 }));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.dropped(), 1);
    }

    #[test]
    fn recorder_dumps_on_panic_when_configured() {
        let path = std::env::temp_dir().join("cs_obs_flight_panic_dump.jsonl");
        std::fs::remove_file(&path).ok();
        let path2 = path.clone();
        let res = std::panic::catch_unwind(move || {
            let mut fr = FlightRecorder::new(8).with_dump_path(&path2);
            fr.emit(&ev(1.0, EventKind::Crash { ws: 3 }));
            panic!("boom");
        });
        assert!(res.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"crash\""), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recorder_stays_silent_on_clean_drop() {
        let path = std::env::temp_dir().join("cs_obs_flight_clean_drop.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let mut fr = FlightRecorder::new(8).with_dump_path(&path);
            fr.emit(&ev(1.0, EventKind::Crash { ws: 3 }));
        }
        assert!(!path.exists(), "clean drop must not dump");
    }

    #[test]
    fn progress_sink_counts_and_heartbeats() {
        // every == 0: one heartbeat per event.
        let mut out = Vec::new();
        {
            let mut ps = ProgressSink::new(&mut out, 0.0);
            ps.emit(&ev(
                1.0,
                EventKind::Dispatch {
                    ws: 0,
                    tasks: 4,
                    work: 4.0,
                },
            ));
            ps.emit(&ev(
                5.0,
                EventKind::Bank {
                    ws: 0,
                    work: 4.0,
                    duplicate: 0.0,
                },
            ));
            ps.emit(&ev(6.0, EventKind::PeriodInterrupt { ws: 1, lost: 2.5 }));
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.starts_with("RUN-PROGRESS {")));
        let last = lines[2];
        assert!(last.contains("\"events\":3"), "{last}");
        assert!(last.contains("\"banked_work\":4"), "{last}");
        assert!(last.contains("\"reclaims\":1"), "{last}");
        assert!(last.contains("\"lost_work\":2.5"), "{last}");
        assert!(last.contains("\"t\":6"), "{last}");
    }

    #[test]
    fn progress_sink_throttles_on_wall_clock() {
        // A large cadence: the first event heartbeats (nothing emitted
        // yet), the rest are throttled.
        let mut out = Vec::new();
        {
            let mut ps = ProgressSink::new(&mut out, 3600.0);
            for i in 0..100u64 {
                ps.emit(&ev(i as f64, EventKind::EpisodeStart { ws: 0 }));
            }
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
    }

    #[test]
    fn progress_sink_reports_mc_progress() {
        let mut out = Vec::new();
        {
            let mut ps = ProgressSink::new(&mut out, 0.0);
            ps.emit(&ev(
                50.0,
                EventKind::McProgress {
                    done: 50,
                    total: 100,
                },
            ));
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"mc_done\":50,\"mc_total\":100"), "{text}");
    }

    #[test]
    fn progress_sink_ignores_span_wall_times() {
        let mut out = Vec::new();
        {
            let mut ps = ProgressSink::new(&mut out, 0.0);
            ps.emit(&ev(
                1e9, // wall-clock-ish span timestamp
                EventKind::SpanStart {
                    id: 1,
                    parent: 0,
                    name: "farm.run",
                },
            ));
            ps.emit(&ev(2.0, EventKind::EpisodeStart { ws: 0 }));
        }
        let text = String::from_utf8(out).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"t\":2"), "{last}");
    }
}
