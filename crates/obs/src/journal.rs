//! Durable write-ahead journal over the v2 event schema.
//!
//! A journal is an ordinary JSONL event trace (same lines [`JsonlSink`]
//! writes, same [`crate::validate_line`] contract) with two extra
//! guarantees that turn it into a WAL:
//!
//! * **fsync-on-commit** — [`JournalWriter`] writes every record straight
//!   to the file (no userspace buffer) and calls `fdatasync` per its
//!   [`FsyncPolicy`], so a committed record survives not just a killed
//!   process but a killed machine.
//! * **torn-tail-tolerant reads** — a crash can land mid-write, leaving a
//!   final partial line. [`read_journal`] truncates at the last complete,
//!   schema-valid record instead of erroring; only damage *before* the
//!   tail is corruption.
//!
//! The journal records master state transitions by value (every dispatch,
//! bank, requeue, quarantine, …), so a deterministic producer can replay
//! the prefix against its own regenerated stream and continue appending —
//! see `cs-now`'s `Farm::resume` for the consumer side.
//!
//! [`JsonlSink`]: crate::JsonlSink

use crate::event::{Event, EventKind};
use crate::schema::validate_line;
use crate::sink::EventSink;
use crate::vfs::{StdVfs, StdVfsFile, Vfs, VfsFile};
use std::fs::File;
use std::path::Path;

/// When [`JournalWriter`] forces records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: maximal durability, one syscall per
    /// event.
    EveryRecord,
    /// Group commit on the virtual clock: sync whenever the event stream's
    /// high-water time has advanced by at least this many virtual time
    /// units since the last sync (plus a final sync at `finish`). The
    /// cadence is the checkpoint-interval question of the paper's §4.2
    /// Remark; `cs-saves::guideline_interval` computes a principled value.
    Interval(f64),
}

/// Durability counters reported by [`JournalWriter::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records written (journal lines).
    pub records: u64,
    /// `fdatasync` calls issued.
    pub syncs: u64,
}

/// Fsync-on-commit JSONL event writer ([`EventSink`]).
///
/// I/O discipline follows [`crate::JsonlSink`]: `emit` stays infallible
/// (the pass-through contract — producers must not branch on sink health),
/// the first I/O error is latched and surfaced by
/// [`JournalWriter::finish`], and later emits go quiet. Unlike
/// `JsonlSink` there is no userspace buffer: a record is in the OS page
/// cache as soon as `emit` returns and on stable storage per the
/// [`FsyncPolicy`].
#[derive(Debug)]
pub struct JournalWriter {
    file: Option<Box<dyn VfsFile>>,
    policy: FsyncPolicy,
    stats: JournalStats,
    error: Option<std::io::Error>,
    /// Virtual-time high-water mark at the last sync (Interval policy).
    synced_mark: f64,
    /// Largest finite event time seen so far.
    high_water: f64,
}

impl JournalWriter {
    /// Creates (truncating) `path` and returns a journal writing to it.
    pub fn create(path: impl AsRef<Path>, policy: FsyncPolicy) -> std::io::Result<Self> {
        Self::create_with(&StdVfs, path.as_ref(), policy)
    }

    /// [`JournalWriter::create`] through an injectable [`Vfs`].
    pub fn create_with(vfs: &dyn Vfs, path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        Ok(Self::from_handle(vfs.create(path)?, policy))
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_len` bytes (the [`read_journal`] `complete_bytes` — this is
    /// how a resuming master discards a torn tail).
    pub fn append_at(
        path: impl AsRef<Path>,
        valid_len: u64,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        Self::append_at_with(&StdVfs, path.as_ref(), valid_len, policy)
    }

    /// [`JournalWriter::append_at`] through an injectable [`Vfs`].
    pub fn append_at_with(
        vfs: &dyn Vfs,
        path: &Path,
        valid_len: u64,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        Ok(Self::from_handle(vfs.open_append(path, valid_len)?, policy))
    }

    /// Wraps an already-open file (tests and special handles).
    pub fn from_file(file: File, policy: FsyncPolicy) -> Self {
        Self::from_handle(Box::new(StdVfsFile(file)), policy)
    }

    /// Wraps an already-open [`VfsFile`] handle.
    pub fn from_handle(file: Box<dyn VfsFile>, policy: FsyncPolicy) -> Self {
        Self {
            file: Some(file),
            policy,
            stats: JournalStats::default(),
            error: None,
            synced_mark: 0.0,
            high_water: 0.0,
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.stats.records
    }

    /// The first latched I/O error, if any. `emit` is infallible by
    /// contract, so a caller that wants to *react* to a dying disk
    /// mid-run (fail-stop or degrade, rather than discovering the
    /// failure at [`JournalWriter::finish`]) polls this at its own
    /// commit points.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Writes raw bytes outside record accounting, after syncing committed
    /// records. This is the chaos/test hook behind deterministic torn-tail
    /// injection (`--kill-after` writes a partial record and aborts);
    /// production code never needs it.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.sync();
        if self.error.is_some() {
            return;
        }
        if let Some(f) = self.file.as_mut() {
            if let Err(e) = f.write_all(bytes).and_then(|()| f.sync_data()) {
                self.error = Some(e);
            }
        }
    }

    fn sync(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Some(f) = self.file.as_mut() {
            match f.sync_data() {
                Ok(()) => {
                    self.stats.syncs += 1;
                    self.synced_mark = self.high_water;
                }
                Err(e) => self.error = Some(e),
            }
        }
    }

    /// Final sync, then surfaces the first latched I/O error. Returns the
    /// durability counters on success.
    pub fn finish(mut self) -> std::io::Result<JournalStats> {
        let (stats, err) = self.finish_parts();
        match err {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Like [`JournalWriter::finish`], but always returns the counters
    /// alongside the error — for callers (degraded-mode runs, journal
    /// segment rotation) that must keep accounting even when the disk
    /// died.
    pub fn finish_parts(&mut self) -> (JournalStats, Option<std::io::Error>) {
        if self.file.is_some() {
            self.sync();
            self.file = None;
        }
        (self.stats, self.error.take())
    }
}

impl EventSink for JournalWriter {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let Some(f) = self.file.as_mut() else {
            return;
        };
        let mut line = event.to_jsonl();
        line.push('\n');
        if let Err(e) = f.write_all(line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.stats.records += 1;
        if event.time.is_finite() && event.time > self.high_water {
            self.high_water = event.time;
        }
        let due = match self.policy {
            FsyncPolicy::EveryRecord => true,
            // Commit points also land on run boundaries so a completed run
            // is never left unsynced behind a long cadence.
            FsyncPolicy::Interval(dt) => {
                self.high_water - self.synced_mark >= dt
                    || matches!(event.kind, EventKind::RunEnd { .. })
            }
        };
        if due {
            self.sync();
        }
    }

    fn flush_sink(&mut self) {
        self.sync();
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // `finish` already took the file on the happy path; this runs for
        // journals dropped early (panics, error returns). Records were
        // written unbuffered, so only the final sync can still fail.
        if let Some(mut f) = self.file.take() {
            let sync_err = f.sync_data().err();
            if let Some(e) = self.error.take().or(sync_err) {
                eprintln!(
                    "warning: journal incomplete ({} records committed): {e}",
                    self.stats.records
                );
            }
        }
    }
}

/// What [`read_journal`] recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalContents {
    /// The complete, schema-valid records, in file order.
    pub records: Vec<String>,
    /// Byte length of the valid prefix (each record plus its newline).
    /// Truncating the file to this length discards exactly the torn tail.
    pub complete_bytes: u64,
    /// Bytes after the valid prefix that were discarded as a torn final
    /// record (`0` for a cleanly closed journal).
    pub torn_bytes: u64,
}

impl JournalContents {
    /// True when the file ended mid-record.
    pub fn is_torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Why a journal could not be read.
#[derive(Debug)]
pub enum JournalReadError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// A record *before* the final one is invalid — damage inside the
    /// committed prefix is corruption, not a torn tail, and recovery must
    /// not guess its way past it.
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// What the schema validator rejected.
        reason: String,
    },
}

impl std::fmt::Display for JournalReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalReadError::Io(e) => write!(f, "journal read failed: {e}"),
            JournalReadError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalReadError {}

impl From<std::io::Error> for JournalReadError {
    fn from(e: std::io::Error) -> Self {
        JournalReadError::Io(e)
    }
}

/// Reads a journal, tolerating a torn final record.
///
/// A record is *complete* when it is newline-terminated and passes
/// [`validate_line`]. The scan stops at the first incomplete record:
///
/// * trailing bytes with no newline → torn tail (discarded, reported);
/// * a final newline-terminated line that fails validation → also treated
///   as torn (a kernel may persist the newline of a partially synced
///   write);
/// * an invalid line *followed by* further records → hard
///   [`JournalReadError::Corrupt`].
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalContents, JournalReadError> {
    read_journal_with(&StdVfs, path.as_ref())
}

/// [`read_journal`] through an injectable [`Vfs`].
pub fn read_journal_with(vfs: &dyn Vfs, path: &Path) -> Result<JournalContents, JournalReadError> {
    let bytes = vfs.read(path)?;
    let mut out = JournalContents::default();
    let mut offset = 0usize;
    let mut lineno = 0usize;
    while offset < bytes.len() {
        lineno += 1;
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // unterminated tail
        };
        let line = &bytes[offset..offset + nl];
        let parsed = std::str::from_utf8(line)
            .map_err(|e| e.to_string())
            .and_then(|s| validate_line(s).map(|_| s));
        match parsed {
            Ok(s) => {
                out.records.push(s.to_string());
                offset += nl + 1;
            }
            Err(reason) => {
                // Valid records after this line mean mid-file corruption.
                let rest = &bytes[offset + nl + 1..];
                let has_later_record = rest
                    .split(|&b| b == b'\n')
                    .any(|l| std::str::from_utf8(l).is_ok_and(|s| validate_line(s).is_ok()));
                if has_later_record {
                    return Err(JournalReadError::Corrupt {
                        line: lineno,
                        reason,
                    });
                }
                break; // torn tail
            }
        }
    }
    out.complete_bytes = offset as u64;
    out.torn_bytes = (bytes.len() - offset) as u64;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(time: f64, kind: EventKind) -> Event {
        Event { time, kind }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "cs_obs_journal_{name}_{}.jsonl",
            std::process::id()
        ))
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(
                0.0,
                EventKind::RunStart {
                    seed: 9,
                    workstations: 1,
                    tasks: 4,
                },
            ),
            ev(
                1.0,
                EventKind::Dispatch {
                    ws: 0,
                    tasks: 4,
                    work: 4.0,
                },
            ),
            ev(
                5.0,
                EventKind::Bank {
                    ws: 0,
                    work: 4.0,
                    duplicate: 0.0,
                },
            ),
            ev(
                5.0,
                EventKind::RunEnd {
                    banked: 4.0,
                    lost: 0.0,
                    drained: true,
                },
            ),
        ]
    }

    #[test]
    fn writes_and_reads_round_trip() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryRecord).unwrap();
        for e in sample_events() {
            w.emit(&e);
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.records, 4);
        assert!(stats.syncs >= 4, "{stats:?}");
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records.len(), 4);
        assert!(!j.is_torn());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(j.complete_bytes, text.len() as u64);
        assert_eq!(
            j.records,
            sample_events()
                .iter()
                .map(Event::to_jsonl)
                .collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interval_policy_syncs_less_often() {
        let path = tmp("interval");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Interval(100.0)).unwrap();
        for i in 0..50u64 {
            w.emit(&ev(i as f64, EventKind::EpisodeStart { ws: 0 }));
        }
        let lazy = w.finish().unwrap();
        assert_eq!(lazy.records, 50);
        // 49 time units of progress never crosses the 100-unit cadence:
        // only the finish sync fires.
        assert_eq!(lazy.syncs, 1, "{lazy:?}");

        let mut w = JournalWriter::create(&path, FsyncPolicy::Interval(10.0)).unwrap();
        for i in 0..50u64 {
            w.emit(&ev(i as f64, EventKind::EpisodeStart { ws: 0 }));
        }
        let eager = w.finish().unwrap();
        assert!(eager.syncs > lazy.syncs, "{eager:?} vs {lazy:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_end_forces_a_commit_under_interval_policy() {
        let path = tmp("runend");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Interval(1e12)).unwrap();
        for e in sample_events() {
            w.emit(&e);
        }
        assert_eq!(w.stats.syncs, 1, "run_end must sync despite the cadence");
        w.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryRecord).unwrap();
        for e in sample_events() {
            w.emit(&e);
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        w.write_raw(b"{\"v\":2,\"t\":12.5,\"ty");
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records.len(), 4);
        assert!(j.is_torn());
        assert_eq!(j.complete_bytes, clean_len);
        assert_eq!(j.torn_bytes, 19);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newline_terminated_garbage_tail_is_torn_too() {
        let path = tmp("garbage_tail");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryRecord).unwrap();
        for e in sample_events() {
            w.emit(&e);
        }
        w.write_raw(b"{\"v\":2,\"t\":\n");
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records.len(), 4);
        assert!(j.is_torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_damage_is_corruption() {
        let path = tmp("corrupt");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryRecord).unwrap();
        for e in sample_events() {
            w.emit(&e);
        }
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"type\":\"dispatch\"", "\"type\":\"disptach\"", 1);
        std::fs::write(&path, tampered).unwrap();
        match read_journal(&path) {
            Err(JournalReadError::Corrupt { line: 2, reason }) => {
                assert!(reason.contains("disptach"), "{reason}");
            }
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_at_truncates_the_torn_tail_and_continues() {
        let path = tmp("append");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryRecord).unwrap();
        let events = sample_events();
        w.emit(&events[0]);
        w.emit(&events[1]);
        w.write_raw(b"{\"v\":2,\"t");
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records.len(), 2);
        let mut w =
            JournalWriter::append_at(&path, j.complete_bytes, FsyncPolicy::EveryRecord).unwrap();
        w.emit(&events[2]);
        w.emit(&events[3]);
        w.finish().unwrap();
        let j = read_journal(&path).unwrap();
        assert!(!j.is_torn());
        assert_eq!(
            j.records,
            events.iter().map(Event::to_jsonl).collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_journal_reads_empty() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let j = read_journal(&path).unwrap();
        assert!(j.records.is_empty());
        assert!(!j.is_torn());
        assert_eq!(j.complete_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_errors_latch_and_surface_at_finish() {
        let path = tmp("readonly");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap(); // read-only handle
        let mut w = JournalWriter::from_file(file, FsyncPolicy::EveryRecord);
        for e in sample_events() {
            w.emit(&e);
        }
        assert!(w.finish().is_err());
        std::fs::remove_file(&path).ok();
    }
}
