//! JSONL validation against the event schema.
//!
//! [`validate_line`] is the consumer-side contract check: every line a sink
//! emitted must parse, carry a supported schema version
//! ([`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`] — v1 traces without span
//! events still validate), name a type in [`ALL_KINDS`] introduced no later
//! than the line's declared version, and provide that type's required
//! fields with the right scalar kinds. The CI smoke step,
//! `exp_obs_validate` and `cyclesteal obs check` run this over real trace
//! files.

use crate::event::{ALL_KINDS, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
use crate::json::{parse_object, JsonValue};
use std::collections::BTreeMap;

/// A schema-validated JSONL line, decoded into its common parts.
#[derive(Debug, Clone)]
pub struct ValidatedEvent {
    /// The `"t"` timestamp (NaN when serialized as `null`).
    pub time: f64,
    /// The `"type"` string (guaranteed ∈ [`ALL_KINDS`]).
    pub kind: String,
    /// All fields of the line, for reconciliation.
    pub fields: BTreeMap<String, JsonValue>,
}

impl ValidatedEvent {
    /// Reads field `key` as a float (errors name the field).
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        self.fields
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{}: missing numeric field {key:?}", self.kind))
    }

    /// Reads field `key` as a non-negative integer.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        self.fields
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{}: missing integer field {key:?}", self.kind))
    }
}

/// Required fields per event type, as `(name, is_integer)` pairs. Floats
/// accept `null` (non-finite); integers do not.
fn required_fields(kind: &str) -> &'static [(&'static str, bool)] {
    match kind {
        "run_start" => &[("seed", true), ("workstations", true), ("tasks", true)],
        "episode_start" | "storm_kill" | "crash" | "message_lost" | "straggle" => &[("ws", true)],
        "period_start" => &[("ws", true), ("len", false)],
        "period_commit" => &[("ws", true), ("work", false)],
        "period_interrupt" => &[("ws", true), ("lost", false)],
        "dispatch" => &[("ws", true), ("tasks", true), ("work", false)],
        "bank" => &[("ws", true), ("work", false), ("duplicate", false)],
        "lease_timeout" => &[("ws", true), ("lease", true)],
        "requeue" | "replica" => &[("ws", true), ("tasks", true)],
        "backoff" => &[("ws", true), ("delay", false)],
        "quarantine" => &[("ws", true), ("until", false)],
        "mc_progress" => &[("done", true), ("total", true)],
        "run_end" => &[("banked", false), ("lost", false)],
        "span_start" => &[("id", true), ("parent", true)],
        "span_end" => &[("id", true), ("parent", true), ("dur_ns", false)],
        _ => &[],
    }
}

/// The schema version that introduced `kind`. A line may only carry kinds
/// no newer than its declared `"v"`.
fn kind_min_version(kind: &str) -> u32 {
    match kind {
        "span_start" | "span_end" => 2,
        _ => 1,
    }
}

/// Validates one JSONL line: parses, checks the schema version, the event
/// type and that type's required fields.
pub fn validate_line(line: &str) -> Result<ValidatedEvent, String> {
    let fields = parse_object(line)?;
    let version = fields
        .get("v")
        .and_then(JsonValue::as_u64)
        .ok_or("missing schema version \"v\"")?;
    if version < u64::from(MIN_SCHEMA_VERSION) || version > u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema version {version} (this validator understands \
             {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
        ));
    }
    let kind = fields
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing event \"type\"")?
        .to_string();
    if !ALL_KINDS.contains(&kind.as_str()) {
        return Err(format!("unknown event type {kind:?}"));
    }
    if u64::from(kind_min_version(&kind)) > version {
        return Err(format!(
            "event type {kind:?} needs schema version {} but the line declares v{version}",
            kind_min_version(&kind)
        ));
    }
    if !fields.contains_key("t") {
        return Err(format!("{kind}: missing timestamp \"t\""));
    }
    let time = fields["t"].as_f64().ok_or("timestamp \"t\" not a number")?;
    for &(name, is_int) in required_fields(&kind) {
        let value = fields
            .get(name)
            .ok_or_else(|| format!("{kind}: missing field {name:?}"))?;
        if is_int {
            value
                .as_u64()
                .ok_or_else(|| format!("{kind}: field {name:?} not an integer"))?;
        } else {
            value
                .as_f64()
                .ok_or_else(|| format!("{kind}: field {name:?} not a number"))?;
        }
    }
    if kind == "run_end" {
        fields
            .get("drained")
            .and_then(JsonValue::as_bool)
            .ok_or("run_end: missing boolean \"drained\"")?;
    }
    if kind.starts_with("span_") {
        let name = fields
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{kind}: missing string \"name\""))?;
        if name.is_empty() {
            return Err(format!("{kind}: empty span name"));
        }
        let id = fields["id"].as_u64().unwrap_or(0);
        if id == 0 {
            return Err(format!("{kind}: span id must be non-zero"));
        }
    }
    Ok(ValidatedEvent { time, kind, fields })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    #[test]
    fn every_emitted_kind_validates() {
        let events = [
            EventKind::RunStart {
                seed: 42,
                workstations: 4,
                tasks: 100,
            },
            EventKind::EpisodeStart { ws: 1 },
            EventKind::PeriodStart { ws: 1, len: 8.0 },
            EventKind::PeriodCommit { ws: 1, work: 6.0 },
            EventKind::PeriodInterrupt { ws: 1, lost: 6.0 },
            EventKind::Dispatch {
                ws: 1,
                tasks: 6,
                work: 6.0,
            },
            EventKind::Bank {
                ws: 1,
                work: 6.0,
                duplicate: 0.0,
            },
            EventKind::LeaseTimeout { ws: 1, lease: 3 },
            EventKind::Requeue { ws: 1, tasks: 6 },
            EventKind::Backoff { ws: 1, delay: 2.0 },
            EventKind::Quarantine { ws: 1, until: 50.0 },
            EventKind::StormKill { ws: 1 },
            EventKind::Crash { ws: 1 },
            EventKind::MessageLost { ws: 1 },
            EventKind::Straggle { ws: 1 },
            EventKind::Replica { ws: 1, tasks: 2 },
            EventKind::McProgress { done: 1, total: 2 },
            EventKind::RunEnd {
                banked: 99.0,
                lost: 1.0,
                drained: true,
            },
            EventKind::SpanStart {
                id: 1,
                parent: 0,
                name: "farm.run",
            },
            EventKind::SpanEnd {
                id: 1,
                parent: 0,
                name: "farm.run",
                dur_ns: 9.5,
            },
        ];
        for kind in events {
            let line = Event { time: 1.25, kind }.to_jsonl();
            let v = validate_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.kind, kind.name());
            assert_eq!(v.time, 1.25);
        }
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line(r#"{"t":1,"type":"bank"}"#).is_err()); // no version
        assert!(
            validate_line(r#"{"v":99,"t":1,"type":"bank","ws":0,"work":1,"duplicate":0}"#).is_err()
        ); // future version
        assert!(validate_line(r#"{"v":0,"t":1,"type":"crash","ws":0}"#).is_err()); // version 0
        assert!(validate_line(r#"{"v":1,"t":1,"type":"martian"}"#).is_err());
        assert!(validate_line(r#"{"v":1,"t":1,"type":"bank","ws":0}"#).is_err()); // missing fields
        assert!(validate_line(r#"{"v":1,"type":"crash","ws":0}"#).is_err()); // no timestamp
        assert!(validate_line(r#"{"v":1,"t":1,"type":"crash","ws":-1}"#).is_err());
        // bad int
    }

    #[test]
    fn version_back_compat_and_span_gating() {
        // A v1 line with a v1 kind still validates under the v2 validator.
        let v1 = r#"{"v":1,"t":1,"type":"bank","ws":0,"work":1,"duplicate":0}"#;
        assert_eq!(validate_line(v1).unwrap().kind, "bank");
        // Span kinds were introduced in v2: a v1 line may not carry them.
        let v1_span = r#"{"v":1,"t":0,"type":"span_start","id":1,"parent":0,"name":"x"}"#;
        let err = validate_line(v1_span).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
        // The same kind under v2 is fine.
        let v2_span = r#"{"v":2,"t":0,"type":"span_start","id":1,"parent":0,"name":"x"}"#;
        assert_eq!(validate_line(v2_span).unwrap().kind, "span_start");
        // Span structural checks: non-empty name, non-zero id.
        assert!(
            validate_line(r#"{"v":2,"t":0,"type":"span_start","id":1,"parent":0,"name":""}"#)
                .is_err()
        );
        assert!(
            validate_line(r#"{"v":2,"t":0,"type":"span_start","id":0,"parent":0,"name":"x"}"#)
                .is_err()
        );
        assert!(validate_line(r#"{"v":2,"t":0,"type":"span_start","id":1,"parent":0}"#).is_err());
    }

    #[test]
    fn field_accessors_report_names() {
        let v = validate_line(r#"{"v":1,"t":0,"type":"requeue","ws":2,"tasks":7}"#).unwrap();
        assert_eq!(v.u64("tasks").unwrap(), 7);
        assert_eq!(v.f64("tasks").unwrap(), 7.0);
        assert!(v.u64("absent").unwrap_err().contains("absent"));
    }
}
