//! Causal chunk lineage: from a farm trace to *where the makespan went*.
//!
//! [`analyze_lineage_lines`] replays a farm's v2 event stream through a
//! small per-workstation lifecycle state machine and reconstructs every
//! chunk's waterfall record — queue wait, service time, fate, wasted
//! work, retries — then derives three run-level artifacts:
//!
//! * a **phase attribution**: the run's total workstation-time
//!   (`workstations × makespan`) split into useful compute, duplicate
//!   (losing-replica) compute, work lost to reclaims and crashes, time
//!   lost in transit, post-crash dead time, unresolved in-flight time and
//!   idle. The phases sum to the wall total by construction (idle is the
//!   per-workstation residual).
//! * the **critical path**: the chain of chunks ending at the bank that
//!   completes the makespan, walked backwards through same-workstation
//!   predecessors and cross-workstation requeue hand-offs.
//! * a **bitwise loss reconciliation**: lost work re-accumulated exactly
//!   as the farm does (per-workstation in event order, then summed in
//!   index order), so the figure matches `FarmReport::lost_work` bit for
//!   bit — not approximately.
//!
//! The farm resolves a chunk's whole fate at dispatch time and emits the
//! fate event immediately after the `dispatch` line (with its future
//! virtual timestamp), so the stream is *causally* ordered per
//! workstation even though it is not globally time-sorted. The state
//! machine leans on exactly that: a `dispatch` opens a chunk on its
//! workstation, and the next farm event on the same workstation is its
//! fate. Late straggler banks (the one fate that arrives out of band) are
//! matched through a per-workstation straggle slot, and lease timeouts
//! are matched to chunks by mirroring the farm's dense lease-id counter.
//!
//! Torn traces (a journal from a killed run, with no `run_end`) are
//! analyzed rather than rejected: the makespan falls back to the latest
//! event timestamp and a warning is recorded, so `obs path` still works
//! on the wreckage — which is exactly when it is needed.

use crate::schema::validate_line;

/// How a dispatched chunk's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFate {
    /// Banked normally at its completion time.
    Banked,
    /// Straggled past its lease but the late arrival still banked.
    LateBanked,
    /// Killed by a period reclaim; all its computed work was lost.
    Reclaimed,
    /// Killed by a workstation crash mid-compute; its work was lost.
    Crashed,
    /// The dispatch message never arrived; no work was computed or lost,
    /// but the tasks were stranded until the lease timed out.
    MessageLost,
    /// Unresolved when the trace ends (torn journal or still running).
    InFlight,
}

impl ChunkFate {
    /// Short lower-case label for tables (`banked`, `reclaimed`, …).
    pub fn label(&self) -> &'static str {
        match self {
            ChunkFate::Banked => "banked",
            ChunkFate::LateBanked => "late-bank",
            ChunkFate::Reclaimed => "reclaimed",
            ChunkFate::Crashed => "crashed",
            ChunkFate::MessageLost => "msg-lost",
            ChunkFate::InFlight => "in-flight",
        }
    }
}

/// One chunk's reconstructed waterfall record.
#[derive(Debug, Clone)]
pub struct ChunkRecord {
    /// Dispatch-order sequence number (stable chunk id for reports).
    pub id: usize,
    /// Workstation it was dispatched to.
    pub ws: u64,
    /// Tasks in the chunk.
    pub tasks: u64,
    /// Task time dispatched (the chunk's total duration).
    pub work: f64,
    /// Virtual time of the dispatch.
    pub dispatched_at: f64,
    /// Virtual time the chunk stopped occupying its workstation (bank,
    /// reclaim, crash, transit-loss resolution, or end of trace).
    pub resolved_at: f64,
    /// Gap on the workstation before this dispatch (time since the
    /// previous chunk on the same workstation resolved; time since the
    /// run start for the first chunk).
    pub queue_wait: f64,
    /// `resolved_at - dispatched_at`.
    pub service: f64,
    /// The fate.
    pub fate: ChunkFate,
    /// Task time this chunk banked first (0 unless it banked).
    pub banked: f64,
    /// Task time it computed that another copy had already banked.
    pub duplicate: f64,
    /// Task time computed and destroyed (reclaims and crashes).
    pub wasted: f64,
    /// Lease timeouts charged to this chunk (0 or 1).
    pub retries: u32,
    /// True when this chunk was an end-game replica dispatch.
    pub replica: bool,
    /// True for a replica whose bank landed first (banked > 0).
    pub winning_replica: bool,
    /// True when this chunk's lease timed out (even if it later banked).
    pub timed_out: bool,
}

/// Wall-time attribution across the whole run. Every field except
/// [`PhaseAttribution::end_game_tail`] is a slice of the total
/// workstation-time `wall = workstations × makespan`; the slices sum to
/// `wall` by construction.
#[derive(Debug, Clone, Default)]
pub struct PhaseAttribution {
    /// Workstations in the run.
    pub workstations: u64,
    /// Run makespan (virtual time of `run_end`, or the latest event
    /// timestamp for a torn trace).
    pub makespan: f64,
    /// `workstations × makespan`.
    pub wall: f64,
    /// Workstation-time spent computing work that banked first.
    pub useful: f64,
    /// Workstation-time spent computing work another copy banked first.
    pub duplicate: f64,
    /// Workstation-time destroyed by period reclaims.
    pub lost_reclaim: f64,
    /// Workstation-time destroyed by crashes mid-compute.
    pub lost_crash: f64,
    /// Workstation-time stranded behind lost dispatch messages.
    pub lost_in_transit: f64,
    /// Workstation-time inside chunks still unresolved at trace end.
    pub in_flight: f64,
    /// Workstation-time after a crash (the dead remainder of the run).
    pub crashed_idle: f64,
    /// Residual per-workstation idle time (master gaps, startup, tail).
    pub idle: f64,
    /// `makespan - first replica dispatch time`: how long the end-game
    /// replication phase ran. `None` when no replicas were dispatched.
    /// Informational — replica compute time is already inside the
    /// useful/duplicate slices, so this is not a summing row.
    pub end_game_tail: Option<f64>,
}

impl PhaseAttribution {
    /// The summing phase rows in display order: `(label, workstation-time)`.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("useful compute", self.useful),
            ("duplicate compute", self.duplicate),
            ("lost to reclaims", self.lost_reclaim),
            ("lost to crashes", self.lost_crash),
            ("lost in transit", self.lost_in_transit),
            ("in flight at end", self.in_flight),
            ("crashed (dead)", self.crashed_idle),
            ("idle", self.idle),
        ]
    }

    /// Sum of the phase rows (equals [`PhaseAttribution::wall`] up to
    /// floating-point accumulation order).
    pub fn sum(&self) -> f64 {
        self.rows().iter().map(|(_, v)| v).sum()
    }
}

/// Everything [`analyze_lineage_lines`] reconstructs from one farm trace.
#[derive(Debug, Clone, Default)]
pub struct LineageAnalysis {
    /// Workstations in the run.
    pub workstations: u64,
    /// Tasks in the run.
    pub tasks: u64,
    /// The run's seed.
    pub seed: u64,
    /// Every chunk in dispatch order.
    pub chunks: Vec<ChunkRecord>,
    /// True when the trace carried a `run_end` for the farm run.
    pub run_complete: bool,
    /// Total banked work: from `run_end`, or the bank sum for torn traces.
    pub banked: f64,
    /// Lost work re-accumulated the way the farm accumulates it
    /// (per-workstation in event order, summed in index order) — bitwise
    /// equal to `FarmReport::lost_work` for a complete trace.
    pub lost_work: f64,
    /// `run_end.lost` when present (for reconciliation against
    /// [`LineageAnalysis::lost_work`]).
    pub run_end_lost: Option<f64>,
    /// The phase attribution (see [`PhaseAttribution`]).
    pub phases: PhaseAttribution,
    /// Chunk indices (into [`LineageAnalysis::chunks`]) of the makespan
    /// critical path, earliest first.
    pub critical_path: Vec<usize>,
    /// `episode_start` events seen (episodes begun across workstations).
    pub episodes: u64,
    /// Replica dispatches.
    pub replicas: u64,
    /// Requeue events (tasks returned to the bag after lease timeouts).
    pub requeues: u64,
    /// Crashes that struck between chunks (no work was in flight).
    pub dispatch_crashes: u64,
    /// Non-fatal oddities found while reconstructing (torn trace, events
    /// that do not fit the lifecycle).
    pub warnings: Vec<String>,
}

impl LineageAnalysis {
    /// True when `run_end.lost` was present and matches the
    /// re-accumulated [`LineageAnalysis::lost_work`] bit for bit.
    pub fn loss_reconciles(&self) -> bool {
        self.run_end_lost
            .is_some_and(|l| l.to_bits() == self.lost_work.to_bits())
    }
}

/// Per-workstation state while replaying the stream.
#[derive(Debug, Default)]
struct WsState {
    /// Chunk whose dispatch was seen but whose fate event has not.
    pending_fate: Option<usize>,
    /// Straggled chunk awaiting its late arrival bank.
    straggling: Option<usize>,
    /// Message-lost chunk whose occupation window is still open.
    lost_in_transit: Option<usize>,
    /// A `replica` event announced the next dispatch.
    pending_replica: bool,
    /// Chunks dispatched to this workstation, in order.
    order: Vec<usize>,
    /// Virtual time the workstation crashed (dead thereafter).
    crashed_at: Option<f64>,
    /// Lost work accumulated in event order (the farm's per-ws order).
    lost_work: f64,
}

/// Reconstructs chunk lineage, phase attribution and the critical path
/// from a farm trace (see the module docs). The first malformed line
/// aborts with `Err` naming the line number, as does a trace with no farm
/// run; structural oddities inside the run are reported as warnings.
/// Only the first farm run in the trace is analyzed.
pub fn analyze_lineage_lines<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<LineageAnalysis, String> {
    let mut a = LineageAnalysis::default();
    let mut ws_states: Vec<WsState> = Vec::new();
    // Mirrors the farm's dense lease-id counter: leases are created, in
    // stream order, by exactly the three fates that can strand tasks
    // (message loss, mid-compute crash, straggle), so `lease_chunks[id]`
    // is the chunk that owns lease `id`.
    let mut lease_chunks: Vec<usize> = Vec::new();
    // Requeue hand-offs for the critical-path walk: (time, source chunk).
    let mut requeues: Vec<(f64, usize)> = Vec::new();
    // Chunk whose lease timed out most recently (the farm emits the
    // matching requeue immediately after each lease_timeout).
    let mut last_timeout_chunk: Option<usize> = None;
    let mut in_run = false;
    let mut run_seen = false;
    let mut run_end_time: Option<f64> = None;
    let mut max_time = 0.0f64;
    let mut bank_sum = 0.0f64;
    let mut first_replica_at: Option<f64> = None;
    let warn = |a: &mut LineageAnalysis, msg: String| {
        if a.warnings.len() < 25 {
            a.warnings.push(msg);
        }
    };

    for (i, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !in_run {
            if run_seen {
                continue; // only the first farm run is analyzed
            }
            if ev.kind == "run_start" && ev.u64("workstations").unwrap_or(0) > 0 {
                a.workstations = ev.u64("workstations")?;
                a.tasks = ev.u64("tasks")?;
                a.seed = ev.u64("seed")?;
                ws_states = (0..a.workstations).map(|_| WsState::default()).collect();
                in_run = true;
                run_seen = true;
            }
            continue;
        }
        max_time = max_time.max(ev.time);
        match ev.kind.as_str() {
            "run_end" => {
                a.run_complete = true;
                a.banked = ev.f64("banked")?;
                a.run_end_lost = Some(ev.f64("lost")?);
                run_end_time = Some(ev.time);
                in_run = false;
            }
            "dispatch" => {
                let ws = ev.u64("ws")?;
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(
                        &mut a,
                        format!("line {}: dispatch.ws {ws} out of range", i + 1),
                    );
                    continue;
                };
                if let Some(open) = st.pending_fate.take() {
                    warn(
                        &mut a,
                        format!(
                            "line {}: dispatch on ws {ws} while chunk #{open} awaits its fate",
                            i + 1
                        ),
                    );
                    a.chunks[open].fate = ChunkFate::InFlight;
                }
                // A lost dispatch stops occupying the workstation no later
                // than the next dispatch to it.
                if let Some(ml) = st.lost_in_transit.take() {
                    let c = &mut a.chunks[ml];
                    c.resolved_at = c.resolved_at.min(ev.time);
                }
                let id = a.chunks.len();
                let prev_end = st.order.last().map(|&p| a.chunks[p].resolved_at);
                a.chunks.push(ChunkRecord {
                    id,
                    ws,
                    tasks: ev.u64("tasks")?,
                    work: ev.f64("work")?,
                    dispatched_at: ev.time,
                    resolved_at: ev.time,
                    queue_wait: (ev.time - prev_end.unwrap_or(0.0)).max(0.0),
                    service: 0.0,
                    fate: ChunkFate::InFlight,
                    banked: 0.0,
                    duplicate: 0.0,
                    wasted: 0.0,
                    retries: 0,
                    replica: st.pending_replica,
                    winning_replica: false,
                    timed_out: false,
                });
                st.pending_replica = false;
                st.order.push(id);
                st.pending_fate = Some(id);
            }
            "bank" => {
                let ws = ev.u64("ws")?;
                let work = ev.f64("work")?;
                let dup = ev.f64("duplicate")?;
                bank_sum += work;
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(&mut a, format!("line {}: bank.ws {ws} out of range", i + 1));
                    continue;
                };
                let idx = match (st.pending_fate.take(), st.straggling.take()) {
                    (Some(idx), straggle) => {
                        st.straggling = straggle;
                        Some((idx, ChunkFate::Banked))
                    }
                    (None, Some(idx)) => Some((idx, ChunkFate::LateBanked)),
                    (None, None) => {
                        warn(
                            &mut a,
                            format!("line {}: bank on ws {ws} with no open chunk", i + 1),
                        );
                        None
                    }
                };
                if let Some((idx, fate)) = idx {
                    let c = &mut a.chunks[idx];
                    c.fate = fate;
                    c.resolved_at = ev.time;
                    c.banked = work;
                    c.duplicate = dup;
                    c.winning_replica = c.replica && work > 0.0;
                }
            }
            "period_interrupt" => {
                let ws = ev.u64("ws")?;
                let lost = ev.f64("lost")?;
                max_time = max_time.max(ev.time);
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(
                        &mut a,
                        format!("line {}: period_interrupt.ws {ws} out of range", i + 1),
                    );
                    continue;
                };
                st.lost_work += lost;
                match st.pending_fate.take() {
                    Some(idx) => {
                        let c = &mut a.chunks[idx];
                        c.fate = ChunkFate::Reclaimed;
                        c.resolved_at = ev.time;
                        c.wasted = lost;
                    }
                    None => warn(
                        &mut a,
                        format!(
                            "line {}: period_interrupt on ws {ws} with no open chunk",
                            i + 1
                        ),
                    ),
                }
            }
            "crash" => {
                let ws = ev.u64("ws")?;
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(
                        &mut a,
                        format!("line {}: crash.ws {ws} out of range", i + 1),
                    );
                    continue;
                };
                st.crashed_at = Some(ev.time);
                match st.pending_fate.take() {
                    Some(idx) => {
                        // Mid-compute crash: the chunk's whole duration is
                        // lost and the farm leases its tasks for requeue.
                        let work = a.chunks[idx].work;
                        st.lost_work += work;
                        lease_chunks.push(idx);
                        let c = &mut a.chunks[idx];
                        c.fate = ChunkFate::Crashed;
                        c.resolved_at = ev.time;
                        c.wasted = work;
                    }
                    None => a.dispatch_crashes += 1,
                }
            }
            "message_lost" => {
                let ws = ev.u64("ws")?;
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(
                        &mut a,
                        format!("line {}: message_lost.ws {ws} out of range", i + 1),
                    );
                    continue;
                };
                match st.pending_fate.take() {
                    Some(idx) => {
                        lease_chunks.push(idx);
                        st.lost_in_transit = Some(idx);
                        let c = &mut a.chunks[idx];
                        c.fate = ChunkFate::MessageLost;
                        // Window stays open: closed by the lease timeout
                        // or the next dispatch, whichever lands first.
                        c.resolved_at = f64::INFINITY;
                    }
                    None => warn(
                        &mut a,
                        format!("line {}: message_lost on ws {ws} with no open chunk", i + 1),
                    ),
                }
            }
            "straggle" => {
                let ws = ev.u64("ws")?;
                let Some(st) = ws_states.get_mut(ws as usize) else {
                    warn(
                        &mut a,
                        format!("line {}: straggle.ws {ws} out of range", i + 1),
                    );
                    continue;
                };
                match st.pending_fate.take() {
                    Some(idx) => {
                        lease_chunks.push(idx);
                        if let Some(prev) = st.straggling.replace(idx) {
                            warn(
                                &mut a,
                                format!(
                                    "line {}: ws {ws} straggles again while chunk #{prev} \
                                     is still in flight",
                                    i + 1
                                ),
                            );
                        }
                    }
                    None => warn(
                        &mut a,
                        format!("line {}: straggle on ws {ws} with no open chunk", i + 1),
                    ),
                }
            }
            "lease_timeout" => {
                let lease = ev.u64("lease")?;
                match lease_chunks.get(lease as usize) {
                    Some(&idx) => {
                        last_timeout_chunk = Some(idx);
                        let c = &mut a.chunks[idx];
                        c.retries += 1;
                        c.timed_out = true;
                        if c.fate == ChunkFate::MessageLost {
                            c.resolved_at = c.resolved_at.min(ev.time);
                            let st = &mut ws_states[c.ws as usize];
                            if st.lost_in_transit == Some(idx) {
                                st.lost_in_transit = None;
                            }
                        }
                    }
                    None => warn(
                        &mut a,
                        format!("line {}: lease_timeout for unknown lease {lease}", i + 1),
                    ),
                }
            }
            "requeue" => {
                a.requeues += 1;
                // The requeue follows its lease_timeout immediately; charge
                // the hand-off to the chunk whose lease just timed out.
                if let Some(idx) = last_timeout_chunk.take() {
                    requeues.push((ev.time, idx));
                }
            }
            "replica" => {
                let ws = ev.u64("ws")?;
                a.replicas += 1;
                first_replica_at = Some(first_replica_at.map_or(ev.time, |t: f64| t.min(ev.time)));
                if let Some(st) = ws_states.get_mut(ws as usize) {
                    st.pending_replica = true;
                }
            }
            "episode_start" => a.episodes += 1,
            _ => {}
        }
    }

    if !run_seen {
        return Err("trace contains no farm run (run_start with workstations > 0)".into());
    }
    for c in &a.chunks {
        if c.resolved_at.is_finite() {
            max_time = max_time.max(c.resolved_at);
        }
    }
    let makespan = run_end_time.unwrap_or(max_time);
    if !a.run_complete {
        warn(
            &mut a,
            format!("trace ends without run_end; treating t={makespan} as the makespan"),
        );
        a.banked = bank_sum;
    }

    // Close unresolved windows at the makespan.
    for st in &mut ws_states {
        for slot in [
            st.pending_fate.take(),
            st.straggling.take(),
            st.lost_in_transit.take(),
        ]
        .into_iter()
        .flatten()
        {
            let c = &mut a.chunks[slot];
            if c.fate != ChunkFate::MessageLost {
                c.fate = ChunkFate::InFlight;
            }
            // Still occupying the workstation when the trace ends.
            c.resolved_at = makespan.max(c.dispatched_at);
        }
    }
    for c in &mut a.chunks {
        if !c.resolved_at.is_finite() {
            c.resolved_at = makespan;
        }
        c.service = (c.resolved_at - c.dispatched_at).max(0.0);
    }

    // The farm sums per-workstation loss in index order; replicate that
    // exact accumulation so the figure is bitwise, not approximate.
    a.lost_work = ws_states.iter().fold(0.0f64, |acc, st| acc + st.lost_work);

    a.phases = attribute_phases(&a.chunks, &ws_states, a.workstations, makespan);
    a.phases.end_game_tail = first_replica_at.map(|t| (makespan - t).max(0.0));
    a.critical_path = critical_path(&a.chunks, &ws_states, &requeues);
    Ok(a)
}

/// Splits `workstations × makespan` into the phase slices (module docs).
fn attribute_phases(
    chunks: &[ChunkRecord],
    ws_states: &[WsState],
    workstations: u64,
    makespan: f64,
) -> PhaseAttribution {
    let mut p = PhaseAttribution {
        workstations,
        makespan,
        wall: workstations as f64 * makespan,
        ..PhaseAttribution::default()
    };
    for st in ws_states {
        let mut busy = 0.0f64;
        for &idx in &st.order {
            let c = &chunks[idx];
            let window = (c.resolved_at.min(makespan) - c.dispatched_at).max(0.0);
            busy += window;
            match c.fate {
                ChunkFate::Banked | ChunkFate::LateBanked => {
                    // Split the service window between first-banked and
                    // duplicate work in proportion to the bank amounts.
                    let total = c.banked + c.duplicate;
                    let dup_frac = if total > 0.0 {
                        c.duplicate / total
                    } else {
                        0.0
                    };
                    p.useful += window * (1.0 - dup_frac);
                    p.duplicate += window * dup_frac;
                }
                ChunkFate::Reclaimed => p.lost_reclaim += window,
                ChunkFate::Crashed => p.lost_crash += window,
                ChunkFate::MessageLost => p.lost_in_transit += window,
                ChunkFate::InFlight => p.in_flight += window,
            }
        }
        let dead = st
            .crashed_at
            .map_or(0.0, |t| (makespan - t.min(makespan)).max(0.0));
        p.crashed_idle += dead;
        p.idle += (makespan - busy - dead).max(0.0);
    }
    p
}

/// Walks the makespan critical path backwards from the chunk whose bank
/// completes the run: the parent is the chunk whose requeue hand-off
/// landed in the gap before this chunk's dispatch (a cross-workstation
/// dependency), or failing that the previous chunk on the same
/// workstation. Returns chunk indices earliest-first.
fn critical_path(
    chunks: &[ChunkRecord],
    ws_states: &[WsState],
    requeues: &[(f64, usize)],
) -> Vec<usize> {
    let start = chunks
        .iter()
        .filter(|c| matches!(c.fate, ChunkFate::Banked | ChunkFate::LateBanked) && c.banked > 0.0)
        .max_by(|x, y| {
            x.resolved_at
                .partial_cmp(&y.resolved_at)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.id.cmp(&y.id))
        })
        .map(|c| c.id);
    let Some(start) = start else {
        return Vec::new();
    };
    let mut path = vec![start];
    let mut cur = start;
    while path.len() <= chunks.len() {
        let c = &chunks[cur];
        let st = &ws_states[c.ws as usize];
        let pos = st.order.iter().position(|&i| i == cur).unwrap_or(0);
        let prev = (pos > 0).then(|| st.order[pos - 1]);
        let gap_start = prev.map_or(0.0, |p| chunks[p].resolved_at);
        // A requeue that landed in this chunk's queue-wait gap is the
        // causal hand-off: the tasks it re-dispatched include ours.
        let hop = requeues
            .iter()
            .filter(|(t, src)| *src != cur && *t > gap_start && *t <= c.dispatched_at)
            .max_by(|(tx, _), (ty, _)| tx.partial_cmp(ty).unwrap_or(std::cmp::Ordering::Equal))
            .map(|&(_, src)| src);
        let parent = hop.or(prev);
        match parent {
            // Stream order gives dispatch-order ids; both hop and prev
            // dispatched strictly earlier, so ids strictly decrease and
            // the walk terminates.
            Some(p) if p < cur => {
                path.push(p);
                cur = p;
            }
            _ => break,
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn jsonl(events: &[Event]) -> Vec<String> {
        events.iter().map(Event::to_jsonl).collect()
    }

    fn run_start(ws: u64, tasks: u64) -> Event {
        Event {
            time: 0.0,
            kind: EventKind::RunStart {
                seed: 7,
                workstations: ws,
                tasks,
            },
        }
    }

    fn dispatch(time: f64, ws: u64, tasks: u64, work: f64) -> Event {
        Event {
            time,
            kind: EventKind::Dispatch { ws, tasks, work },
        }
    }

    fn bank(time: f64, ws: u64, work: f64, duplicate: f64) -> Event {
        Event {
            time,
            kind: EventKind::Bank {
                ws,
                work,
                duplicate,
            },
        }
    }

    fn run_end(time: f64, banked: f64, lost: f64) -> Event {
        Event {
            time,
            kind: EventKind::RunEnd {
                banked,
                lost,
                drained: true,
            },
        }
    }

    #[test]
    fn clean_run_attributes_useful_and_idle() {
        // 2 workstations; ws0 banks two chunks back to back, ws1 one.
        let events = vec![
            run_start(2, 10),
            dispatch(0.0, 0, 4, 4.0),
            bank(4.0, 0, 4.0, 0.0),
            dispatch(0.0, 1, 3, 3.0),
            bank(3.0, 1, 3.0, 0.0),
            dispatch(4.0, 0, 2, 2.0),
            bank(6.0, 0, 2.0, 0.0),
            run_end(6.0, 9.0, 0.0),
        ];
        let lines = jsonl(&events);
        let a = analyze_lineage_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.chunks.len(), 3);
        assert!(a.run_complete);
        assert_eq!(a.phases.makespan, 6.0);
        assert_eq!(a.phases.wall, 12.0);
        assert_eq!(a.phases.useful, 9.0);
        assert_eq!(a.phases.idle, 3.0); // ws1 idle 6-3
        assert!((a.phases.sum() - a.phases.wall).abs() < 1e-9);
        assert_eq!(a.lost_work, 0.0);
        assert!(a.loss_reconciles());
        // Critical path: ws0's two chunks chain to the final bank.
        assert_eq!(a.critical_path, vec![0, 2]);
        let c = &a.chunks[2];
        assert_eq!(c.fate, ChunkFate::Banked);
        assert_eq!(c.queue_wait, 0.0);
        assert_eq!(c.service, 2.0);
    }

    #[test]
    fn reclaim_and_crash_losses_reconcile_bitwise() {
        let events = vec![
            run_start(2, 8),
            dispatch(0.0, 0, 4, 4.0),
            Event {
                time: 2.5,
                kind: EventKind::PeriodInterrupt { ws: 0, lost: 2.5 },
            },
            dispatch(0.0, 1, 4, 4.5),
            Event {
                time: 1.5,
                kind: EventKind::Crash { ws: 1 },
            },
            Event {
                time: 3.0,
                kind: EventKind::LeaseTimeout { ws: 1, lease: 0 },
            },
            Event {
                time: 3.0,
                kind: EventKind::Requeue { ws: 1, tasks: 4 },
            },
            dispatch(3.0, 0, 8, 7.0),
            bank(10.0, 0, 7.0, 0.0),
            run_end(10.0, 7.0, 2.5 + 4.5),
        ];
        let lines = jsonl(&events);
        let a = analyze_lineage_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.chunks[0].fate, ChunkFate::Reclaimed);
        assert_eq!(a.chunks[0].wasted, 2.5);
        assert_eq!(a.chunks[1].fate, ChunkFate::Crashed);
        assert_eq!(a.chunks[1].wasted, 4.5);
        assert_eq!(a.chunks[1].retries, 1);
        assert!(
            a.loss_reconciles(),
            "{} vs {:?}",
            a.lost_work,
            a.run_end_lost
        );
        // Phases: reclaim 2.5, crash 1.5 of busy time, dead ws1 8.5.
        assert_eq!(a.phases.lost_reclaim, 2.5);
        assert_eq!(a.phases.lost_crash, 1.5);
        assert_eq!(a.phases.crashed_idle, 8.5);
        assert!((a.phases.sum() - a.phases.wall).abs() < 1e-9);
        // Critical path hops through the requeue: crashed chunk #1 fed
        // chunk #2's dispatch at t=3.
        assert_eq!(a.critical_path, vec![1, 2]);
    }

    #[test]
    fn straggler_late_bank_and_replicas() {
        let events = vec![
            run_start(2, 6),
            dispatch(0.0, 0, 3, 6.0),
            Event {
                time: 0.0,
                kind: EventKind::Straggle { ws: 0 },
            },
            Event {
                time: 3.0,
                kind: EventKind::LeaseTimeout { ws: 0, lease: 0 },
            },
            Event {
                time: 3.0,
                kind: EventKind::Requeue { ws: 0, tasks: 3 },
            },
            // Requeued tasks replicate on ws1.
            Event {
                time: 3.0,
                kind: EventKind::Replica { ws: 1, tasks: 3 },
            },
            dispatch(3.0, 1, 3, 5.0),
            // The straggler's late arrival banks first...
            bank(6.0, 0, 6.0, 0.0),
            // ...so the replica's bank is all duplicate.
            bank(8.0, 1, 0.0, 5.0),
            dispatch(6.0, 0, 3, 1.0),
            bank(7.0, 0, 1.0, 0.0),
            run_end(8.0, 7.0, 0.0),
        ];
        let lines = jsonl(&events);
        let a = analyze_lineage_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.chunks[0].fate, ChunkFate::LateBanked);
        assert!(a.chunks[0].timed_out);
        assert_eq!(a.chunks[0].banked, 6.0);
        assert!(a.chunks[1].replica);
        assert!(!a.chunks[1].winning_replica);
        assert_eq!(a.chunks[1].duplicate, 5.0);
        assert_eq!(a.replicas, 1);
        assert_eq!(a.phases.duplicate, 5.0);
        assert_eq!(a.phases.end_game_tail, Some(5.0));
        assert!((a.phases.sum() - a.phases.wall).abs() < 1e-9);
        assert!(a.loss_reconciles());
    }

    #[test]
    fn message_lost_window_caps_at_timeout_or_redispatch() {
        let events = vec![
            run_start(1, 4),
            dispatch(0.0, 0, 4, 4.0),
            Event {
                time: 0.0,
                kind: EventKind::MessageLost { ws: 0 },
            },
            Event {
                time: 2.0,
                kind: EventKind::LeaseTimeout { ws: 0, lease: 0 },
            },
            Event {
                time: 2.0,
                kind: EventKind::Requeue { ws: 0, tasks: 4 },
            },
            dispatch(4.0, 0, 4, 4.0),
            bank(8.0, 0, 4.0, 0.0),
            run_end(8.0, 4.0, 0.0),
        ];
        let lines = jsonl(&events);
        let a = analyze_lineage_lines(lines.iter().map(String::as_str)).unwrap();
        let ml = &a.chunks[0];
        assert_eq!(ml.fate, ChunkFate::MessageLost);
        assert_eq!(ml.resolved_at, 2.0); // the timeout, not the redispatch
        assert_eq!(ml.wasted, 0.0);
        assert_eq!(a.phases.lost_in_transit, 2.0);
        assert_eq!(a.phases.useful, 4.0);
        assert_eq!(a.phases.idle, 2.0);
        assert!((a.phases.sum() - a.phases.wall).abs() < 1e-9);
        // The requeue hop makes the lost chunk the banked chunk's parent.
        assert_eq!(a.critical_path, vec![0, 1]);
        assert_eq!(a.chunks[1].queue_wait, 2.0);
    }

    #[test]
    fn torn_trace_warns_and_uses_latest_time() {
        let events = vec![
            run_start(1, 4),
            dispatch(0.0, 0, 2, 2.0),
            bank(2.0, 0, 2.0, 0.0),
            dispatch(2.0, 0, 2, 2.0),
            // killed here: no fate, no run_end
        ];
        let lines = jsonl(&events);
        let a = analyze_lineage_lines(lines.iter().map(String::as_str)).unwrap();
        assert!(!a.run_complete);
        assert!(a.warnings.iter().any(|w| w.contains("run_end")));
        assert_eq!(a.chunks[1].fate, ChunkFate::InFlight);
        assert_eq!(a.banked, 2.0);
        assert_eq!(a.phases.makespan, 2.0);
        assert!((a.phases.sum() - a.phases.wall).abs() < 1e-9);
    }

    #[test]
    fn non_farm_trace_is_rejected() {
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":0,"tasks":0}"#,
            r#"{"v":2,"t":1,"type":"run_end","banked":1,"lost":0,"drained":false}"#,
        ];
        let err = analyze_lineage_lines(lines).unwrap_err();
        assert!(err.contains("no farm run"), "{err}");
    }

    #[test]
    fn malformed_line_names_its_number() {
        let lines = [
            r#"{"v":2,"t":0,"type":"run_start","seed":1,"workstations":1,"tasks":1}"#,
            "{broken",
        ];
        let err = analyze_lineage_lines(lines).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
