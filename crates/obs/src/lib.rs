//! # cs-obs
//!
//! Zero-dependency observability substrate for the cycle-stealing
//! workspace: the machine-readable window into simulator, farm and CLI
//! runs that hand-formatted stdout tables cannot give.
//!
//! * [`event`] — a **stable, versioned event schema** ([`SCHEMA_VERSION`])
//!   covering episode lifecycle (period start/commit/interrupt), farm
//!   master actions (dispatch, bank, lease timeout, requeue, backoff,
//!   quarantine, storm, crash, message loss, straggle, replica) and
//!   Monte-Carlo progress, with hand-rolled JSONL serialization.
//! * [`sink`] — the [`EventSink`] trait plus sinks: [`NoopSink`] (default,
//!   free), [`MemorySink`] (tests), [`JsonlSink`] (buffered file),
//!   [`TeeSink`] (fan-out) and [`MetricsSink`] (folds the stream into a
//!   registry).
//! * [`metrics`] — [`MetricsRegistry`] of counters, gauges and streaming
//!   power-of-two-bucket [`Histogram`]s.
//! * [`json`] / [`schema`] — a minimal flat-object JSON parser and the
//!   consumer-side line validator ([`validate_line`]) used by CI smoke
//!   checks.
//! * [`summary`] — the shared `RUN-SUMMARY` JSON emitter for `exp_*`
//!   binaries.
//!
//! **Pass-through contract:** sinks never feed back into producers. A
//! seeded simulation run with tracing enabled is bit-identical in results
//! to the same run with tracing disabled, and the no-op sink's cost is
//! inside benchmark noise (`bench_now` guards ≤ 2%).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod summary;

pub use event::{Event, EventKind, ALL_KINDS, SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsRegistry};
pub use schema::{validate_line, ValidatedEvent};
pub use sink::{EventSink, JsonlSink, MemorySink, MetricsSink, NoopSink, TeeSink};
pub use summary::RunSummary;
