//! # cs-obs
//!
//! Zero-dependency observability substrate for the cycle-stealing
//! workspace: the machine-readable window into simulator, farm and CLI
//! runs that hand-formatted stdout tables cannot give.
//!
//! * [`event`] — a **stable, versioned event schema** ([`SCHEMA_VERSION`])
//!   covering episode lifecycle (period start/commit/interrupt), farm
//!   master actions (dispatch, bank, lease timeout, requeue, backoff,
//!   quarantine, storm, crash, message loss, straggle, replica) and
//!   Monte-Carlo progress, with hand-rolled JSONL serialization.
//! * [`sink`] — the [`EventSink`] trait plus sinks: [`NoopSink`] (default,
//!   free), [`MemorySink`] (tests), [`JsonlSink`] (buffered file),
//!   [`TeeSink`] (fan-out) and [`MetricsSink`] (folds the stream into a
//!   registry).
//! * [`metrics`] — [`MetricsRegistry`] of counters, gauges and streaming
//!   power-of-two-bucket [`Histogram`]s.
//! * [`json`] / [`schema`] — a minimal JSON parser (strict flat objects
//!   for event lines, nested values for `BENCH.json`) and the
//!   consumer-side line validator ([`validate_line`]) used by CI smoke
//!   checks.
//! * [`journal`] — a **durable write-ahead journal** over the same event
//!   schema: [`JournalWriter`] (fsync-on-commit [`EventSink`]) and
//!   [`read_journal`] (torn-tail-tolerant reader), the substrate for
//!   `cs-now`'s crash-recovery (`Farm::run_journaled` / `Farm::resume`).
//! * [`span`] — the **span profiler** ([`SpanProfiler`]): hierarchical
//!   wall-clock spans recorded as `span_ns.*` histograms and emitted as
//!   v2 `span_start`/`span_end` events.
//! * [`analyze`] — the **trace analyzer** behind `cyclesteal obs`:
//!   [`analyze_lines`] (report), [`check_lines`] (invariant gate,
//!   including chunk conservation for farm traces) and
//!   [`diff_registries`]/[`diff_bench`] (regression flagging).
//! * [`lineage`] — **causal chunk lineage**: [`analyze_lineage_lines`]
//!   replays a farm trace into per-chunk waterfall records, a wall-time
//!   phase attribution that sums to `workstations × makespan`, a bitwise
//!   lost-work reconciliation and the makespan critical path (behind
//!   `cyclesteal obs path` / `obs chunks`).
//! * [`flight`] — **live telemetry**: [`FlightRecorder`] (bounded
//!   drop-oldest ring with dump-on-demand/panic) and [`ProgressSink`]
//!   (wall-clock-cadenced `RUN-PROGRESS` heartbeat lines).
//! * [`summary`] — the shared `RUN-SUMMARY` JSON emitter for `exp_*`
//!   binaries.
//! * [`vfs`] — the **injectable filesystem** under the durability layer:
//!   [`Vfs`]/[`VfsFile`] traits, the production [`StdVfs`], and the
//!   seeded fault injector [`FaultyVfs`] (failed/short writes, fsync
//!   errors, rename failures, ENOSPC at chosen operation indices).
//!
//! **Pass-through contract:** sinks never feed back into producers, and
//! the span profiler only reads the wall clock. A seeded simulation run
//! with tracing and/or profiling enabled is bit-identical in results to
//! the same run with both disabled, and the no-op sink's cost is inside
//! benchmark noise (`bench_now` guards ≤ 2%).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod event;
pub mod flight;
pub mod journal;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod span;
pub mod summary;
pub mod vfs;

pub use analyze::{
    analyze_lines, check_lines, check_text, diff_bench, diff_registries, CheckSummary, DiffRow,
    TraceAnalysis,
};
pub use event::{Event, EventKind, ALL_KINDS, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
pub use flight::{FlightRecorder, ProgressSink};
pub use journal::{
    read_journal, read_journal_with, FsyncPolicy, JournalContents, JournalReadError, JournalStats,
    JournalWriter,
};
pub use json::{parse_json, Json};
pub use lineage::{
    analyze_lineage_lines, ChunkFate, ChunkRecord, LineageAnalysis, PhaseAttribution,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use schema::{validate_line, ValidatedEvent};
pub use sink::{EventSink, JsonlSink, MemorySink, MetricsSink, NoopSink, TeeSink};
pub use span::{SpanGuard, SpanId, SpanProfiler};
pub use summary::RunSummary;
pub use vfs::{
    injected_kind, FaultAt, FaultKind, FaultyVfs, StdVfs, Vfs, VfsFile, ALL_FAULT_KINDS,
};
