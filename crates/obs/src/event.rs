//! The versioned event schema.
//!
//! One [`Event`] is one fact about a run, stamped with the virtual time at
//! which it happened (Monte-Carlo progress events use the trial count as
//! their clock). The set of event types is closed and versioned: a JSONL
//! consumer checks `"v"` against [`SCHEMA_VERSION`] and `"type"` against
//! [`ALL_KINDS`], and any extension bumps the version.
//!
//! Serialization is hand-rolled JSON — one flat object per line — so the
//! crate stays dependency-free. Non-finite floats serialize as `null`
//! (JSON has no NaN) and parse back as NaN.

/// Version stamped into every emitted line as `"v"`. Bump on any change to
/// an existing event's fields; adding a new event type is also a bump.
///
/// History: v1 = the original 18 kinds (PR 2); v2 adds the span profiler
/// kinds `span_start`/`span_end`. Consumers ([`crate::validate_line`])
/// accept every version from [`MIN_SCHEMA_VERSION`] up, rejecting only
/// kinds newer than the line's declared version.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest schema version consumers still accept. v1 traces (no span
/// events) validate unchanged.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Every event type name the schema admits, in declaration order. JSONL
/// validation checks membership against this list.
pub const ALL_KINDS: &[&str] = &[
    "run_start",
    "episode_start",
    "period_start",
    "period_commit",
    "period_interrupt",
    "dispatch",
    "bank",
    "lease_timeout",
    "requeue",
    "backoff",
    "quarantine",
    "storm_kill",
    "crash",
    "message_lost",
    "straggle",
    "replica",
    "mc_progress",
    "run_end",
    "span_start",
    "span_end",
];

/// One observable fact about a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time of the fact (trials completed, for Monte-Carlo
    /// progress).
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The closed set of event types.
///
/// Three groups: *episode lifecycle* (`EpisodeStart`, `PeriodStart`,
/// `PeriodCommit`, `PeriodInterrupt`), *farm master actions* (`Dispatch`,
/// `Bank`, `LeaseTimeout`, `Requeue`, `Backoff`, `Quarantine`, `StormKill`,
/// `Crash`, `MessageLost`, `Straggle`, `Replica`) and *run bookkeeping*
/// (`RunStart`, `McProgress`, `RunEnd`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A run began.
    RunStart {
        /// Master RNG seed.
        seed: u64,
        /// Number of workstations (0 for single-episode runs).
        workstations: u64,
        /// Number of tasks in the bag (0 when fluid).
        tasks: u64,
    },
    /// A workstation's owner left and an episode began.
    EpisodeStart {
        /// Workstation index.
        ws: u64,
    },
    /// An episode period of length `len` started.
    PeriodStart {
        /// Workstation index.
        ws: u64,
        /// Period length (including the overhead `c`).
        len: f64,
    },
    /// A period completed and banked `work`.
    PeriodCommit {
        /// Workstation index.
        ws: u64,
        /// Work banked by the period.
        work: f64,
    },
    /// The owner reclaimed mid-period, destroying `lost` work.
    PeriodInterrupt {
        /// Workstation index.
        ws: u64,
        /// Work destroyed with the period.
        lost: f64,
    },
    /// The master checked a chunk out of the bag and shipped it.
    Dispatch {
        /// Workstation index.
        ws: u64,
        /// Tasks in the chunk.
        tasks: u64,
        /// Total task time in the chunk.
        work: f64,
    },
    /// A chunk's results reached the master and banked.
    Bank {
        /// Workstation index.
        ws: u64,
        /// Newly banked task time (first bank wins).
        work: f64,
        /// Task time discarded because another copy banked first.
        duplicate: f64,
    },
    /// A dispatched chunk's lease expired before its results arrived.
    LeaseTimeout {
        /// Workstation index holding the lease.
        ws: u64,
        /// Lease id.
        lease: u64,
    },
    /// Unbanked tasks of a timed-out lease returned to the bag.
    Requeue {
        /// Workstation index whose lease was abandoned.
        ws: u64,
        /// Tasks returned to the bag.
        tasks: u64,
    },
    /// The master delayed a dispatch by exponential backoff.
    Backoff {
        /// Workstation index.
        ws: u64,
        /// Length of the delay.
        delay: f64,
    },
    /// The master quarantined a repeat offender.
    Quarantine {
        /// Workstation index.
        ws: u64,
        /// Virtual time probation ends.
        until: f64,
    },
    /// A correlated reclaim storm cut an episode short.
    StormKill {
        /// Workstation index.
        ws: u64,
    },
    /// A workstation crashed permanently.
    Crash {
        /// Workstation index.
        ws: u64,
    },
    /// A dispatch or its result was lost in transit.
    MessageLost {
        /// Workstation index.
        ws: u64,
    },
    /// A chunk's completion overran its lease (result will arrive late).
    Straggle {
        /// Workstation index.
        ws: u64,
    },
    /// An end-game replica of an outstanding chunk was dispatched.
    Replica {
        /// Workstation index executing the replica.
        ws: u64,
        /// Tasks in the replica chunk.
        tasks: u64,
    },
    /// Monte-Carlo progress tick.
    McProgress {
        /// Trials completed so far.
        done: u64,
        /// Trials requested.
        total: u64,
    },
    /// A run ended.
    RunEnd {
        /// Total task time banked.
        banked: f64,
        /// Total task time destroyed.
        lost: f64,
        /// True when every task banked before the horizon.
        drained: bool,
    },
    /// A profiler span opened (v2). Span times are wall-clock seconds
    /// since the profiler's epoch, not virtual time.
    SpanStart {
        /// Span id, unique within the emitting profiler (never 0).
        id: u64,
        /// Enclosing span's id, or 0 for a root span.
        parent: u64,
        /// Span name (static identifier, e.g. `farm.dispatch`).
        name: &'static str,
    },
    /// A profiler span closed (v2).
    SpanEnd {
        /// Span id matching the corresponding [`EventKind::SpanStart`].
        id: u64,
        /// Enclosing span's id, or 0 for a root span.
        parent: u64,
        /// Span name (same as the start event's).
        name: &'static str,
        /// Inclusive wall-clock duration in nanoseconds.
        dur_ns: f64,
    },
}

impl EventKind {
    /// The event's `"type"` string (member of [`ALL_KINDS`]).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run_start",
            EventKind::EpisodeStart { .. } => "episode_start",
            EventKind::PeriodStart { .. } => "period_start",
            EventKind::PeriodCommit { .. } => "period_commit",
            EventKind::PeriodInterrupt { .. } => "period_interrupt",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Bank { .. } => "bank",
            EventKind::LeaseTimeout { .. } => "lease_timeout",
            EventKind::Requeue { .. } => "requeue",
            EventKind::Backoff { .. } => "backoff",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::StormKill { .. } => "storm_kill",
            EventKind::Crash { .. } => "crash",
            EventKind::MessageLost { .. } => "message_lost",
            EventKind::Straggle { .. } => "straggle",
            EventKind::Replica { .. } => "replica",
            EventKind::McProgress { .. } => "mc_progress",
            EventKind::RunEnd { .. } => "run_end",
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }
}

/// Appends a float as JSON: shortest round-trip decimal, `null` when not
/// finite (JSON has no NaN/Infinity).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        write!(out, "{v}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

impl Event {
    /// Serializes to one JSONL line (no trailing newline):
    /// `{"v":1,"t":12.5,"type":"bank","ws":0,"work":18,"duplicate":0}`.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(96);
        write!(s, "{{\"v\":{SCHEMA_VERSION},\"t\":").expect("write to String");
        push_json_f64(&mut s, self.time);
        write!(s, ",\"type\":\"{}\"", self.kind.name()).expect("write to String");
        let num = |s: &mut String, key: &str, v: f64| {
            write!(s, ",\"{key}\":").expect("write to String");
            push_json_f64(s, v);
        };
        let int = |s: &mut String, key: &str, v: u64| {
            write!(s, ",\"{key}\":{v}").expect("write to String");
        };
        match self.kind {
            EventKind::RunStart {
                seed,
                workstations,
                tasks,
            } => {
                int(&mut s, "seed", seed);
                int(&mut s, "workstations", workstations);
                int(&mut s, "tasks", tasks);
            }
            EventKind::EpisodeStart { ws }
            | EventKind::StormKill { ws }
            | EventKind::Crash { ws }
            | EventKind::MessageLost { ws }
            | EventKind::Straggle { ws } => int(&mut s, "ws", ws),
            EventKind::PeriodStart { ws, len } => {
                int(&mut s, "ws", ws);
                num(&mut s, "len", len);
            }
            EventKind::PeriodCommit { ws, work } => {
                int(&mut s, "ws", ws);
                num(&mut s, "work", work);
            }
            EventKind::PeriodInterrupt { ws, lost } => {
                int(&mut s, "ws", ws);
                num(&mut s, "lost", lost);
            }
            EventKind::Dispatch { ws, tasks, work } => {
                int(&mut s, "ws", ws);
                int(&mut s, "tasks", tasks);
                num(&mut s, "work", work);
            }
            EventKind::Bank {
                ws,
                work,
                duplicate,
            } => {
                int(&mut s, "ws", ws);
                num(&mut s, "work", work);
                num(&mut s, "duplicate", duplicate);
            }
            EventKind::LeaseTimeout { ws, lease } => {
                int(&mut s, "ws", ws);
                int(&mut s, "lease", lease);
            }
            EventKind::Requeue { ws, tasks } | EventKind::Replica { ws, tasks } => {
                int(&mut s, "ws", ws);
                int(&mut s, "tasks", tasks);
            }
            EventKind::Backoff { ws, delay } => {
                int(&mut s, "ws", ws);
                num(&mut s, "delay", delay);
            }
            EventKind::Quarantine { ws, until } => {
                int(&mut s, "ws", ws);
                num(&mut s, "until", until);
            }
            EventKind::McProgress { done, total } => {
                int(&mut s, "done", done);
                int(&mut s, "total", total);
            }
            EventKind::RunEnd {
                banked,
                lost,
                drained,
            } => {
                num(&mut s, "banked", banked);
                num(&mut s, "lost", lost);
                write!(s, ",\"drained\":{drained}").expect("write to String");
            }
            EventKind::SpanStart { id, parent, name } => {
                int(&mut s, "id", id);
                int(&mut s, "parent", parent);
                debug_assert!(span_name_is_plain(name), "span name {name:?}");
                write!(s, ",\"name\":\"{name}\"").expect("write to String");
            }
            EventKind::SpanEnd {
                id,
                parent,
                name,
                dur_ns,
            } => {
                int(&mut s, "id", id);
                int(&mut s, "parent", parent);
                debug_assert!(span_name_is_plain(name), "span name {name:?}");
                write!(s, ",\"name\":\"{name}\"").expect("write to String");
                num(&mut s, "dur_ns", dur_ns);
            }
        }
        s.push('}');
        s
    }
}

/// Span names are static identifiers chosen in code; they must not need
/// JSON escaping (checked in debug builds at serialization time).
pub(crate) fn span_name_is_plain(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_name_is_in_all_kinds() {
        let kinds = [
            EventKind::RunStart {
                seed: 1,
                workstations: 2,
                tasks: 3,
            },
            EventKind::EpisodeStart { ws: 0 },
            EventKind::PeriodStart { ws: 0, len: 1.0 },
            EventKind::PeriodCommit { ws: 0, work: 1.0 },
            EventKind::PeriodInterrupt { ws: 0, lost: 1.0 },
            EventKind::Dispatch {
                ws: 0,
                tasks: 4,
                work: 4.0,
            },
            EventKind::Bank {
                ws: 0,
                work: 4.0,
                duplicate: 0.0,
            },
            EventKind::LeaseTimeout { ws: 0, lease: 9 },
            EventKind::Requeue { ws: 0, tasks: 4 },
            EventKind::Backoff { ws: 0, delay: 2.0 },
            EventKind::Quarantine { ws: 0, until: 99.0 },
            EventKind::StormKill { ws: 0 },
            EventKind::Crash { ws: 0 },
            EventKind::MessageLost { ws: 0 },
            EventKind::Straggle { ws: 0 },
            EventKind::Replica { ws: 0, tasks: 2 },
            EventKind::McProgress { done: 5, total: 10 },
            EventKind::RunEnd {
                banked: 10.0,
                lost: 1.0,
                drained: true,
            },
            EventKind::SpanStart {
                id: 1,
                parent: 0,
                name: "farm.run",
            },
            EventKind::SpanEnd {
                id: 1,
                parent: 0,
                name: "farm.run",
                dur_ns: 1500.0,
            },
        ];
        assert_eq!(kinds.len(), ALL_KINDS.len());
        for k in kinds {
            assert!(ALL_KINDS.contains(&k.name()), "{} missing", k.name());
        }
    }

    #[test]
    fn jsonl_shape() {
        let e = Event {
            time: 12.5,
            kind: EventKind::Bank {
                ws: 3,
                work: 18.0,
                duplicate: 0.5,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"v":2,"t":12.5,"type":"bank","ws":3,"work":18,"duplicate":0.5}"#
        );
    }

    #[test]
    fn span_jsonl_shape() {
        let e = Event {
            time: 0.25,
            kind: EventKind::SpanEnd {
                id: 7,
                parent: 2,
                name: "mc.trial_batch",
                dur_ns: 12000.0,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"v":2,"t":0.25,"type":"span_end","id":7,"parent":2,"name":"mc.trial_batch","dur_ns":12000}"#
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let e = Event {
            time: f64::NAN,
            kind: EventKind::RunEnd {
                banked: f64::INFINITY,
                lost: 0.0,
                drained: false,
            },
        };
        let line = e.to_jsonl();
        assert!(line.contains("\"t\":null"), "{line}");
        assert!(line.contains("\"banked\":null"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn f64_round_trips_through_display() {
        // The validator relies on shortest-round-trip Display formatting.
        for v in [0.1, 1.0 / 3.0, 435.8123456789, 1e-300, 123456789.123456] {
            let mut s = String::new();
            push_json_f64(&mut s, v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }
}
