//! Event sinks: where emitted [`Event`]s go.
//!
//! Every producer (episode simulator, Monte-Carlo harness, farm master) is
//! written against the [`EventSink`] trait, and the sink is strictly
//! **pass-through**: it never feeds anything back into the producer, so a
//! seeded run is bit-identical in results whichever sink is attached. The
//! [`NoopSink`] is the default and must cost nothing measurable.

use crate::event::Event;
use crate::metrics::MetricsRegistry;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Receives the event stream of a run.
///
/// Implementations must be pass-through (no effect on the producer) and
/// cheap: `emit` sits inside simulation loops.
pub trait EventSink {
    /// Receives one event.
    fn emit(&mut self, event: &Event);

    /// Flushes buffered output (no-op for unbuffered sinks).
    fn flush_sink(&mut self) {}
}

/// Every `&mut` sink is itself a sink, so generic producers accept both
/// concrete sinks and `&mut dyn EventSink`.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, event: &Event) {
        (**self).emit(event);
    }
    fn flush_sink(&mut self) {
        (**self).flush_sink();
    }
}

/// Discards every event. The default sink; optimizes to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline(always)]
    fn emit(&mut self, _event: &Event) {}
}

/// Buffers every event in memory, in emission order.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The captured events.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// Writes each event as one JSON line through a buffered file writer.
///
/// I/O discipline: `emit` stays infallible (pass-through contract — the
/// simulation must not branch on sink health), so the first write error is
/// *latched* and surfaced by [`JsonlSink::finish`]. Dropping the sink
/// without calling `finish` still flushes the buffer (so traces are never
/// silently truncated) and reports any failure on stderr, but callers that
/// care about trace integrity should call `finish` and check the result.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Option<BufWriter<File>>,
    lines: u64,
    error: Option<std::io::Error>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_file(File::create(path)?))
    }

    /// Wraps an already-open file (useful for tests and special handles).
    pub fn from_file(file: File) -> Self {
        Self {
            writer: Some(BufWriter::new(file)),
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully handed to the writer so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and surfaces the first deferred I/O error (errors inside
    /// `emit` are latched so the hot path stays infallible). Returns the
    /// number of lines written.
    pub fn finish(mut self) -> std::io::Result<u64> {
        if let Some(mut w) = self.writer.take() {
            if self.error.is_none() {
                if let Err(e) = w.flush() {
                    self.error = Some(e);
                }
            }
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.lines),
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // After the first failure the sink goes quiet: the error is latched
        // for `finish` and later events are dropped rather than spamming
        // further syscalls against a broken file.
        if self.error.is_some() {
            return;
        }
        let Some(w) = self.writer.as_mut() else {
            return;
        };
        let mut line = event.to_jsonl();
        line.push('\n');
        match w.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_sink(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // `finish` already took the writer on the happy path; this only
        // runs for sinks dropped early (panics, error returns). Flush so
        // the tail of the trace survives, and fail loudly — stderr is the
        // only channel left in a destructor.
        if let Some(mut w) = self.writer.take() {
            let flush_err = w.flush().err();
            if let Some(e) = self.error.take().or(flush_err) {
                eprintln!(
                    "warning: trace file incomplete ({} lines kept): {e}",
                    self.lines
                );
            }
        }
    }
}

/// Fans each event out to several sinks (e.g. JSONL file + metrics).
#[derive(Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> TeeSink<'a> {
    /// An empty tee (behaves like [`NoopSink`]).
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: &'a mut dyn EventSink) {
        self.sinks.push(sink);
    }
}

impl EventSink for TeeSink<'_> {
    fn emit(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.emit(event);
        }
    }

    fn flush_sink(&mut self) {
        for s in &mut self.sinks {
            s.flush_sink();
        }
    }
}

/// Folds the event stream into a [`MetricsRegistry`]: one counter per event
/// class, gauges for run outcomes, histograms for the interesting
/// distributions (chunk sizes, banked work, backoff delays, lost work).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    /// The registry being populated.
    pub registry: MetricsRegistry,
}

impl MetricsSink {
    /// A sink over a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MetricsSink {
    fn emit(&mut self, event: &Event) {
        use crate::event::EventKind as K;
        let r = &mut self.registry;
        match event.kind {
            K::RunStart {
                workstations,
                tasks,
                ..
            } => {
                r.gauge_set("workstations", workstations as f64);
                r.gauge_set("tasks", tasks as f64);
            }
            K::EpisodeStart { .. } => r.counter_add("episodes", 1),
            K::PeriodStart { ws: _, len } => {
                r.counter_add("periods", 1);
                r.observe("period_len", len);
            }
            K::PeriodCommit { ws: _, work } => {
                r.counter_add("periods_committed", 1);
                r.observe("period_work", work);
            }
            K::PeriodInterrupt { ws: _, lost } => {
                r.counter_add("periods_interrupted", 1);
                r.observe("period_lost", lost);
            }
            K::Dispatch { ws: _, tasks, work } => {
                r.counter_add("dispatches", 1);
                r.counter_add("tasks_dispatched", tasks);
                r.observe("chunk_work", work);
            }
            K::Bank {
                ws: _,
                work,
                duplicate,
            } => {
                r.counter_add("chunks_banked", 1);
                r.gauge_add("banked_work", work);
                r.gauge_add("duplicate_work", duplicate);
                r.observe("bank_work", work);
            }
            K::LeaseTimeout { .. } => r.counter_add("lease_timeouts", 1),
            K::Requeue { ws: _, tasks } => {
                r.counter_add("requeues", 1);
                r.counter_add("tasks_requeued", tasks);
            }
            K::Backoff { ws: _, delay } => {
                r.counter_add("backoff_delays", 1);
                r.observe("backoff_delay", delay);
            }
            K::Quarantine { .. } => r.counter_add("quarantines", 1),
            K::StormKill { .. } => r.counter_add("storm_kills", 1),
            K::Crash { .. } => r.counter_add("crashes", 1),
            K::MessageLost { .. } => r.counter_add("messages_lost", 1),
            K::Straggle { .. } => r.counter_add("straggled_chunks", 1),
            K::Replica { ws: _, tasks } => {
                r.counter_add("replicas_dispatched", 1);
                r.counter_add("replica_tasks", tasks);
            }
            K::McProgress { done, total } => {
                r.gauge_set("mc_done", done as f64);
                r.gauge_set("mc_total", total as f64);
            }
            K::RunEnd {
                banked,
                lost,
                drained,
            } => {
                r.gauge_set("run_banked", banked);
                r.gauge_set("run_lost", lost);
                r.gauge_set("run_drained", if drained { 1.0 } else { 0.0 });
                r.gauge_set("run_end_time", event.time);
            }
            K::SpanStart { .. } => r.counter_add("spans_opened", 1),
            K::SpanEnd { name, dur_ns, .. } => {
                r.counter_add("spans_closed", 1);
                r.observe(&format!("span_ns.{name}"), dur_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(kind: EventKind) -> Event {
        Event { time: 1.0, kind }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut s = MemorySink::new();
        s.emit(&ev(EventKind::EpisodeStart { ws: 0 }));
        s.emit(&ev(EventKind::Crash { ws: 1 }));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[1].kind, EventKind::Crash { ws: 1 });
    }

    #[test]
    fn tee_fans_out() {
        let mut a = MemorySink::new();
        let mut b = MetricsSink::new();
        {
            let mut tee = TeeSink::new();
            tee.push(&mut a);
            tee.push(&mut b);
            tee.emit(&ev(EventKind::LeaseTimeout { ws: 0, lease: 3 }));
            tee.flush_sink();
        }
        assert_eq!(a.events.len(), 1);
        assert_eq!(b.registry.counter("lease_timeouts"), 1);
    }

    #[test]
    fn metrics_sink_folds_counters_and_gauges() {
        let mut s = MetricsSink::new();
        s.emit(&ev(EventKind::Bank {
            ws: 0,
            work: 5.0,
            duplicate: 1.0,
        }));
        s.emit(&ev(EventKind::Bank {
            ws: 1,
            work: 3.0,
            duplicate: 0.0,
        }));
        s.emit(&ev(EventKind::RunEnd {
            banked: 8.0,
            lost: 0.0,
            drained: true,
        }));
        let r = &s.registry;
        assert_eq!(r.counter("chunks_banked"), 2);
        assert_eq!(r.gauge("banked_work"), Some(8.0));
        assert_eq!(r.gauge("duplicate_work"), Some(1.0));
        assert_eq!(r.gauge("run_drained"), Some(1.0));
        assert_eq!(r.histogram("bank_work").unwrap().count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("cs_obs_sink_test.jsonl");
        let mut s = JsonlSink::create(&path).unwrap();
        s.emit(&ev(EventKind::Crash { ws: 2 }));
        s.emit(&ev(EventKind::Requeue { ws: 2, tasks: 4 }));
        let n = s.finish().unwrap();
        assert_eq!(n, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path = std::env::temp_dir().join("cs_obs_sink_drop_test.jsonl");
        {
            let mut s = JsonlSink::create(&path).unwrap();
            // Well under BufWriter's default buffer size, so without the
            // Drop flush these lines would be lost.
            s.emit(&ev(EventKind::Crash { ws: 7 }));
            // Dropped without finish() — e.g. the caller returned early.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_at_finish() {
        // A read-only handle makes every write fail deterministically.
        let path = std::env::temp_dir().join("cs_obs_sink_err_test.jsonl");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap(); // read-only
        let mut s = JsonlSink::from_file(file);
        // BufWriter defers the failure to flush time; emit must not panic.
        for _ in 0..4 {
            s.emit(&ev(EventKind::Crash { ws: 0 }));
        }
        s.flush_sink();
        assert!(s.finish().is_err(), "write to read-only file must surface");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_sink_folds_span_events() {
        let mut s = MetricsSink::new();
        s.emit(&ev(EventKind::SpanStart {
            id: 1,
            parent: 0,
            name: "farm.dispatch",
        }));
        s.emit(&ev(EventKind::SpanEnd {
            id: 1,
            parent: 0,
            name: "farm.dispatch",
            dur_ns: 250.0,
        }));
        assert_eq!(s.registry.counter("spans_opened"), 1);
        assert_eq!(s.registry.counter("spans_closed"), 1);
        let h = s.registry.histogram("span_ns.farm.dispatch").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 250.0);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn generic<S: EventSink>(mut s: S) {
            s.emit(&ev(EventKind::Crash { ws: 0 }));
        }
        let mut m = MemorySink::new();
        generic(&mut m);
        let dyn_ref: &mut dyn EventSink = &mut m;
        generic(dyn_ref);
        assert_eq!(m.events.len(), 2);
    }
}
