//! Event sinks: where emitted [`Event`]s go.
//!
//! Every producer (episode simulator, Monte-Carlo harness, farm master) is
//! written against the [`EventSink`] trait, and the sink is strictly
//! **pass-through**: it never feeds anything back into the producer, so a
//! seeded run is bit-identical in results whichever sink is attached. The
//! [`NoopSink`] is the default and must cost nothing measurable.

use crate::event::Event;
use crate::metrics::MetricsRegistry;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Receives the event stream of a run.
///
/// Implementations must be pass-through (no effect on the producer) and
/// cheap: `emit` sits inside simulation loops.
pub trait EventSink {
    /// Receives one event.
    fn emit(&mut self, event: &Event);

    /// Flushes buffered output (no-op for unbuffered sinks).
    fn flush_sink(&mut self) {}

    /// True when emitted events are actually observed. Producers may query
    /// this once per hot-loop iteration and skip building [`Event`]s
    /// entirely when it returns `false`; correctness must not depend on the
    /// skipped emissions (sinks are pass-through). Defaults to `true`;
    /// only sinks that provably discard everything return `false`.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Every `&mut` sink is itself a sink, so generic producers accept both
/// concrete sinks and `&mut dyn EventSink`.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, event: &Event) {
        (**self).emit(event);
    }
    fn flush_sink(&mut self) {
        (**self).flush_sink();
    }
    fn wants_events(&self) -> bool {
        (**self).wants_events()
    }
}

/// Discards every event. The default sink; optimizes to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline(always)]
    fn emit(&mut self, _event: &Event) {}

    #[inline(always)]
    fn wants_events(&self) -> bool {
        false
    }
}

/// Buffers every event in memory, in emission order.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The captured events.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// Writes each event as one JSON line through a buffered file writer.
///
/// Rendering is **lazy**: `emit` only copies the compact binary [`Event`]
/// into an in-memory buffer, and the JSONL text is produced in batches at
/// the sink boundary — when the buffer fills, on [`JsonlSink::flush_sink`],
/// [`JsonlSink::finish`] or drop. This keeps the producer's hot loop free
/// of string formatting; the rendered byte stream is identical to eager
/// per-event rendering.
///
/// I/O discipline: `emit` stays infallible (pass-through contract — the
/// simulation must not branch on sink health), so the first write error is
/// *latched* and surfaced by [`JsonlSink::finish`]. Dropping the sink
/// without calling `finish` still renders and flushes the buffer (so traces
/// are never silently truncated) and reports any failure on stderr, but
/// callers that care about trace integrity should call `finish` and check
/// the result.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Option<BufWriter<File>>,
    /// Events emitted but not yet rendered to text.
    buffer: Vec<Event>,
    lines: u64,
    error: Option<std::io::Error>,
    /// Live-tail mode: render *and flush to the OS* every this many
    /// events instead of batching [`JSONL_BATCH`] (see
    /// [`JsonlSink::flush_every`]).
    flush_every: Option<u64>,
}

/// Render-and-write batch size: bounds `JsonlSink` memory while keeping
/// string formatting off the per-event path.
const JSONL_BATCH: usize = 4096;

impl JsonlSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_file(File::create(path)?))
    }

    /// Wraps an already-open file (useful for tests and special handles).
    pub fn from_file(file: File) -> Self {
        Self {
            writer: Some(BufWriter::new(file)),
            buffer: Vec::new(),
            lines: 0,
            error: None,
            flush_every: None,
        }
    }

    /// Switches the sink into live-tail mode: render and flush to the OS
    /// every `every` events (min 1) instead of batching 4096 at a time,
    /// so `tail -f` on the trace file sees lines promptly. The rendered
    /// byte stream is identical to batched mode — only flush timing
    /// changes. The CLI enables this automatically when a heartbeat
    /// (`--progress-every`) is active: a run being watched live should
    /// have a watchable trace.
    pub fn flush_every(mut self, every: u64) -> Self {
        self.flush_every = Some(every.max(1));
        self
    }

    /// Lines successfully rendered and handed to the writer so far
    /// (buffered-but-unrendered events are not yet counted).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Renders every buffered event to JSONL and hands it to the writer.
    /// Stops at (and latches) the first write error; later events are
    /// dropped rather than spamming syscalls against a broken file.
    fn render_buffer(&mut self) {
        if self.error.is_some() {
            self.buffer.clear();
            return;
        }
        let Some(w) = self.writer.as_mut() else {
            self.buffer.clear();
            return;
        };
        let mut line = String::new();
        for event in self.buffer.drain(..) {
            line.clear();
            line.push_str(&event.to_jsonl());
            line.push('\n');
            match w.write_all(line.as_bytes()) {
                Ok(()) => self.lines += 1,
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
        self.buffer.clear();
    }

    /// Renders any buffered events, flushes and surfaces the first deferred
    /// I/O error (errors inside `emit`/rendering are latched so the hot
    /// path stays infallible). Returns the number of lines written.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.render_buffer();
        if let Some(mut w) = self.writer.take() {
            if self.error.is_none() {
                if let Err(e) = w.flush() {
                    self.error = Some(e);
                }
            }
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.lines),
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // After the first failure the sink goes quiet: the error is latched
        // for `finish`.
        if self.error.is_some() || self.writer.is_none() {
            return;
        }
        self.buffer.push(*event);
        match self.flush_every {
            Some(every) => {
                if self.buffer.len() as u64 >= every {
                    self.flush_sink();
                }
            }
            None => {
                if self.buffer.len() >= JSONL_BATCH {
                    self.render_buffer();
                }
            }
        }
    }

    fn flush_sink(&mut self) {
        self.render_buffer();
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // `finish` already took the writer on the happy path; this only
        // runs for sinks dropped early (panics, error returns). Render and
        // flush so the tail of the trace survives, and fail loudly — stderr
        // is the only channel left in a destructor.
        self.render_buffer();
        if let Some(mut w) = self.writer.take() {
            let flush_err = w.flush().err();
            if let Some(e) = self.error.take().or(flush_err) {
                eprintln!(
                    "warning: trace file incomplete ({} lines kept): {e}",
                    self.lines
                );
            }
        }
    }
}

/// Fans each event out to several sinks (e.g. JSONL file + metrics).
#[derive(Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> TeeSink<'a> {
    /// An empty tee (behaves like [`NoopSink`]).
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: &'a mut dyn EventSink) {
        self.sinks.push(sink);
    }
}

impl EventSink for TeeSink<'_> {
    fn emit(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.emit(event);
        }
    }

    fn flush_sink(&mut self) {
        for s in &mut self.sinks {
            s.flush_sink();
        }
    }

    fn wants_events(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_events())
    }
}

/// Folds the event stream into a [`MetricsRegistry`]: one counter per event
/// class, gauges for run outcomes, histograms for the interesting
/// distributions (chunk sizes, banked work, backoff delays, lost work).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    /// The registry being populated.
    pub registry: MetricsRegistry,
}

impl MetricsSink {
    /// A sink over a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MetricsSink {
    fn emit(&mut self, event: &Event) {
        use crate::event::EventKind as K;
        let r = &mut self.registry;
        match event.kind {
            K::RunStart {
                workstations,
                tasks,
                ..
            } => {
                r.gauge_set("workstations", workstations as f64);
                r.gauge_set("tasks", tasks as f64);
            }
            K::EpisodeStart { .. } => r.counter_add("episodes", 1),
            K::PeriodStart { ws: _, len } => {
                r.counter_add("periods", 1);
                r.observe("period_len", len);
            }
            K::PeriodCommit { ws: _, work } => {
                r.counter_add("periods_committed", 1);
                r.observe("period_work", work);
            }
            K::PeriodInterrupt { ws: _, lost } => {
                r.counter_add("periods_interrupted", 1);
                r.observe("period_lost", lost);
            }
            K::Dispatch { ws: _, tasks, work } => {
                r.counter_add("dispatches", 1);
                r.counter_add("tasks_dispatched", tasks);
                r.observe("chunk_work", work);
            }
            K::Bank {
                ws: _,
                work,
                duplicate,
            } => {
                r.counter_add("chunks_banked", 1);
                r.gauge_add("banked_work", work);
                r.gauge_add("duplicate_work", duplicate);
                r.observe("bank_work", work);
            }
            K::LeaseTimeout { .. } => r.counter_add("lease_timeouts", 1),
            K::Requeue { ws: _, tasks } => {
                r.counter_add("requeues", 1);
                r.counter_add("tasks_requeued", tasks);
            }
            K::Backoff { ws: _, delay } => {
                r.counter_add("backoff_delays", 1);
                r.observe("backoff_delay", delay);
            }
            K::Quarantine { .. } => r.counter_add("quarantines", 1),
            K::StormKill { .. } => r.counter_add("storm_kills", 1),
            K::Crash { .. } => r.counter_add("crashes", 1),
            K::MessageLost { .. } => r.counter_add("messages_lost", 1),
            K::Straggle { .. } => r.counter_add("straggled_chunks", 1),
            K::Replica { ws: _, tasks } => {
                r.counter_add("replicas_dispatched", 1);
                r.counter_add("replica_tasks", tasks);
            }
            K::McProgress { done, total } => {
                r.gauge_set("mc_done", done as f64);
                r.gauge_set("mc_total", total as f64);
            }
            K::RunEnd {
                banked,
                lost,
                drained,
            } => {
                r.gauge_set("run_banked", banked);
                r.gauge_set("run_lost", lost);
                r.gauge_set("run_drained", if drained { 1.0 } else { 0.0 });
                r.gauge_set("run_end_time", event.time);
            }
            K::SpanStart { .. } => r.counter_add("spans_opened", 1),
            K::SpanEnd { name, dur_ns, .. } => {
                r.counter_add("spans_closed", 1);
                r.observe(&format!("span_ns.{name}"), dur_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(kind: EventKind) -> Event {
        Event { time: 1.0, kind }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut s = MemorySink::new();
        s.emit(&ev(EventKind::EpisodeStart { ws: 0 }));
        s.emit(&ev(EventKind::Crash { ws: 1 }));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[1].kind, EventKind::Crash { ws: 1 });
    }

    #[test]
    fn tee_fans_out() {
        let mut a = MemorySink::new();
        let mut b = MetricsSink::new();
        {
            let mut tee = TeeSink::new();
            tee.push(&mut a);
            tee.push(&mut b);
            tee.emit(&ev(EventKind::LeaseTimeout { ws: 0, lease: 3 }));
            tee.flush_sink();
        }
        assert_eq!(a.events.len(), 1);
        assert_eq!(b.registry.counter("lease_timeouts"), 1);
    }

    #[test]
    fn metrics_sink_folds_counters_and_gauges() {
        let mut s = MetricsSink::new();
        s.emit(&ev(EventKind::Bank {
            ws: 0,
            work: 5.0,
            duplicate: 1.0,
        }));
        s.emit(&ev(EventKind::Bank {
            ws: 1,
            work: 3.0,
            duplicate: 0.0,
        }));
        s.emit(&ev(EventKind::RunEnd {
            banked: 8.0,
            lost: 0.0,
            drained: true,
        }));
        let r = &s.registry;
        assert_eq!(r.counter("chunks_banked"), 2);
        assert_eq!(r.gauge("banked_work"), Some(8.0));
        assert_eq!(r.gauge("duplicate_work"), Some(1.0));
        assert_eq!(r.gauge("run_drained"), Some(1.0));
        assert_eq!(r.histogram("bank_work").unwrap().count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("cs_obs_sink_test.jsonl");
        let mut s = JsonlSink::create(&path).unwrap();
        s.emit(&ev(EventKind::Crash { ws: 2 }));
        s.emit(&ev(EventKind::Requeue { ws: 2, tasks: 4 }));
        let n = s.finish().unwrap();
        assert_eq!(n, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path = std::env::temp_dir().join("cs_obs_sink_drop_test.jsonl");
        {
            let mut s = JsonlSink::create(&path).unwrap();
            // Well under BufWriter's default buffer size, so without the
            // Drop flush these lines would be lost.
            s.emit(&ev(EventKind::Crash { ws: 7 }));
            // Dropped without finish() — e.g. the caller returned early.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_at_finish() {
        // A read-only handle makes every write fail deterministically.
        let path = std::env::temp_dir().join("cs_obs_sink_err_test.jsonl");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap(); // read-only
        let mut s = JsonlSink::from_file(file);
        // BufWriter defers the failure to flush time; emit must not panic.
        for _ in 0..4 {
            s.emit(&ev(EventKind::Crash { ws: 0 }));
        }
        s.flush_sink();
        assert!(s.finish().is_err(), "write to read-only file must surface");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_sink_folds_span_events() {
        let mut s = MetricsSink::new();
        s.emit(&ev(EventKind::SpanStart {
            id: 1,
            parent: 0,
            name: "farm.dispatch",
        }));
        s.emit(&ev(EventKind::SpanEnd {
            id: 1,
            parent: 0,
            name: "farm.dispatch",
            dur_ns: 250.0,
        }));
        assert_eq!(s.registry.counter("spans_opened"), 1);
        assert_eq!(s.registry.counter("spans_closed"), 1);
        let h = s.registry.histogram("span_ns.farm.dispatch").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 250.0);
    }

    #[test]
    fn wants_events_reflects_observability() {
        assert!(!NoopSink.wants_events());
        assert!(MemorySink::new().wants_events());
        assert!(MetricsSink::new().wants_events());
        // &mut delegates to the underlying sink.
        let mut noop = NoopSink;
        let as_ref: &mut dyn EventSink = &mut noop;
        assert!(!as_ref.wants_events());
        // A tee wants events iff any downstream sink does.
        let empty = TeeSink::new();
        assert!(!empty.wants_events());
        let mut n = NoopSink;
        let mut m = MemorySink::new();
        let mut tee = TeeSink::new();
        tee.push(&mut n);
        assert!(!tee.wants_events());
        tee.push(&mut m);
        assert!(tee.wants_events());
    }

    #[test]
    fn jsonl_sink_renders_lazily_but_identically() {
        let path = std::env::temp_dir().join("cs_obs_sink_lazy_test.jsonl");
        let mut s = JsonlSink::create(&path).unwrap();
        s.emit(&ev(EventKind::Crash { ws: 2 }));
        // Nothing rendered yet: emission buffers the compact event.
        assert_eq!(s.lines(), 0);
        s.flush_sink();
        assert_eq!(s.lines(), 1);
        let eager = ev(EventKind::Crash { ws: 2 }).to_jsonl() + "\n";
        assert_eq!(std::fs::read_to_string(&path).unwrap(), eager);
        s.emit(&ev(EventKind::Requeue { ws: 2, tasks: 4 }));
        assert_eq!(s.finish().unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_flush_every_makes_lines_promptly_visible() {
        let path = std::env::temp_dir().join("cs_obs_sink_live_test.jsonl");
        let mut s = JsonlSink::create(&path).unwrap().flush_every(1);
        s.emit(&ev(EventKind::Crash { ws: 2 }));
        // Live-tail mode: the line is on disk without any explicit flush,
        // far below the 4096-event batch that would otherwise gate it.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text:?}");
        s.emit(&ev(EventKind::Requeue { ws: 2, tasks: 4 }));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text:?}");
        // Byte stream identical to batched mode.
        let eager = ev(EventKind::Crash { ws: 2 }).to_jsonl()
            + "\n"
            + &ev(EventKind::Requeue { ws: 2, tasks: 4 }).to_jsonl()
            + "\n";
        assert_eq!(text, eager);
        assert_eq!(s.finish().unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn generic<S: EventSink>(mut s: S) {
            s.emit(&ev(EventKind::Crash { ws: 0 }));
        }
        let mut m = MemorySink::new();
        generic(&mut m);
        let dyn_ref: &mut dyn EventSink = &mut m;
        generic(dyn_ref);
        assert_eq!(m.events.len(), 2);
    }
}
