//! Machine-readable run summaries for the `exp_*` experiment binaries.
//!
//! Each experiment prints a human table; a [`RunSummary`] adds one
//! greppable JSON line (`RUN-SUMMARY {...}`) so downstream tooling can
//! scrape headline numbers without parsing the tables. Fields keep
//! insertion order; values are scalars only, matching [`crate::json`].

use crate::event::push_json_f64;
use crate::json::JsonValue;

/// Builder for one experiment's summary line.
#[derive(Debug, Clone)]
pub struct RunSummary {
    name: String,
    fields: Vec<(String, JsonValue)>,
}

impl RunSummary {
    /// Starts a summary for the named experiment.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds a numeric field (NaN/∞ serialize as `null`).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), JsonValue::Num(v)));
        self
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, v: u64) -> Self {
        self.num(key, v as f64)
    }

    /// Adds a string field (quotes and backslashes escaped).
    pub fn text(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), JsonValue::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn flag(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), JsonValue::Bool(v)));
        self
    }

    /// Serializes to one JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{\"summary\":\"");
        escape_into(&mut s, &self.name);
        write!(s, "\",\"v\":{}", crate::event::SCHEMA_VERSION).expect("write to String");
        for (k, v) in &self.fields {
            s.push_str(",\"");
            escape_into(&mut s, k);
            s.push_str("\":");
            match v {
                JsonValue::Num(x) => push_json_f64(&mut s, *x),
                JsonValue::Str(x) => {
                    s.push('"');
                    escape_into(&mut s, x);
                    s.push('"');
                }
                JsonValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
                JsonValue::Null => s.push_str("null"),
            }
        }
        s.push('}');
        s
    }

    /// Prints the `RUN-SUMMARY {...}` line to stdout.
    pub fn emit(&self) {
        println!("RUN-SUMMARY {}", self.to_json());
    }

    /// Writes the `RUN-SUMMARY {...}` line to the given writer (the
    /// experiment-harness equivalent of [`RunSummary::emit`]).
    pub fn emit_to(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(out, "RUN-SUMMARY {}", self.to_json())
    }
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    #[test]
    fn summary_round_trips_through_the_parser() {
        let json = RunSummary::new("exp_now_farm")
            .text("policy", "guideline")
            .num("makespan", 123.5)
            .int("replications", 12)
            .flag("drained", true)
            .num("ci", f64::NAN)
            .to_json();
        let m = parse_object(&json).unwrap();
        assert_eq!(m["summary"].as_str(), Some("exp_now_farm"));
        assert_eq!(m["policy"].as_str(), Some("guideline"));
        assert_eq!(m["makespan"].as_f64(), Some(123.5));
        assert_eq!(m["replications"].as_u64(), Some(12));
        assert_eq!(m["drained"].as_bool(), Some(true));
        assert!(m["ci"].as_f64().unwrap().is_nan());
    }

    #[test]
    fn strings_are_escaped() {
        let json = RunSummary::new("x").text("s", "a\"b\\c").to_json();
        let m = parse_object(&json).unwrap();
        assert_eq!(m["s"].as_str(), Some("a\"b\\c"));
    }
}
