//! Injectable filesystem abstraction for the durability layer.
//!
//! Every byte the journal/snapshot stack persists flows through a [`Vfs`]:
//! [`JournalWriter`](crate::JournalWriter) opens and appends through it,
//! [`read_journal`](crate::read_journal) reads through it, and `cs-now`'s
//! snapshot tmp+fsync+rename path renames through it. Production code uses
//! [`StdVfs`] (a zero-cost shim over `std::fs`); tests and the chaos
//! harness use [`FaultyVfs`] to inject failed writes, short (torn) writes,
//! fsync errors, rename failures and ENOSPC at chosen operation indices —
//! deterministically, from a seed — so every I/O error path is a typed,
//! exercised outcome instead of an assumed success.
//!
//! Fault semantics: each [`FaultKind`] counts operations of its own class
//! (writes for write faults, syncs for sync faults, renames for rename
//! faults), and a [`FaultAt`] entry fires when the class counter reaches
//! its index. Injected errors carry an [`InjectedFault`] payload so
//! consumers can distinguish an injected fault from a real disk error via
//! [`injected_kind`].

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A writable file handle opened through a [`Vfs`].
///
/// The two operations the journal/snapshot layer performs on an open
/// handle: append bytes and force them to stable storage.
pub trait VfsFile: Send + std::fmt::Debug {
    /// Writes the whole buffer (or fails).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces written data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability layer performs.
///
/// Deliberately narrow: truncating create, append-at-offset open, whole
/// file read, atomic rename, remove, existence probe. Everything the
/// journal writer, the journal reader and the snapshot tmp+fsync+rename
/// path need — and nothing else, so a fault injector can enumerate the
/// full surface.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Creates (truncating) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens `path` for writing, truncates it to `valid_len` bytes and
    /// positions the cursor at the new end (the journal append path).
    fn open_append(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// True when `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: a zero-cost shim over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A [`VfsFile`] over a real [`std::fs::File`].
#[derive(Debug)]
pub struct StdVfsFile(pub std::fs::File);

impl VfsFile for StdVfsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdVfsFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn VfsFile>> {
        use std::io::Seek;
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(StdVfsFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The kinds of disk fault [`FaultyVfs`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// `write_all` fails outright; nothing reaches the file.
    FailedWrite,
    /// `write_all` persists only the first half of the buffer, then fails
    /// — a torn write, the tail the journal reader must tolerate.
    ShortWrite,
    /// `sync_data` fails; the data may or may not be durable.
    FsyncError,
    /// `rename` fails; the tmp file is left behind (the snapshot
    /// tmp+fsync+rename path must surface this, and start-up sweeps must
    /// clean the orphan).
    RenameFailure,
    /// `write_all` fails with an ENOSPC-shaped error; nothing is written.
    NoSpace,
}

/// All injectable fault kinds, in a stable order (the chaos harness
/// cycles through these).
pub const ALL_FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::FailedWrite,
    FaultKind::ShortWrite,
    FaultKind::FsyncError,
    FaultKind::RenameFailure,
    FaultKind::NoSpace,
];

impl FaultKind {
    /// Stable kebab-case label (used in chaos summaries and tests).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::FailedWrite => "failed-write",
            FaultKind::ShortWrite => "short-write",
            FaultKind::FsyncError => "fsync-error",
            FaultKind::RenameFailure => "rename-failure",
            FaultKind::NoSpace => "enospc",
        }
    }

    /// The operation class this fault counts: write faults fire on the
    /// N-th write, sync faults on the N-th sync, rename faults on the
    /// N-th rename.
    fn class(self) -> OpClass {
        match self {
            FaultKind::FailedWrite | FaultKind::ShortWrite | FaultKind::NoSpace => OpClass::Write,
            FaultKind::FsyncError => OpClass::Sync,
            FaultKind::RenameFailure => OpClass::Rename,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    Sync,
    Rename,
}

/// One planned fault: the `index`-th operation of `kind`'s class fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAt {
    /// Which fault fires.
    pub kind: FaultKind,
    /// Zero-based index within the fault's operation class (the 0th
    /// write, the 2nd sync, ...).
    pub index: u64,
}

/// The error payload attached to every injected fault, so callers can
/// tell injected faults from real disk errors ([`injected_kind`]).
#[derive(Debug)]
pub struct InjectedFault(pub FaultKind);

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            FaultKind::NoSpace => write!(f, "injected {}: no space left on device", self.0),
            _ => write!(f, "injected {}", self.0),
        }
    }
}

impl std::error::Error for InjectedFault {}

/// Returns the injected [`FaultKind`] if `err` (or its source chain root)
/// was produced by a [`FaultyVfs`].
pub fn injected_kind(err: &io::Error) -> Option<FaultKind> {
    err.get_ref()
        .and_then(|inner| inner.downcast_ref::<InjectedFault>())
        .map(|f| f.0)
}

fn injected_error(kind: FaultKind) -> io::Error {
    io::Error::other(InjectedFault(kind))
}

#[derive(Debug, Default)]
struct FaultState {
    writes: AtomicU64,
    syncs: AtomicU64,
    renames: AtomicU64,
    /// Faults that have fired, in firing order.
    fired: Mutex<Vec<FaultKind>>,
}

/// A fault-injecting [`Vfs`] wrapping [`StdVfs`].
///
/// Holds a plan of [`FaultAt`] entries; each operation increments its
/// class counter, and when a counter crosses a planned index the fault
/// fires (once). All other behaviour delegates to the real filesystem,
/// so partial effects — a short write's surviving prefix, a failed
/// rename's orphaned tmp file — land on disk exactly as a faulty disk
/// would leave them.
#[derive(Debug, Clone)]
pub struct FaultyVfs {
    plan: Vec<FaultAt>,
    state: Arc<FaultState>,
}

impl FaultyVfs {
    /// A faulty VFS with an explicit fault plan.
    pub fn with_plan(plan: &[FaultAt]) -> Self {
        Self {
            plan: plan.to_vec(),
            state: Arc::new(FaultState::default()),
        }
    }

    /// A deterministic single-fault plan derived from `seed`: the fault
    /// kind cycles through [`ALL_FAULT_KINDS`] and the operation index is
    /// drawn from `[0, max_index)` by splitmix64. Two runs with the same
    /// seed inject the identical fault at the identical point.
    pub fn seeded(seed: u64, max_index: u64) -> Self {
        let kind = ALL_FAULT_KINDS[(seed % ALL_FAULT_KINDS.len() as u64) as usize];
        let index = splitmix64(seed) % max_index.max(1);
        Self::with_plan(&[FaultAt { kind, index }])
    }

    /// The faults that actually fired so far, in order. A plan whose
    /// index was never reached fires nothing — callers (chaos trials)
    /// use this to tell a vacuous trial from an exercised one.
    pub fn fired(&self) -> Vec<FaultKind> {
        self.state.fired.lock().unwrap().clone()
    }

    /// Checks whether the next operation of `class` should fail, and if
    /// so records the firing and returns the fault kind.
    fn arm(&self, class: OpClass) -> Option<FaultKind> {
        let counter = match class {
            OpClass::Write => &self.state.writes,
            OpClass::Sync => &self.state.syncs,
            OpClass::Rename => &self.state.renames,
        };
        let index = counter.fetch_add(1, Ordering::SeqCst);
        let hit = self
            .plan
            .iter()
            .find(|f| f.kind.class() == class && f.index == index)?;
        self.state.fired.lock().unwrap().push(hit.kind);
        Some(hit.kind)
    }
}

/// Splitmix64: the standard 64-bit mixer (same constants as the seed
/// expander in `cs-core`).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A [`VfsFile`] that consults the shared fault plan on every write/sync.
#[derive(Debug)]
pub struct FaultyVfsFile {
    inner: Box<dyn VfsFile>,
    vfs: FaultyVfs,
}

impl VfsFile for FaultyVfsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.vfs.arm(OpClass::Write) {
            Some(FaultKind::ShortWrite) => {
                // Persist a prefix, then fail: a torn write.
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                Err(injected_error(FaultKind::ShortWrite))
            }
            Some(kind) => Err(injected_error(kind)),
            None => self.inner.write_all(buf),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.vfs.arm(OpClass::Sync) {
            Some(kind) => Err(injected_error(kind)),
            None => self.inner.sync_data(),
        }
    }
}

impl Vfs for FaultyVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultyVfsFile {
            inner: StdVfs.create(path)?,
            vfs: self.clone(),
        }))
    }

    fn open_append(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultyVfsFile {
            inner: StdVfs.open_append(path, valid_len)?,
            vfs: self.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        StdVfs.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm(OpClass::Rename) {
            Some(kind) => Err(injected_error(kind)),
            None => StdVfs.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        StdVfs.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        StdVfs.exists(path)
    }
}

/// Convenience: full path helper for tests that stage files under a
/// temp directory.
pub fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        temp_path(&format!("cs_obs_vfs_{name}_{}", std::process::id()))
    }

    #[test]
    fn std_vfs_round_trips() {
        let path = tmp("roundtrip");
        {
            let mut f = StdVfs.create(&path).unwrap();
            f.write_all(b"hello\n").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(StdVfs.read(&path).unwrap(), b"hello\n");
        assert!(StdVfs.exists(&path));
        let to = tmp("roundtrip2");
        StdVfs.rename(&path, &to).unwrap();
        assert!(!StdVfs.exists(&path));
        StdVfs.remove(&to).unwrap();
        assert!(!StdVfs.exists(&to));
    }

    #[test]
    fn open_append_truncates_and_appends() {
        let path = tmp("append");
        std::fs::write(&path, b"keep\ntorn-tai").unwrap();
        {
            let mut f = StdVfs.open_append(&path, 5).unwrap();
            f.write_all(b"more\n").unwrap();
        }
        assert_eq!(StdVfs.read(&path).unwrap(), b"keep\nmore\n");
        StdVfs.remove(&path).ok();
    }

    #[test]
    fn failed_write_fires_at_planned_index() {
        let path = tmp("failed_write");
        let vfs = FaultyVfs::with_plan(&[FaultAt {
            kind: FaultKind::FailedWrite,
            index: 1,
        }]);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"first\n").unwrap();
        let err = f.write_all(b"second\n").unwrap_err();
        assert_eq!(injected_kind(&err), Some(FaultKind::FailedWrite));
        // Later writes succeed again: single-shot fault.
        f.write_all(b"third\n").unwrap();
        assert_eq!(vfs.fired(), vec![FaultKind::FailedWrite]);
        assert_eq!(StdVfs.read(&path).unwrap(), b"first\nthird\n");
        StdVfs.remove(&path).ok();
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let path = tmp("short_write");
        let vfs = FaultyVfs::with_plan(&[FaultAt {
            kind: FaultKind::ShortWrite,
            index: 0,
        }]);
        let mut f = vfs.create(&path).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(injected_kind(&err), Some(FaultKind::ShortWrite));
        assert_eq!(StdVfs.read(&path).unwrap(), b"01234");
        StdVfs.remove(&path).ok();
    }

    #[test]
    fn fsync_error_fires_on_sync_not_write() {
        let path = tmp("fsync");
        let vfs = FaultyVfs::with_plan(&[FaultAt {
            kind: FaultKind::FsyncError,
            index: 0,
        }]);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"data\n").unwrap();
        let err = f.sync_data().unwrap_err();
        assert_eq!(injected_kind(&err), Some(FaultKind::FsyncError));
        StdVfs.remove(&path).ok();
    }

    #[test]
    fn rename_failure_orphans_the_source() {
        let from = tmp("rename_from");
        let to = tmp("rename_to");
        std::fs::write(&from, b"tmp").unwrap();
        let vfs = FaultyVfs::with_plan(&[FaultAt {
            kind: FaultKind::RenameFailure,
            index: 0,
        }]);
        let err = vfs.rename(&from, &to).unwrap_err();
        assert_eq!(injected_kind(&err), Some(FaultKind::RenameFailure));
        assert!(StdVfs.exists(&from), "failed rename leaves the tmp file");
        assert!(!StdVfs.exists(&to));
        StdVfs.remove(&from).ok();
    }

    #[test]
    fn enospc_is_distinguishable() {
        let path = tmp("enospc");
        let vfs = FaultyVfs::with_plan(&[FaultAt {
            kind: FaultKind::NoSpace,
            index: 0,
        }]);
        let mut f = vfs.create(&path).unwrap();
        let err = f.write_all(b"x").unwrap_err();
        assert_eq!(injected_kind(&err), Some(FaultKind::NoSpace));
        assert!(err.to_string().contains("no space left"));
        StdVfs.remove(&path).ok();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cycle_kinds() {
        for seed in 0..10u64 {
            let a = FaultyVfs::seeded(seed, 8);
            let b = FaultyVfs::seeded(seed, 8);
            assert_eq!(a.plan, b.plan);
        }
        let kinds: std::collections::BTreeSet<_> = (0..5u64)
            .map(|s| FaultyVfs::seeded(s, 8).plan[0].kind)
            .collect();
        assert_eq!(kinds.len(), 5, "five seeds cover all five fault kinds");
    }

    #[test]
    fn real_errors_are_not_reported_as_injected() {
        let err = io::Error::new(io::ErrorKind::NotFound, "no such file");
        assert_eq!(injected_kind(&err), None);
    }
}
