//! A minimal JSON parser, two entry points:
//!
//! * [`parse_object`] — **flat objects only**, exactly the shape the event
//!   stream emits: one object per line, string keys, scalar values
//!   (number, string, bool, null). Nested containers are rejected, which
//!   keeps the event-line fast path strict and simple.
//! * [`parse_json`] — full nested values ([`Json`]), used by the analyzer
//!   to read `BENCH.json` perf baselines. Same scalar grammar, plus
//!   arrays and objects.

use std::collections::BTreeMap;

/// A scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number (integers parse to the same `f64` they were printed from).
    Num(f64),
    /// A string (escapes `\"`, `\\`, `\n`, `\t`, `\r` decoded).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null` (this crate serializes non-finite floats as `null`).
    Null,
}

impl JsonValue {
    /// The value as a float: numbers verbatim, `null` as NaN, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A full JSON value, containers included (used for `BENCH.json`; event
/// lines stay on the strict flat [`parse_object`] path).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float (`null` reads as NaN, like the event parser).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') | Some(b'n') => {
                let rest = &self.bytes[self.pos..];
                for (lit, val) in [
                    (&b"true"[..], JsonValue::Bool(true)),
                    (&b"false"[..], JsonValue::Bool(false)),
                    (&b"null"[..], JsonValue::Null),
                ] {
                    if rest.starts_with(lit) {
                        self.pos += lit.len();
                        return Ok(val);
                    }
                }
                Err(format!("bad literal at byte {}", self.pos))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            Some(b'{') | Some(b'[') => Err("nested containers are not supported".into()),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > 64 {
            return Err("JSON nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut out = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    if out.insert(key.clone(), value).is_some() {
                        return Err(format!("duplicate key {key:?}"));
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(out));
                        }
                        other => return Err(format!("expected ',' or '}}', found {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                loop {
                    out.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(out));
                        }
                        other => return Err(format!("expected ',' or ']', found {other:?}")),
                    }
                }
            }
            _ => Ok(match self.parse_scalar()? {
                JsonValue::Num(v) => Json::Num(v),
                JsonValue::Str(s) => Json::Str(s),
                JsonValue::Bool(b) => Json::Bool(b),
                JsonValue::Null => Json::Null,
            }),
        }
    }
}

/// Parses one flat JSON object (`{"k": scalar, ...}`) into a key → value
/// map. Duplicate keys and trailing garbage are errors.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    cur.skip_ws();
    cur.expect(b'{')?;
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            cur.skip_ws();
            let key = cur.parse_string()?;
            cur.skip_ws();
            cur.expect(b':')?;
            let value = cur.parse_scalar()?;
            if out.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            cur.skip_ws();
            match cur.peek() {
                Some(b',') => cur.pos += 1,
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(format!("trailing garbage at byte {}", cur.pos));
    }
    Ok(out)
}

/// Parses one complete JSON value of any shape (nested objects/arrays
/// allowed). Trailing garbage is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut cur = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = cur.parse_value(0)?;
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(format!("trailing garbage at byte {}", cur.pos));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_json() {
        let j = parse_json(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null},"e":true}"#).unwrap();
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert!(j
            .get("c")
            .unwrap()
            .get("d")
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
        assert_eq!(j.get("missing"), None);
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse_json(" 3.5 ").unwrap(), Json::Num(3.5));
    }

    #[test]
    fn nested_parser_rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"{"a":1} x"#).is_err());
        assert!(parse_json(&("[".repeat(100) + &"]".repeat(100))).is_err()); // too deep
    }

    #[test]
    fn parses_flat_object() {
        let m = parse_object(r#"{"v":1,"t":12.5,"type":"bank","ok":true,"x":null}"#).unwrap();
        assert_eq!(m["v"].as_u64(), Some(1));
        assert_eq!(m["t"].as_f64(), Some(12.5));
        assert_eq!(m["type"].as_str(), Some("bank"));
        assert_eq!(m["ok"].as_bool(), Some(true));
        assert!(m["x"].as_f64().unwrap().is_nan());
    }

    #[test]
    fn parses_empty_and_escapes() {
        assert!(parse_object("{}").unwrap().is_empty());
        let m = parse_object(r#"{"s":"a\"b\\c\nd"}"#).unwrap();
        assert_eq!(m["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let m = parse_object(r#"{"a":-2.5,"b":1e-3,"c":1234567890}"#).unwrap();
        assert_eq!(m["a"].as_f64(), Some(-2.5));
        assert_eq!(m["b"].as_f64(), Some(1e-3));
        assert_eq!(m["c"].as_u64(), Some(1_234_567_890));
        assert_eq!(m["a"].as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":1"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_object(r#"{"a":[1,2]}"#).is_err());
        assert!(parse_object(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse_object(r#"{"a":tru}"#).is_err());
        assert!(parse_object(r#"not json"#).is_err());
    }

    #[test]
    fn round_trips_emitted_events() {
        use crate::event::{Event, EventKind};
        let e = Event {
            time: 435.8123456789,
            kind: EventKind::Dispatch {
                ws: 2,
                tasks: 17,
                work: 17.0,
            },
        };
        let m = parse_object(&e.to_jsonl()).unwrap();
        assert_eq!(m["t"].as_f64().unwrap().to_bits(), e.time.to_bits());
        assert_eq!(m["tasks"].as_u64(), Some(17));
    }
}
