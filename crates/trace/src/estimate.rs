//! Empirical life-function estimation and estimation-error metrics.
//!
//! The estimator is deliberately the paper's recipe: empirical survival from
//! the samples, "encapsulated by a well-behaved curve" — here the monotone
//! cubic smoothing of [`cs_life::Empirical`], which is continuous, monotone
//! and differentiable, hence admissible input for the guideline machinery.

use crate::{Result, TraceError};
use cs_life::{Empirical, LifeFunction};

/// Builds a smooth empirical life function from absence-duration samples.
///
/// `knots` controls smoothing granularity; 16–32 is a good default for
/// 10²–10⁵ samples.
pub fn estimate_life(samples: &[f64], knots: usize) -> Result<Empirical> {
    if samples.len() < 4 {
        return Err(TraceError::InvalidArgument("need at least 4 samples"));
    }
    Empirical::from_samples(samples, knots).map_err(TraceError::from)
}

/// Kolmogorov–Smirnov distance between two life functions over `[0, hi]`:
/// `sup_t |p(t) − q(t)|`, estimated on a uniform grid of `n` points.
pub fn ks_distance(p: &dyn LifeFunction, q: &dyn LifeFunction, hi: f64, n: usize) -> f64 {
    if n == 0 || !(hi > 0.0) {
        return f64::NAN;
    }
    let mut worst: f64 = 0.0;
    for i in 0..=n {
        let t = hi * i as f64 / n as f64;
        worst = worst.max((p.survival(t) - q.survival(t)).abs());
    }
    worst
}

/// KS distance of a life function against the raw samples' empirical
/// survival (step function): `sup_t |p(t) − Ŝ(t)|` evaluated at the jumps.
pub fn ks_distance_to_samples(p: &dyn LifeFunction, samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let mut worst: f64 = 0.0;
    for (i, &t) in sorted.iter().enumerate() {
        // Just before the jump, Ŝ = (n - i)/n; just after, (n - i - 1)/n.
        let before = (n - i as f64) / n;
        let after = (n - i as f64 - 1.0) / n;
        let pt = p.survival(t);
        worst = worst.max((pt - before).abs()).max((pt - after).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::sample_absences;
    use cs_life::{GeometricDecreasing, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_rejects_tiny_samples() {
        assert!(estimate_life(&[1.0, 2.0], 8).is_err());
    }

    #[test]
    fn estimate_converges_with_sample_size() {
        // KS error to the truth decreases as the trace grows (paper's
        // premise that trace data suffices).
        let truth = Uniform::new(12.0).unwrap();
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for (n, err) in [(100usize, &mut err_small), (20_000, &mut err_large)] {
            let mut rng = StdRng::seed_from_u64(21);
            let samples = sample_absences(&truth, n, &mut rng).unwrap();
            let est = estimate_life(&samples, 24).unwrap();
            *err = ks_distance(&truth, &est, 12.0, 400);
        }
        assert!(err_large < err_small, "KS {err_large} !< {err_small}");
        assert!(err_large < 0.02, "large-sample KS = {err_large}");
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let p = Uniform::new(5.0).unwrap();
        assert!(ks_distance(&p, &p, 5.0, 100) < 1e-15);
    }

    #[test]
    fn ks_distance_detects_difference() {
        let p = Uniform::new(5.0).unwrap();
        let q = Uniform::new(10.0).unwrap();
        // At t = 5: p = 0, q = 0.5.
        let d = ks_distance(&p, &q, 10.0, 200);
        assert!((d - 0.5).abs() < 0.01, "d = {d}");
    }

    #[test]
    fn ks_distance_invalid_inputs() {
        let p = Uniform::new(5.0).unwrap();
        assert!(ks_distance(&p, &p, 0.0, 100).is_nan());
        assert!(ks_distance(&p, &p, 5.0, 0).is_nan());
        assert!(ks_distance_to_samples(&p, &[]).is_nan());
    }

    #[test]
    fn ks_to_samples_small_for_true_model() {
        let truth = GeometricDecreasing::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let samples = sample_absences(&truth, 5000, &mut rng).unwrap();
        let d = ks_distance_to_samples(&truth, &samples);
        // For the true model, KS ~ 1/sqrt(n) ≈ 0.014.
        assert!(d < 0.05, "d = {d}");
        // A wrong model scores much worse.
        let wrong = Uniform::new(2.0).unwrap();
        assert!(ks_distance_to_samples(&wrong, &samples) > 2.0 * d);
    }
}
