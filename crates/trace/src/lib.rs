//! # cs-trace
//!
//! Owner-usage traces for borrowed workstations.
//!
//! The paper assumes the life function is known, possibly "garnered from
//! trace data that exposes B's owner's computer usage patterns" and then
//! "encapsulated by some well-behaved curve" (§1, §2.1). This crate builds
//! that pipeline end-to-end:
//!
//! 1. **Synthesize traces** ([`owner`]) — sample owner-absence durations
//!    either directly from a ground-truth life function (inverse transform)
//!    or from a structured diurnal session model.
//! 2. **Estimate** ([`estimate`]) — turn absence samples into a smooth
//!    empirical life function ([`cs_life::Empirical`]) and measure the
//!    estimation error (Kolmogorov–Smirnov distance).
//! 3. **Fit** ([`fit`]) — fit the paper's parametric families (uniform /
//!    polynomial / geometric / Weibull) to the samples and select the best
//!    by KS distance.
//!
//! `exp_trace_robust` uses this pipeline to quantify the paper's claim that
//! the guidelines "extend easily to situations wherein this knowledge is
//! approximate".

#![forbid(unsafe_code)]
// `!(a < b)`-style comparisons deliberately route NaN to the error path.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod estimate;
pub mod fit;
pub mod online;
pub mod owner;

/// Errors from trace synthesis and estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Invalid parameter (empty sample, nonpositive rate, …).
    InvalidArgument(&'static str),
    /// An underlying numeric routine failed.
    Numeric(cs_numeric::NumericError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TraceError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<cs_numeric::NumericError> for TraceError {
    fn from(e: cs_numeric::NumericError) -> Self {
        TraceError::Numeric(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TraceError::InvalidArgument("empty");
        assert!(e.to_string().contains("empty"));
        let e: TraceError = cs_numeric::NumericError::InvalidArgument("x").into();
        assert!(e.to_string().contains("numeric failure"));
    }
}
