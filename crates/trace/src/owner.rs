//! Owner-activity synthesis: where absence (cycle-stealing opportunity)
//! durations come from.
//!
//! Two levels of fidelity:
//!
//! * [`sample_absences`] — i.i.d. absences drawn from any ground-truth
//!   [`LifeFunction`] by inverse transform (`R = p⁻¹(U)`). This is the
//!   controlled setting for estimation experiments.
//! * [`DiurnalOwner`] — a structured session model: an owner alternates
//!   presence and absence through simulated work days, with short
//!   memoryless interruptions (coffee/meetings) and a long overnight
//!   absence. The resulting absence-duration mixture is the realistic
//!   "trace data" of the paper's §1 and deliberately belongs to *none* of
//!   the parametric families.

use crate::{Result, TraceError};
use cs_life::LifeFunction;
use rand::Rng;

/// Draws `n` i.i.d. owner-absence durations from ground truth `p` by
/// inverse-transform sampling: `P(R > t) = p(t)`, so `R = p⁻¹(U)`.
pub fn sample_absences(p: &dyn LifeFunction, n: usize, rng: &mut impl Rng) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(TraceError::InvalidArgument("need n >= 1 samples"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Avoid the endpoints: u = 0 maps to +inf for unbounded support.
        let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let r = p.inverse_survival(u);
        out.push(r.max(1e-9));
    }
    Ok(out)
}

/// One presence/absence event in a synthesized owner trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Start time of the interval, in hours from the trace origin.
    pub start: f64,
    /// Duration of the interval in hours.
    pub duration: f64,
    /// True when the owner is absent (the workstation is stealable).
    pub absent: bool,
}

/// A structured diurnal owner model.
///
/// Each simulated day: the owner arrives, works in presence bursts broken by
/// short memoryless absences (mean [`DiurnalOwner::short_break_mean`]) and
/// occasional longer meetings (mean [`DiurnalOwner::meeting_mean`], with
/// probability [`DiurnalOwner::meeting_prob`] per break), then leaves for an
/// overnight absence until the next arrival.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalOwner {
    /// Length of the working day in hours (e.g. 9.0).
    pub workday_hours: f64,
    /// Mean length of a presence burst between breaks, hours.
    pub presence_burst_mean: f64,
    /// Mean length of a short break, hours.
    pub short_break_mean: f64,
    /// Mean length of a meeting absence, hours.
    pub meeting_mean: f64,
    /// Probability that a break is a meeting rather than a short break.
    pub meeting_prob: f64,
    /// Hours from end of one workday to start of the next (overnight).
    pub overnight_hours: f64,
}

impl Default for DiurnalOwner {
    fn default() -> Self {
        Self {
            workday_hours: 9.0,
            presence_burst_mean: 0.75,
            short_break_mean: 0.25,
            meeting_mean: 1.5,
            meeting_prob: 0.2,
            overnight_hours: 15.0,
        }
    }
}

impl DiurnalOwner {
    fn validate(&self) -> Result<()> {
        let ok = self.workday_hours > 0.0
            && self.presence_burst_mean > 0.0
            && self.short_break_mean > 0.0
            && self.meeting_mean > 0.0
            && (0.0..=1.0).contains(&self.meeting_prob)
            && self.overnight_hours >= 0.0;
        if ok {
            Ok(())
        } else {
            Err(TraceError::InvalidArgument(
                "DiurnalOwner: invalid parameters",
            ))
        }
    }

    /// Simulates `days` of owner activity, returning the full event trace.
    pub fn simulate(&self, days: usize, rng: &mut impl Rng) -> Result<Vec<TraceEvent>> {
        self.validate()?;
        if days == 0 {
            return Err(TraceError::InvalidArgument("need days >= 1"));
        }
        // Inverse-transform exponential sampler.
        fn exp(mean: f64, rng: &mut impl Rng) -> f64 {
            let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
            -mean * u.ln()
        }
        let mut events = Vec::new();
        let mut clock = 0.0f64;
        for _ in 0..days {
            let day_end = clock + self.workday_hours;
            // Work through the day: presence burst, then a break.
            while clock < day_end {
                let burst = exp(self.presence_burst_mean, rng).min(day_end - clock);
                if burst > 0.0 {
                    events.push(TraceEvent {
                        start: clock,
                        duration: burst,
                        absent: false,
                    });
                    clock += burst;
                }
                if clock >= day_end {
                    break;
                }
                let is_meeting = rng.random::<f64>() < self.meeting_prob;
                let mean = if is_meeting {
                    self.meeting_mean
                } else {
                    self.short_break_mean
                };
                let gap = exp(mean, rng).min(day_end - clock).max(1e-6);
                events.push(TraceEvent {
                    start: clock,
                    duration: gap,
                    absent: true,
                });
                clock += gap;
            }
            // Overnight absence.
            if self.overnight_hours > 0.0 {
                events.push(TraceEvent {
                    start: clock,
                    duration: self.overnight_hours,
                    absent: true,
                });
                clock += self.overnight_hours;
            }
        }
        Ok(events)
    }

    /// Simulates and extracts only the absence durations — the samples a
    /// cycle-stealer would mine from the trace.
    pub fn absence_durations(&self, days: usize, rng: &mut impl Rng) -> Result<Vec<f64>> {
        Ok(self
            .simulate(days, rng)?
            .into_iter()
            .filter(|e| e.absent)
            .map(|e| e.duration)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::{GeometricDecreasing, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_absences_validates() {
        let p = Uniform::new(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_absences(&p, 0, &mut rng).is_err());
        let s = sample_absences(&p, 100, &mut rng).unwrap();
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&r| r > 0.0 && r <= 10.0));
    }

    #[test]
    fn sample_mean_matches_theory_uniform() {
        let p = Uniform::new(20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_absences(&p, 20_000, &mut rng).unwrap();
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn sample_mean_matches_theory_geometric() {
        let p = GeometricDecreasing::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_absences(&p, 20_000, &mut rng).unwrap();
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let theory = 1.0 / 2.0f64.ln();
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "mean = {mean}, theory = {theory}"
        );
    }

    #[test]
    fn diurnal_validates() {
        let mut rng = StdRng::seed_from_u64(4);
        let bad = DiurnalOwner {
            workday_hours: 0.0,
            ..Default::default()
        };
        assert!(bad.simulate(1, &mut rng).is_err());
        assert!(DiurnalOwner::default().simulate(0, &mut rng).is_err());
    }

    #[test]
    fn diurnal_trace_is_contiguous_and_alternating_in_time() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = DiurnalOwner::default().simulate(5, &mut rng).unwrap();
        assert!(!events.is_empty());
        let mut clock = 0.0;
        for e in &events {
            assert!(
                (e.start - clock).abs() < 1e-9,
                "gap in trace at {}",
                e.start
            );
            assert!(e.duration > 0.0);
            clock = e.start + e.duration;
        }
    }

    #[test]
    fn diurnal_absences_include_overnights() {
        let mut rng = StdRng::seed_from_u64(6);
        let owner = DiurnalOwner::default();
        let absences = owner.absence_durations(10, &mut rng).unwrap();
        // Exactly 10 overnight absences of 15h each are present.
        let overnights = absences
            .iter()
            .filter(|&&d| (d - 15.0).abs() < 1e-9)
            .count();
        assert_eq!(overnights, 10);
        // And plenty of short breaks.
        assert!(absences.len() > 20);
    }

    #[test]
    fn diurnal_deterministic_by_seed() {
        let owner = DiurnalOwner::default();
        let a = owner
            .absence_durations(3, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = owner
            .absence_durations(3, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }
}
