//! Online life-function estimation across episodes.
//!
//! The paper assumes the life function is known, "garnered possibly from
//! trace data". Operationally that knowledge *accumulates*: every finished
//! episode reveals one reclamation time. [`OnlineEstimator`] maintains the
//! growing sample and exposes the current best life-function estimate —
//! either the smoothed empirical curve or the best parametric fit — so a
//! scheduler can re-plan between episodes. The `exp_online` experiment
//! measures the regret of this learn-while-stealing loop against the
//! oracle that knows `p` exactly.

use crate::estimate::estimate_life;
use crate::fit::{fit_best, FitCandidate};
use crate::{Result, TraceError};
use cs_life::{ArcLife, Empirical};
use std::sync::Arc;

/// Which estimator the scheduler should consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Monotone-cubic smoothed empirical survival (assumption-free).
    Empirical,
    /// Best parametric family by KS distance (lower variance, can be
    /// biased if the truth is outside every family).
    BestFit,
}

/// Accumulates observed reclamation times and produces life-function
/// estimates on demand.
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    observations: Vec<f64>,
    knots: usize,
    kind: EstimatorKind,
}

impl OnlineEstimator {
    /// Creates an empty estimator. `knots` controls empirical smoothing.
    pub fn new(kind: EstimatorKind, knots: usize) -> Self {
        Self {
            observations: Vec::new(),
            knots,
            kind,
        }
    }

    /// Records one observed reclamation time (must be positive and finite).
    pub fn observe(&mut self, reclaim_time: f64) -> Result<()> {
        if !(reclaim_time.is_finite() && reclaim_time > 0.0) {
            return Err(TraceError::InvalidArgument("reclaim time must be positive"));
        }
        self.observations.push(reclaim_time);
        Ok(())
    }

    /// Number of episodes observed so far.
    pub fn count(&self) -> usize {
        self.observations.len()
    }

    /// The raw observations.
    pub fn observations(&self) -> &[f64] {
        &self.observations
    }

    /// Minimum observations before an estimate is available.
    pub const MIN_OBSERVATIONS: usize = 8;

    /// The current estimate, or `None` until enough episodes have been
    /// observed ([`Self::MIN_OBSERVATIONS`]).
    pub fn current_life(&self) -> Option<ArcLife> {
        if self.observations.len() < Self::MIN_OBSERVATIONS {
            return None;
        }
        match self.kind {
            EstimatorKind::Empirical => {
                let est: Empirical = estimate_life(&self.observations, self.knots).ok()?;
                Some(Arc::new(est))
            }
            EstimatorKind::BestFit => {
                let best: FitCandidate = fit_best(&self.observations).ok()?;
                Some(best.life)
            }
        }
    }

    /// Label of the currently-selected model (for reports).
    pub fn describe(&self) -> String {
        match self.kind {
            EstimatorKind::Empirical => {
                format!(
                    "empirical({} obs, {} knots)",
                    self.observations.len(),
                    self.knots
                )
            }
            EstimatorKind::BestFit => match fit_best(&self.observations) {
                Ok(best) => format!("best-fit {} ({} obs)", best.family, self.observations.len()),
                Err(_) => format!("best-fit (insufficient: {} obs)", self.observations.len()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::sample_absences;
    use cs_life::{LifeFunction, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn observe_validates() {
        let mut est = OnlineEstimator::new(EstimatorKind::Empirical, 16);
        assert!(est.observe(-1.0).is_err());
        assert!(est.observe(f64::NAN).is_err());
        assert!(est.observe(0.0).is_err());
        assert!(est.observe(3.5).is_ok());
        assert_eq!(est.count(), 1);
        assert_eq!(est.observations(), &[3.5]);
    }

    #[test]
    fn no_estimate_until_minimum() {
        let mut est = OnlineEstimator::new(EstimatorKind::Empirical, 16);
        for i in 0..OnlineEstimator::MIN_OBSERVATIONS - 1 {
            est.observe(1.0 + i as f64).unwrap();
            assert!(
                est.current_life().is_none(),
                "estimate appeared at {}",
                est.count()
            );
        }
        est.observe(10.0).unwrap();
        assert!(est.current_life().is_some());
    }

    #[test]
    fn empirical_estimate_converges() {
        let truth = Uniform::new(20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sample_absences(&truth, 4000, &mut rng).unwrap();
        let mut est = OnlineEstimator::new(EstimatorKind::Empirical, 24);
        let mut err_at_50 = f64::NAN;
        for (i, &r) in samples.iter().enumerate() {
            est.observe(r).unwrap();
            if i + 1 == 50 {
                let life = est.current_life().unwrap();
                err_at_50 = (life.survival(10.0) - 0.5).abs();
            }
        }
        let life = est.current_life().unwrap();
        let err_at_4000 = (life.survival(10.0) - 0.5).abs();
        assert!(err_at_4000 < err_at_50, "{err_at_4000} !< {err_at_50}");
        assert!(err_at_4000 < 0.03, "final error {err_at_4000}");
    }

    #[test]
    fn best_fit_selects_uniform_for_uniform_data() {
        let truth = Uniform::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut est = OnlineEstimator::new(EstimatorKind::BestFit, 16);
        for r in sample_absences(&truth, 2000, &mut rng).unwrap() {
            est.observe(r).unwrap();
        }
        let life = est.current_life().unwrap();
        // Fitted lifespan close to the truth.
        assert!(life
            .lifespan()
            .map(|l| (l - 12.0).abs() < 0.5)
            .unwrap_or(false));
        assert!(est.describe().contains("uniform"));
    }

    #[test]
    fn describe_before_estimates() {
        let est = OnlineEstimator::new(EstimatorKind::BestFit, 16);
        assert!(est.describe().contains("insufficient"));
        let est = OnlineEstimator::new(EstimatorKind::Empirical, 16);
        assert!(est.describe().contains("0 obs"));
    }
}
