//! Parametric life-function fitting: project absence samples onto the
//! paper's families and pick the best by Kolmogorov–Smirnov distance.
//!
//! Estimators (all closed-form or single regressions — deliberately the
//! kind of lightweight fitting one would run on live trace data):
//!
//! * geometric `a^{−t}`: constant hazard ⇒ MLE `ln a = 1/mean`;
//! * uniform `1 − t/L`: `L̂ = max·(n+1)/n` (bias-corrected extreme);
//! * polynomial `1 − (t/L)^d`: moment match `E[R] = L·d/(d+1)` at each `d`;
//! * Weibull: regress `ln(−ln Ŝ(t)) = k·ln t − k·ln λ` on interior sample
//!   quantiles.

use crate::estimate::ks_distance_to_samples;
use crate::{Result, TraceError};
use cs_life::{ArcLife, GeometricDecreasing, Polynomial, Uniform, Weibull};
use cs_numeric::regress;
use std::sync::Arc;

fn check_samples(samples: &[f64]) -> Result<()> {
    if samples.len() < 8 {
        return Err(TraceError::InvalidArgument(
            "need at least 8 samples to fit",
        ));
    }
    if samples.iter().any(|s| !s.is_finite() || *s <= 0.0) {
        return Err(TraceError::InvalidArgument(
            "samples must be positive and finite",
        ));
    }
    Ok(())
}

/// MLE fit of the geometric-decreasing family: `ln a = 1/mean(R)`.
pub fn fit_geometric(samples: &[f64]) -> Result<GeometricDecreasing> {
    check_samples(samples)?;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    GeometricDecreasing::new((1.0 / mean).exp()).map_err(TraceError::from)
}

/// Fit of the uniform-risk family: bias-corrected maximum
/// `L̂ = max·(n+1)/n`.
pub fn fit_uniform(samples: &[f64]) -> Result<Uniform> {
    check_samples(samples)?;
    let max = samples.iter().cloned().fold(f64::MIN, f64::max);
    let n = samples.len() as f64;
    Uniform::new(max * (n + 1.0) / n).map_err(TraceError::from)
}

/// Moment fit of the polynomial family at fixed degree `d`:
/// `E[R] = L·d/(d+1)` ⇒ `L̂ = mean·(d+1)/d`, floored at the sample maximum
/// (the survival must cover every observation).
pub fn fit_polynomial(samples: &[f64], d: u32) -> Result<Polynomial> {
    check_samples(samples)?;
    if d == 0 {
        return Err(TraceError::InvalidArgument("degree must be >= 1"));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let max = samples.iter().cloned().fold(f64::MIN, f64::max);
    let l = (mean * (f64::from(d) + 1.0) / f64::from(d)).max(max * 1.000001);
    Polynomial::new(d, l).map_err(TraceError::from)
}

/// Weibull fit by regression on the linearized survival:
/// `ln(−ln S(t)) = k·ln t − k·ln λ`, using interior order statistics.
pub fn fit_weibull(samples: &[f64]) -> Result<Weibull> {
    check_samples(samples)?;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for (i, &t) in sorted.iter().enumerate() {
        // Median-rank survival estimate, avoiding 0 and 1.
        let s = 1.0 - (i as f64 + 0.7) / (n as f64 + 0.4);
        if !(1e-6..=1.0 - 1e-6).contains(&s) || t <= 0.0 {
            continue;
        }
        xs.push(t.ln());
        ys.push((-s.ln()).ln());
    }
    let line = regress::fit_line(&xs, &ys)?;
    let k = line.slope;
    if !(k.is_finite() && k > 0.0) {
        return Err(TraceError::InvalidArgument(
            "weibull fit produced nonpositive shape",
        ));
    }
    let lambda = (-line.intercept / k).exp();
    Weibull::new(k, lambda).map_err(TraceError::from)
}

/// A fitted candidate with its goodness of fit.
#[derive(Clone)]
pub struct FitCandidate {
    /// Short family label (`"geometric"`, `"uniform"`, `"poly-d2"`, …).
    pub family: String,
    /// The fitted life function.
    pub life: ArcLife,
    /// KS distance of the fit to the raw samples.
    pub ks: f64,
}

impl std::fmt::Debug for FitCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitCandidate")
            .field("family", &self.family)
            .field("ks", &self.ks)
            .finish()
    }
}

/// Fits every family and returns the candidates sorted by ascending KS
/// distance (best first). Families whose fit fails are skipped.
pub fn fit_all(samples: &[f64]) -> Result<Vec<FitCandidate>> {
    check_samples(samples)?;
    let mut out: Vec<FitCandidate> = Vec::new();
    if let Ok(g) = fit_geometric(samples) {
        let ks = ks_distance_to_samples(&g, samples);
        out.push(FitCandidate {
            family: "geometric".into(),
            life: Arc::new(g),
            ks,
        });
    }
    if let Ok(u) = fit_uniform(samples) {
        let ks = ks_distance_to_samples(&u, samples);
        out.push(FitCandidate {
            family: "uniform".into(),
            life: Arc::new(u),
            ks,
        });
    }
    for d in 2..=4u32 {
        if let Ok(p) = fit_polynomial(samples, d) {
            let ks = ks_distance_to_samples(&p, samples);
            out.push(FitCandidate {
                family: format!("poly-d{d}"),
                life: Arc::new(p),
                ks,
            });
        }
    }
    if let Ok(w) = fit_weibull(samples) {
        let ks = ks_distance_to_samples(&w, samples);
        out.push(FitCandidate {
            family: "weibull".into(),
            life: Arc::new(w),
            ks,
        });
    }
    out.sort_by(|a, b| a.ks.partial_cmp(&b.ks).unwrap());
    if out.is_empty() {
        return Err(TraceError::InvalidArgument("no family could be fitted"));
    }
    Ok(out)
}

/// Fits every family and returns the best candidate.
/// # Examples
///
/// ```
/// use cs_trace::fit::fit_best;
/// // Durations drawn evenly over (0, 10]: the uniform family wins.
/// let samples: Vec<f64> = (1..=200).map(|i| i as f64 / 20.0).collect();
/// let best = fit_best(&samples).unwrap();
/// assert_eq!(best.family, "uniform");
/// ```
pub fn fit_best(samples: &[f64]) -> Result<FitCandidate> {
    Ok(fit_all(samples)?.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::sample_absences;
    use cs_life::LifeFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples_from(p: &dyn LifeFunction, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        sample_absences(p, n, &mut rng).unwrap()
    }

    #[test]
    fn guards() {
        assert!(fit_geometric(&[1.0; 4]).is_err());
        assert!(fit_uniform(&[-1.0; 10]).is_err());
        assert!(fit_polynomial(&[1.0; 10], 0).is_err());
        assert!(fit_all(&[1.0; 3]).is_err());
    }

    #[test]
    fn geometric_fit_recovers_rate() {
        let truth = GeometricDecreasing::new(3.0).unwrap();
        let s = samples_from(&truth, 20_000, 1);
        let fit = fit_geometric(&s).unwrap();
        assert!((fit.a() - 3.0).abs() / 3.0 < 0.05, "a = {}", fit.a());
    }

    #[test]
    fn uniform_fit_recovers_lifespan() {
        let truth = Uniform::new(25.0).unwrap();
        let s = samples_from(&truth, 5000, 2);
        let fit = fit_uniform(&s).unwrap();
        assert!((fit.l() - 25.0).abs() / 25.0 < 0.02, "L = {}", fit.l());
    }

    #[test]
    fn polynomial_fit_recovers_lifespan() {
        let truth = Polynomial::new(3, 40.0).unwrap();
        let s = samples_from(&truth, 10_000, 3);
        let fit = fit_polynomial(&s, 3).unwrap();
        assert!((fit.l() - 40.0).abs() / 40.0 < 0.05, "L = {}", fit.l());
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let truth = Weibull::new(1.6, 5.0).unwrap();
        let s = samples_from(&truth, 20_000, 4);
        let fit = fit_weibull(&s).unwrap();
        assert!((fit.k() - 1.6).abs() < 0.15, "k = {}", fit.k());
        assert!(
            (fit.lambda() - 5.0).abs() / 5.0 < 0.1,
            "λ = {}",
            fit.lambda()
        );
    }

    #[test]
    fn model_selection_picks_true_family() {
        // Geometric data → geometric (or the k≈1 Weibull, which nests it)
        // must win.
        let truth = GeometricDecreasing::new(2.0).unwrap();
        let s = samples_from(&truth, 10_000, 5);
        let best = fit_best(&s).unwrap();
        assert!(
            best.family == "geometric" || best.family == "weibull",
            "best = {:?}",
            best
        );
        assert!(best.ks < 0.05);

        // Uniform data → uniform must win.
        let truth = Uniform::new(8.0).unwrap();
        let s = samples_from(&truth, 10_000, 6);
        let best = fit_best(&s).unwrap();
        assert_eq!(best.family, "uniform", "best = {best:?}");
    }

    #[test]
    fn fit_all_sorted_by_ks() {
        let truth = Uniform::new(8.0).unwrap();
        let s = samples_from(&truth, 2000, 7);
        let all = fit_all(&s).unwrap();
        assert!(all.len() >= 4);
        for w in all.windows(2) {
            assert!(w[0].ks <= w[1].ks);
        }
    }

    #[test]
    fn debug_format_contains_family() {
        let truth = Uniform::new(8.0).unwrap();
        let s = samples_from(&truth, 500, 8);
        let best = fit_best(&s).unwrap();
        assert!(format!("{best:?}").contains("family"));
    }
}
