//! # cs-apps
//!
//! Host package for the repository-level `examples/` and `tests/`
//! directories (Cargo targets must belong to a package), plus the small
//! report-formatting utilities the examples and the `cs-bench` experiment
//! binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A minimal fixed-width text table for experiment reports.
///
/// ```
/// let mut t = cs_apps::Table::new(&["L", "c", "t0", "E/E*"]);
/// t.row(&["1000".into(), "5".into(), "97.5".into(), "0.999".into()]);
/// let text = t.render();
/// assert!(text.contains("t0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while r.len() < self.headers.len() {
            r.push(String::new());
        }
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        if ncol == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate().take(ncol) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with `digits` significant-looking decimals, trimming
/// noise for table cells.
pub fn fmt(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{x:.digits$}")
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Formats an optional statistic (e.g. [`cs_sim::Summary::ci95`]), rendering
/// `None` — an undefined value, like a CI over fewer than two samples — as
/// `"n/a"` so tables never show `NaN`.
pub fn fmt_opt(x: Option<f64>, digits: usize) -> String {
    match x {
        Some(v) => fmt(v, digits),
        None => "n/a".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_truncates_long_rows() {
        let mut t = Table::new(&["x"]);
        t.row(&["1".into(), "overflow".into()]);
        assert!(!t.render().contains("overflow"));
    }

    #[test]
    fn fmt_and_pct_handle_nan() {
        assert_eq!(fmt(f64::NAN, 3), "-");
        assert_eq!(pct(f64::NAN), "-");
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn fmt_opt_renders_undefined_as_na() {
        assert_eq!(fmt_opt(None, 2), "n/a");
        assert_eq!(fmt_opt(Some(1.5), 2), "1.50");
    }
}
