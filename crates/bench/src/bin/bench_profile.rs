//! `bench_profile` — writes the machine-readable perf baseline
//! `BENCH.json` (see `cs_bench::profile`). Usage:
//!
//! ```text
//! bench_profile [--quick] [--out <path>]    # default --out BENCH.json
//! ```
//!
//! Compare two baselines with `cyclesteal obs diff --bench old new`.

use cs_bench::profile::{render_bench_json, run_profile, ProfileOptions};
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

fn git(args: &[&str]) -> Option<String> {
    std::process::Command::new("git")
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
}

/// `git rev-parse --short HEAD` — suffixed `-dirty` when the working tree
/// has uncommitted changes, so a baseline can never silently claim to
/// describe a commit it was not actually built from. `"unknown"` outside a
/// git checkout.
fn commit_id() -> String {
    let Some(head) = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    if dirty {
        format!("{head}-dirty")
    } else {
        head
    }
}

/// UTC `YYYY-MM-DD` from the system clock (civil-from-days, Gregorian).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let mut opts = ProfileOptions::default();
    let mut out_path = "BENCH.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?} (expected [--quick] [--out <path>])");
                return ExitCode::FAILURE;
            }
        }
    }
    let results = match run_profile(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in &results {
        println!(
            "{:<22} {:>12.3} ms  {:>14} ev/s  {:>12} trials/s{}",
            r.id,
            r.wall_ns as f64 / 1e6,
            r.events_per_sec
                .map_or_else(|| "-".to_string(), |v| format!("{v:.0}")),
            r.mc_trials_per_sec
                .map_or_else(|| "-".to_string(), |v| format!("{v:.0}")),
            match (r.speedup, r.efficiency) {
                (Some(s), Some(e)) => format!("  {s:>5.2}x speedup  {:>3.0}% eff", e * 100.0),
                _ => String::new(),
            },
        );
    }
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = render_bench_json(&results, &commit_id(), &today_utc(), opts.quick, cpus);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("baseline written -> {out_path}");
    ExitCode::SUCCESS
}
