//! EXP-DISC — the §6 "discrete analogue" question, measured two ways:
//!
//! 1. **Task quantization**: how much of the fluid schedule's capacity is
//!    lost when periods must be filled with indivisible tasks of grain `g`
//!    (loss ≤ one grain per period; efficiency → 1 as `g → 0`).
//! 2. **Grid discretization**: how fast the DP-on-a-grid optimum converges
//!    to the continuous optimum as the grid refines — evidence that the
//!    continuous guidelines *do* yield valuable discrete analogues.

use cs_apps::{fmt, pct, Table};
use cs_core::{dp, optimal, search};
use cs_life::Uniform;
use cs_tasks::quantization::fluid_vs_packed;
use cs_tasks::workloads;

fn main() {
    println!("EXP-DISC: discrete analogues of the continuous model (paper §6)\n");

    // 1. Task-grain sweep.
    let l = 1000.0;
    let c = 5.0;
    let p = Uniform::new(l).unwrap();
    let plan = search::best_guideline_schedule(&p, c).expect("plan");
    println!(
        "Task quantization on the uniform guideline schedule ({} periods, fluid capacity {:.0}):",
        plan.schedule.len(),
        plan.schedule.max_work(c)
    );
    let mut t = Table::new(&["grain", "packed work", "efficiency", "bound 1-g*m/W"]);
    for grain in [0.1, 0.5, 2.0, 8.0, 32.0] {
        let mut bag = workloads::uniform(200_000, grain).expect("bag");
        let r = fluid_vs_packed(&plan.schedule, &mut bag, c);
        let m = plan.schedule.len() as f64;
        let bound = 1.0 - grain * m / r.fluid_work;
        t.row(&[
            fmt(grain, 1),
            fmt(r.packed_work, 1),
            pct(r.efficiency),
            pct(bound.max(0.0)),
        ]);
    }
    println!("{}", t.render());
    println!("Shape: efficiency >= 1 - (one grain per period)/capacity, approaching 100% for");
    println!("fine grains — the fluid model is the correct limit.\n");

    // 2. DP grid refinement.
    println!("Grid discretization: DP optimum vs continuous optimum (uniform, L = {l}, c = {c}):");
    let e_star = optimal::uniform_optimal(l, c)
        .expect("optimal")
        .expected_work(&p, c);
    let mut t2 = Table::new(&["grid cells", "E (DP grid)", "gap vs continuous"]);
    for n in [100usize, 400, 1600, 6400] {
        let sol = dp::solve_auto(&p, c, n).expect("dp");
        t2.row(&[
            n.to_string(),
            fmt(sol.expected_work, 4),
            format!("{:.3}%", 100.0 * (e_star - sol.expected_work) / e_star),
        ]);
    }
    println!("{}", t2.render());
    println!("Shape: the discrete optimum converges to the continuous one from below as the");
    println!("grid refines; with ~10 grid cells per period the gap is already sub-percent.");
}
