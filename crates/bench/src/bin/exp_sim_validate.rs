//! EXP-SIM — model validation: the Monte-Carlo mean episode work converges
//! to the analytic `E(S; p)` of eq (2.1), for every family and for both the
//! serial and the parallel simulator.

use cs_apps::{fmt, Table};
use cs_bench::canonical_scenarios;
use cs_core::search;
use cs_sim::{simulate_expected_work, simulate_expected_work_parallel};

fn main() {
    println!("EXP-SIM: Monte-Carlo validation of E(S;p) — eq (2.1)\n");
    let mut t = Table::new(&[
        "scenario",
        "trials",
        "analytic E",
        "MC mean",
        "95% CI",
        "|err|/CI",
        "interrupted",
    ]);
    for s in canonical_scenarios() {
        let p = s.life.as_ref();
        let plan = search::best_guideline_schedule(p, s.c).expect("plan");
        let analytic = plan.expected_work;
        for trials in [1_000u64, 10_000, 100_000] {
            let mc = simulate_expected_work(&plan.schedule, p, s.c, trials, 7_777);
            let ci = mc.work.ci95_half_width();
            t.row(&[
                s.name.clone(),
                trials.to_string(),
                fmt(analytic, 4),
                fmt(mc.work.mean(), 4),
                fmt(ci, 4),
                fmt((mc.work.mean() - analytic).abs() / ci.max(1e-12), 2),
                fmt(mc.interrupted_fraction, 3),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Shape: |err| stays within ~1-2 CI half-widths and the CI shrinks like 1/sqrt(n).\n");

    // Parallel determinism and agreement.
    let scenarios = canonical_scenarios();
    let s = &scenarios[0];
    let plan = search::best_guideline_schedule(s.life.as_ref(), s.c).expect("plan");
    let a = simulate_expected_work_parallel(&plan.schedule, s.life.as_ref(), s.c, 200_000, 99, 8);
    let b = simulate_expected_work_parallel(&plan.schedule, s.life.as_ref(), s.c, 200_000, 99, 8);
    println!(
        "Parallel simulator ({}, 8 threads, 200k trials): mean {} (run-to-run identical: {})",
        s.name,
        fmt(a.work.mean(), 4),
        a.work.mean() == b.work.mean()
    );
    println!(
        "  analytic {} — inside CI: {}",
        fmt(plan.expected_work, 4),
        (a.work.mean() - plan.expected_work).abs() <= a.work.ci95_half_width()
    );
}
