//! Thin shim: runs the registered [`cs_bench::experiments::exp_chaos`]
//! experiment through the shared harness. All logic lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    cs_bench::harness::main_for(&cs_bench::experiments::exp_chaos::Exp)
}
