//! # cs-bench
//!
//! Experiment harness for the reproduction. Each `exp_*` binary regenerates
//! one comparison or claim from the paper (see DESIGN.md §5 for the index
//! and EXPERIMENTS.md for paper-vs-measured); the Criterion benches time
//! the computational kernels behind each experiment group.
//!
//! This library hosts the shared scenario definitions so binaries and
//! benches stay in lockstep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cs_life::{ArcLife, GeometricDecreasing, GeometricIncreasing, Polynomial, Uniform};
use std::sync::Arc;

/// The standard parameter grid the Section-4 experiments sweep.
pub mod grids {
    /// Lifespans for the polynomial/uniform sweeps.
    pub const LIFESPANS: [f64; 4] = [100.0, 1_000.0, 10_000.0, 100_000.0];
    /// Overheads for the polynomial/uniform sweeps.
    pub const OVERHEADS: [f64; 3] = [1.0, 5.0, 20.0];
    /// Degrees for the §4.1 polynomial family.
    pub const DEGREES: [u32; 4] = [1, 2, 3, 4];
    /// Risk factors for the §4.2 geometric family.
    pub const RISK_FACTORS: [f64; 4] = [2.0, std::f64::consts::E, 4.0, 10.0];
    /// Lifespans for the §4.3 geometric-increasing family.
    pub const GEO_INC_LIFESPANS: [f64; 4] = [16.0, 64.0, 256.0, 1024.0];
}

/// A named scenario: life function + overhead, as used across experiments.
pub struct Scenario {
    /// Short identifier for tables.
    pub name: String,
    /// The life function.
    pub life: ArcLife,
    /// The communication overhead.
    pub c: f64,
}

/// The canonical trio of \[3\] scenarios (plus a concave polynomial), at
/// representative parameters — used by the §5/§6 experiments.
pub fn canonical_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "uniform(L=1000)".into(),
            life: Arc::new(Uniform::new(1000.0).expect("uniform")),
            c: 5.0,
        },
        Scenario {
            name: "poly(d=3,L=1000)".into(),
            life: Arc::new(Polynomial::new(3, 1000.0).expect("polynomial")),
            c: 5.0,
        },
        Scenario {
            name: "geo-dec(a=2)".into(),
            life: Arc::new(GeometricDecreasing::new(2.0).expect("geometric")),
            c: 1.0,
        },
        Scenario {
            name: "geo-inc(L=64)".into(),
            life: Arc::new(GeometricIncreasing::new(64.0).expect("geo-inc")),
            c: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_are_valid() {
        let scenarios = canonical_scenarios();
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert_eq!(s.life.survival(0.0), 1.0);
            assert!(s.c > 0.0);
            cs_life::validate::check(s.life.as_ref()).unwrap();
        }
    }
}
