//! # cs-bench
//!
//! Experiment harness for the reproduction. Every experiment (one
//! comparison or claim from the paper; see DESIGN.md §5 for the index and
//! EXPERIMENTS.md for paper-vs-measured) lives in [`experiments`] as an
//! implementation of [`harness::Experiment`], registered in
//! [`experiments::all`]. The `exp_*` binaries are thin launchers over the
//! registry, and `cyclesteal exp` runs the same registrations; the
//! Criterion benches time the computational kernels behind each experiment
//! group.
//!
//! Scenario definitions (life-function specs, policies, the canonical
//! named scenarios, parameter grids) come from `cs-scenarios`, so
//! binaries, benches and the CLI stay in lockstep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod profile;

pub use cs_scenarios::{grids, Scenario, ScenarioSpec};

/// The canonical trio of \[3\] scenarios (plus a concave polynomial), at
/// representative parameters — used by the §5/§6 experiments. Realized
/// from the `cs-scenarios` registry.
pub fn canonical_scenarios() -> Vec<Scenario> {
    cs_scenarios::registry::canonical_scenarios()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_are_valid() {
        let scenarios = canonical_scenarios();
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert_eq!(s.life.survival(0.0), 1.0);
            assert!(s.c > 0.0);
            cs_life::validate::check(s.life.as_ref()).unwrap();
        }
    }
}
