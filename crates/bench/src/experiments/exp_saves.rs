//! EXP-SAVES — the paper's Remark: adapting the cycle-stealing machinery to
//! scheduling saves in fault-prone computations (ref \[7\]).
//!
//! Compares three save intervals under Poisson faults:
//! * the exact makespan-optimal interval,
//! * Young's classical approximation `sqrt(2c/λ)`,
//! * the transplanted cycle-stealing guideline (the optimal period of the
//!   memoryless scenario `p = e^{−λt}`),
//!
//! and validates expected makespans by simulation.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, pct, Table};
use cs_saves::{
    expected_interval_time, guideline_interval, optimal_interval, optimal_schedule,
    simulate_makespan, uniform_makespan, young_interval,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registration for `exp_saves`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_saves"
    }

    fn paper(&self) -> &'static str {
        "Remark / [7]"
    }

    fn title(&self) -> &'static str {
        "Checkpoint intervals under Poisson faults via the cycle-stealing guideline"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-SAVES: checkpoint intervals under Poisson faults (paper Remark / [7])\n"
        );
        let mut t = Table::new(&[
            "c",
            "lambda",
            "s* exact",
            "young sqrt(2c/l)",
            "cyc-steal guideline",
            "young penalty",
            "guideline penalty",
        ]);
        for &(c, lambda) in &[
            (0.01f64, 0.001f64),
            (0.1, 0.01),
            (0.5, 0.05),
            (1.0, 0.1),
            (1.0, 0.5),
        ] {
            let s_opt = optimal_interval(c, lambda).expect("optimal");
            let s_young = young_interval(c, lambda);
            let s_guide = guideline_interval(c, lambda).expect("guideline");
            let rate = |s: f64| expected_interval_time(s, c, lambda) / s;
            t.row(&[
                fmt(c, 2),
                fmt(lambda, 3),
                fmt(s_opt, 3),
                fmt(s_young, 3),
                fmt(s_guide, 3),
                pct(rate(s_young) / rate(s_opt) - 1.0),
                pct(rate(s_guide) / rate(s_opt) - 1.0),
            ]);
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Shape: all three agree in the low-risk regime (λ(s+c) << 1); at high risk the"
        );
        outln!(
            ctx,
            "exact optimum shrinks below Young's formula, and the transplanted guideline"
        );
        outln!(
            ctx,
            "interval stays within a few percent of optimal makespan — the paper's Remark"
        );
        outln!(
            ctx,
            "('our results can be adapted to apply in that setting') holds quantitatively.\n"
        );

        // Finite job + simulation validation.
        let w = 200.0;
        let c = 0.5;
        let lambda = 0.05;
        let (n, analytic) = optimal_schedule(w, c, lambda).expect("schedule");
        outln!(
            ctx,
            "Finite job w = {w}, c = {c}, lambda = {lambda}: optimal n = {n} saves"
        );
        let intervals = vec![w / n as f64; n];
        let mut rng = StdRng::seed_from_u64(2026);
        let trials = ctx.budget(20_000, 4_000);
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += simulate_makespan(&intervals, c, lambda, &mut rng).expect("sim");
        }
        let sim = acc / trials as f64;
        outln!(
            ctx,
            "expected makespan {analytic:.2} vs simulated {sim:.2} ({trials} runs)"
        );
        let naive = uniform_makespan(w, 1, c, lambda).expect("naive");
        outln!(
            ctx,
            "no-checkpoint makespan {naive:.1} — checkpointing wins by {:.1}x",
            naive / analytic
        );
        Ok(())
    }
}
