//! EXP-COMP — worst-case/competitive cycle-stealing (extension: the
//! sequel announced in the paper's footnote 1, and related work \[2\]).
//!
//! Measures the competitive ratio `ρ(S) = inf_r W_S(r)/(r − c)` of
//! guideline, equal-period and geometric schedules against an adversarial
//! reclaim time, and contrasts the expected-work and worst-case objectives
//! on the same schedules.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_core::competitive::{best_geometric, competitive_ratio, geometric_schedule};
use cs_core::search;
use cs_life::Uniform;

/// Registration for `exp_competitive`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_competitive"
    }

    fn paper(&self) -> &'static str {
        "footnote 1"
    }

    fn title(&self) -> &'static str {
        "Adversarial (competitive) cycle-stealing vs the expected-work objective"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-COMP: adversarial (competitive) cycle-stealing — extension\n"
        );
        let c = 1.0;
        let r_min = 10.0;
        let r_max = 1000.0;
        outln!(
            ctx,
            "Adversary picks the reclaim time r in [{r_min}, {r_max}]; c = {c}."
        );
        outln!(
            ctx,
            "rho(S) = inf_r W_S(r)/(r - c); OPT knows r and uses one period.\n"
        );

        let best = best_geometric(c, r_min, r_max).expect("search");
        let mut t = Table::new(&["schedule", "periods", "rho", "E under uniform p"]);
        let p = Uniform::new(r_max).expect("uniform");
        let mut add = |name: &str, s: &cs_core::Schedule| {
            let rho = competitive_ratio(s, c, r_min, r_max).unwrap_or(f64::NAN);
            t.row(&[
                name.into(),
                s.len().to_string(),
                fmt(rho, 4),
                fmt(s.expected_work(&p, c), 1),
            ]);
        };
        add(
            &format!(
                "best geometric (first={:.2}, g={:.3})",
                best.first, best.growth
            ),
            &best.schedule,
        );
        for (label, first, growth) in [
            ("doubling (first=5, g=2)", 5.0, 2.0),
            ("equal(5)", 5.0, 1.0),
            ("equal(20)", 20.0, 1.0),
            ("equal(100)", 100.0, 1.0),
        ] {
            let s = geometric_schedule(first, growth, r_max).expect("schedule");
            add(label, &s);
        }
        // The expected-work guideline schedule, scored adversarially.
        let plan = search::best_guideline_schedule(&p, c).expect("plan");
        add("guideline (tuned for E, uniform p)", &plan.schedule);
        outln!(ctx, "{}", t.render());

        outln!(ctx, "Shapes:");
        outln!(
            ctx,
            "  * near-equal periods are competitively optimal here: equal chunks of length t"
        );
        outln!(
            ctx,
            "    guarantee (t - c)/t asymptotically, while growth g > 1 drops the ratio toward"
        );
        outln!(
            ctx,
            "    1/g at period ends — the per-period overhead changes the classic doubling"
        );
        outln!(ctx, "    answer;");
        outln!(
            ctx,
            "  * the expected-work guideline schedule (large early periods) has a much worse"
        );
        outln!(
            ctx,
            "    worst case than its expected case — the two objectives genuinely diverge,"
        );
        outln!(
            ctx,
            "    which is why the paper defers worst-case to the sequel (footnote 1)."
        );
        Ok(())
    }
}
