//! EXP-NOW — end-to-end NOW farm: aggregate work by chunk-sizing policy
//! across heterogeneous borrowed workstations (the paper's §1 deployment,
//! replicated and summarized).

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, fmt_opt, Table};
use cs_life::{ArcLife, GeometricDecreasing, Polynomial, Uniform};
use cs_now::farm::{Farm, FarmConfig, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::replicate::replicate_farm;
use cs_obs::RunSummary;
use cs_tasks::workloads;
use std::sync::Arc;

fn heterogeneous_now(n: usize, c: f64) -> Vec<WorkstationConfig> {
    (0..n)
        .map(|i| {
            let life: ArcLife = match i % 3 {
                0 => Arc::new(Uniform::new(120.0 + 30.0 * (i % 4) as f64).unwrap()),
                1 => Arc::new(GeometricDecreasing::from_half_life(35.0).unwrap()),
                _ => Arc::new(Polynomial::new(2, 180.0).unwrap()),
            };
            WorkstationConfig {
                life: life.clone(),
                believed: life,
                c,
                policy: PolicySpec::Guideline,
                gap_mean: 12.0,
                faults: FaultPlan::none(),
            }
        })
        .collect()
}

/// Registration for `exp_now_farm`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_now_farm"
    }

    fn paper(&self) -> &'static str {
        "§1 deployment"
    }

    fn title(&self) -> &'static str {
        "Multi-workstation NOW farm: policy comparison under replication"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-NOW: multi-workstation farm, policy comparison (replicated)\n"
        );
        let c = 2.0;
        let reps = ctx.budget(12u64, 3);
        let threads = 4;
        for (n_ws, tasks) in [(4usize, 600usize), (16, 2400)] {
            outln!(
                ctx,
                "{n_ws} workstations, {tasks} unit tasks, c = {c}, {reps} replications:"
            );
            let template = FarmConfig::new(heterogeneous_now(n_ws, c), 1e6, 31_337);
            let make_bag = move || workloads::uniform(tasks, 1.0).unwrap();
            let mut t = Table::new(&[
                "policy",
                "drained",
                "makespan mean",
                "makespan ci95",
                "lost work mean",
            ]);
            for policy in [
                PolicySpec::Guideline,
                PolicySpec::Greedy,
                PolicySpec::FixedSize(5.0),
                PolicySpec::FixedSize(25.0),
                PolicySpec::FixedSize(100.0),
            ] {
                let rep = replicate_farm(&template, policy, &make_bag, reps, threads)
                    .expect("valid farm template");
                t.row(&[
                    rep.policy.clone(),
                    fmt(rep.drained_fraction, 2),
                    fmt(rep.makespan.mean(), 1),
                    // ci95() is None (rendered "n/a") when fewer than two
                    // replications drained — never NaN in the table.
                    fmt_opt(rep.makespan.ci95(), 1),
                    fmt(rep.lost_work.mean(), 1),
                ]);
                if n_ws == 16 && policy == PolicySpec::Guideline {
                    RunSummary::new("exp_now_farm")
                        .text("policy", &rep.policy)
                        .int("workstations", n_ws as u64)
                        .int("replications", reps)
                        .num("drained_fraction", rep.drained_fraction)
                        .num("makespan_mean", rep.makespan.mean())
                        .num("makespan_ci95", rep.makespan.ci95().unwrap_or(f64::NAN))
                        .num("lost_work_mean", rep.lost_work.mean())
                        .emit_to(ctx.out)
                        .map_err(|e| e.to_string())?;
                }
            }
            outln!(ctx, "{}", t.render());
        }
        // One representative guideline run goes through the harness event
        // sink, so `--trace-out` captures a real master action stream.
        // Nothing is written to `out`: the report tables stay byte-identical.
        let obs = FarmConfig::new(heterogeneous_now(4, c), 1e6, 31_337);
        Farm::new(obs, workloads::uniform(600, 1.0).unwrap())
            .map_err(|e| e.to_string())?
            .run_observed(&mut *ctx.sink);
        outln!(
            ctx,
            "Shape: guideline chunk-sizing drains the bag fastest (or ties the best fixed"
        );
        outln!(
            ctx,
            "size, which must be hand-tuned per NOW); too-small chunks pay overhead, too-"
        );
        outln!(
            ctx,
            "large chunks pay reclamation losses — the paper's central tension, end to end."
        );
        Ok(())
    }
}
