//! EXP-ABL — ablations of the guideline pipeline's design choices
//! (DESIGN.md calls these out):
//!
//! 1. **Is the `t_0` bracket worth having?** The paper claims Thms 3.2/3.3
//!    give "a manageably narrow search space". We search the same grid
//!    resolution once inside the bracket and once over the whole
//!    `(c, horizon)` range, counting life-function evaluations: the bracket
//!    buys the same expected work at a fraction of the evaluations — or,
//!    equivalently, far better `t_0` resolution per evaluation.
//! 2. **How much search resolution is needed?** Sweep the `t_0` grid from
//!    4 to 512 points: the expected-work curve is flat near the optimum
//!    (Thm 5.1's stationarity), so coarse grids already capture ~all of E.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, pct, Table};
use cs_core::bounds::{t0_bracket, T0Bracket};
use cs_core::recurrence::GuidelineOptions;
use cs_core::search::best_guideline_schedule_in;
use cs_life::{GeometricIncreasing, LifeFunction, Polynomial, Shape, Uniform};
use std::sync::atomic::{AtomicU64, Ordering};

/// A life function wrapper counting `survival` + `deriv` evaluations.
struct Counting<'a> {
    inner: &'a dyn LifeFunction,
    calls: AtomicU64,
}

impl<'a> Counting<'a> {
    fn new(inner: &'a dyn LifeFunction) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }
    fn count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl LifeFunction for Counting<'_> {
    fn survival(&self, t: f64) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.survival(t)
    }
    fn deriv(&self, t: f64) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.deriv(t)
    }
    fn lifespan(&self) -> Option<f64> {
        self.inner.lifespan()
    }
    fn shape(&self) -> Shape {
        self.inner.shape()
    }
    fn describe(&self) -> String {
        self.inner.describe()
    }
}

/// Registration for `exp_ablation`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_ablation"
    }

    fn paper(&self) -> &'static str {
        "§3 Thms 3.2/3.3"
    }

    fn title(&self) -> &'static str {
        "Ablations: t0-bracket value and search-grid resolution"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(ctx, "EXP-ABL: ablating the guideline pipeline\n");
        let opts = GuidelineOptions::default();

        // --- Ablation 1: bracket vs full-horizon search --------------------
        // The window width matters when the t0 scan is COARSE (few candidates,
        // the cheap regime one wants in a progressive scheduler that re-plans
        // every period): compare both windows at 3 and 64 grid points, with
        // golden refinement disabled-equivalent coarseness, counting life-
        // function evaluations. A wide window at 3 points places candidates
        // hundreds of time units from the optimum; the bracket keeps them near
        // it by construction.
        outln!(
            ctx,
            "Ablation 1: search window x grid coarseness (p-evals counted)"
        );
        let cases: Vec<(String, Box<dyn LifeFunction>, f64)> = vec![
            (
                "uniform(L=1000)".into(),
                Box::new(Uniform::new(1000.0).unwrap()),
                5.0,
            ),
            (
                "poly(d=3,L=1000)".into(),
                Box::new(Polynomial::new(3, 1000.0).unwrap()),
                5.0,
            ),
            (
                "geo-inc(L=256)".into(),
                Box::new(GeometricIncreasing::new(256.0).unwrap()),
                2.0,
            ),
        ];
        let mut t = Table::new(&[
            "scenario", "window", "width", "grid", "E", "p-evals", "vs best",
        ]);
        for (name, p, c) in &cases {
            let bracket = t0_bracket(p.as_ref(), *c).expect("bracket");
            let horizon = p.horizon(1e-12);
            let full = T0Bracket {
                lower: *c,
                upper: horizon,
                upper_from_shape: false,
            };
            // Best-known E for normalization.
            let best = best_guideline_schedule_in(p.as_ref(), *c, bracket, 256, &opts)
                .expect("reference")
                .expected_work;
            for (label, window) in [("bracket", bracket), ("full horizon", full)] {
                for grid in [3usize, 64] {
                    let counting = Counting::new(p.as_ref());
                    let plan = best_guideline_schedule_in(&counting, *c, window, grid, &opts)
                        .expect("search");
                    t.row(&[
                        name.clone(),
                        label.into(),
                        fmt(window.upper - window.lower, 1),
                        grid.to_string(),
                        fmt(plan.expected_work, 3),
                        counting.count().to_string(),
                        pct(plan.expected_work / best),
                    ]);
                }
            }
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Shape: at 64 grid points both windows find the optimum (E(t0) is flat near it,"
        );
        outln!(
            ctx,
            "so even wide windows recover after refinement, at comparable evaluation cost);"
        );
        outln!(
            ctx,
            "the bracket's value shows at coarse grids and as a certified region — 3 bracket"
        );
        outln!(
            ctx,
            "points already land on the optimum, and the paper's factor-2 width guarantees"
        );
        outln!(
            ctx,
            "that no scan resolution is wasted outside the feasible region.\n"
        );

        // --- Ablation 2: t0 grid resolution --------------------------------
        outln!(
            ctx,
            "Ablation 2: t0 search resolution (uniform L=1000, c=5)"
        );
        let p = Uniform::new(1000.0).unwrap();
        let c = 5.0;
        let bracket = t0_bracket(&p, c).expect("bracket");
        let reference = best_guideline_schedule_in(&p, c, bracket, 512, &opts)
            .expect("reference")
            .expected_work;
        let mut t2 = Table::new(&["grid points", "t0", "E", "vs grid=512"]);
        for grid in [4usize, 8, 16, 64, 256, 512] {
            let plan = best_guideline_schedule_in(&p, c, bracket, grid, &opts).expect("search");
            t2.row(&[
                grid.to_string(),
                fmt(plan.t0, 3),
                fmt(plan.expected_work, 6),
                pct(plan.expected_work / reference),
            ]);
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "Shape: E is within a fraction of a percent of the reference even at 4-8 grid"
        );
        outln!(
            ctx,
            "points — Thm 5.1's stationarity makes E(t0) flat near the optimum, so the"
        );
        outln!(
            ctx,
            "bracket midpoint alone is already an excellent schedule."
        );
        Ok(())
    }
}
