//! EXP-SIM — model validation: the Monte-Carlo mean episode work converges
//! to the analytic `E(S; p)` of eq (2.1), for every family and for both the
//! serial and the parallel simulator.

use crate::harness::{ExpContext, Experiment};
use crate::{canonical_scenarios, outln};
use cs_apps::{fmt, fmt_opt, Table};
use cs_core::search;
use cs_obs::RunSummary;
use cs_sim::{simulate_expected_work, simulate_expected_work_parallel};

/// Registration for `exp_sim_validate`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_sim_validate"
    }

    fn paper(&self) -> &'static str {
        "eq (2.1)"
    }

    fn title(&self) -> &'static str {
        "Monte-Carlo validation of the expected-work functional E(S;p)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-SIM: Monte-Carlo validation of E(S;p) — eq (2.1)\n"
        );
        let trial_grid = ctx.budget([1u64, 1_000, 10_000, 100_000], [1u64, 500, 2_000, 10_000]);
        let parallel_trials = ctx.budget(200_000u64, 20_000);
        let mut t = Table::new(&[
            "scenario",
            "trials",
            "analytic E",
            "MC mean",
            "95% CI",
            "|err|/CI",
            "interrupted",
        ]);
        for s in canonical_scenarios() {
            let p = s.life.as_ref();
            let plan = search::best_guideline_schedule(p, s.c).expect("plan");
            let analytic = plan.expected_work;
            // The single-trial row exercises the undefined-CI path: it must
            // render "n/a", never NaN.
            for trials in trial_grid {
                let mc = simulate_expected_work(&plan.schedule, p, s.c, trials, 7_777);
                let ci = mc.work.ci95();
                t.row(&[
                    s.name.clone(),
                    trials.to_string(),
                    fmt(analytic, 4),
                    fmt(mc.work.mean(), 4),
                    fmt_opt(ci, 4),
                    fmt_opt(
                        ci.map(|h| (mc.work.mean() - analytic).abs() / h.max(1e-12)),
                        2,
                    ),
                    fmt(mc.interrupted_fraction, 3),
                ]);
            }
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Shape: |err| stays within ~1-2 CI half-widths and the CI shrinks like 1/sqrt(n).\n"
        );

        // Parallel determinism and agreement.
        let scenarios = canonical_scenarios();
        let s = &scenarios[0];
        let plan = search::best_guideline_schedule(s.life.as_ref(), s.c).expect("plan");
        let a = simulate_expected_work_parallel(
            &plan.schedule,
            s.life.as_ref(),
            s.c,
            parallel_trials,
            99,
            8,
        );
        let b = simulate_expected_work_parallel(
            &plan.schedule,
            s.life.as_ref(),
            s.c,
            parallel_trials,
            99,
            8,
        );
        let reproducible = a.work.mean() == b.work.mean();
        outln!(
            ctx,
            "Parallel simulator ({}, 8 threads, {}k trials): mean {} (run-to-run identical: {})",
            s.name,
            parallel_trials / 1_000,
            fmt(a.work.mean(), 4),
            reproducible
        );
        // A NaN CI would make this comparison silently false; ci95() separates
        // "insufficient samples" from a genuine disagreement.
        let agreement = match a.work.ci95() {
            Some(half) => {
                let inside = (a.work.mean() - plan.expected_work).abs() <= half;
                format!("inside CI: {inside}")
            }
            None => "insufficient samples for a CI".to_string(),
        };
        outln!(
            ctx,
            "  analytic {} — {}",
            fmt(plan.expected_work, 4),
            agreement
        );

        RunSummary::new("exp_sim_validate")
            .num("parallel_mean", a.work.mean())
            .num("analytic", plan.expected_work)
            .flag("reproducible", reproducible)
            .flag(
                "inside_ci",
                a.work
                    .ci95()
                    .is_some_and(|h| (a.work.mean() - plan.expected_work).abs() <= h),
            )
            .emit_to(ctx.out)
            .map_err(|e| e.to_string())?;
        Ok(())
    }
}
