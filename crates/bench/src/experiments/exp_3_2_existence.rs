//! EXP-3.2 — existence of optimal schedules (Cor 3.2) and the paper's
//! `1/(t+1)^d` non-existence example.
//!
//! Two probes:
//! 1. the **literal** Corollary 3.2 test `∃ t > c : p(t) > −(t−c)p'(t)`;
//! 2. the **empirical** horizon sweep: DP-optimal value/t0/period-count as
//!    the truncation horizon doubles — stabilization ⇒ the optimum is
//!    attained; persistent drift ⇒ the supremum is only approached
//!    (non-existence).
//!
//! Reproduction note (also in EXPERIMENTS.md): the literal test is
//! *satisfied* by the Pareto family near `t = c`, so as printed it cannot
//! rule the family out; the horizon sweep demonstrates the paper's intended
//! conclusion.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_core::existence::{cor_3_2_test, horizon_sweep};
use cs_life::{GeometricDecreasing, GeometricIncreasing, LifeFunction, Pareto, Uniform};

/// Registration for `exp_3_2_existence`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_3_2_existence"
    }

    fn paper(&self) -> &'static str {
        "§3.2"
    }

    fn title(&self) -> &'static str {
        "Existence of optimal schedules (Cor 3.2) and the 1/(t+1)^d counterexample"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-3.2: which life functions admit optimal schedules? (Cor 3.2)\n"
        );
        let c = 1.0;
        let cases: Vec<(String, Box<dyn LifeFunction>)> = vec![
            (
                "uniform(L=100)".into(),
                Box::new(Uniform::new(100.0).unwrap()),
            ),
            (
                "geo-dec(a=2)".into(),
                Box::new(GeometricDecreasing::new(2.0).unwrap()),
            ),
            (
                "geo-inc(L=64)".into(),
                Box::new(GeometricIncreasing::new(64.0).unwrap()),
            ),
            ("pareto(d=1.5)".into(), Box::new(Pareto::new(1.5).unwrap())),
            ("pareto(d=2)".into(), Box::new(Pareto::new(2.0).unwrap())),
            ("pareto(d=3)".into(), Box::new(Pareto::new(3.0).unwrap())),
        ];
        let mut t = Table::new(&["life function", "max h(t)", "witness t", "literal Cor 3.2"]);
        for (name, p) in &cases {
            let out = cor_3_2_test(p.as_ref(), c).expect("test");
            t.row(&[
                name.clone(),
                format!("{:+.4}", out.max_h),
                fmt(out.witness_t, 3),
                if out.condition_holds {
                    "holds".into()
                } else {
                    "fails".into()
                },
            ]);
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Note: the literal test holds for Pareto too (h > 0 just above c), so it cannot"
        );
        outln!(
            ctx,
            "by itself separate the families — see the horizon sweep below for the intended"
        );
        outln!(ctx, "conclusion.\n");

        outln!(
            ctx,
            "Empirical horizon sweep (DP optimum on growing truncations):"
        );
        let sweeps: Vec<(String, Box<dyn LifeFunction>, Vec<f64>)> = vec![
            (
                "geo-dec(a=2)".into(),
                Box::new(GeometricDecreasing::new(2.0).unwrap()),
                vec![20.0, 40.0, 80.0],
            ),
            (
                "pareto(d=1.2)".into(),
                Box::new(Pareto::new(1.2).unwrap()),
                vec![100.0, 400.0, 1600.0],
            ),
            (
                "pareto(d=2)".into(),
                Box::new(Pareto::new(2.0).unwrap()),
                vec![100.0, 400.0, 1600.0],
            ),
        ];
        let grid_base = ctx.budget(2000.0, 500.0);
        for (name, p, horizons) in &sweeps {
            // Scale the grid with the horizon so grid resolution (cell width)
            // stays constant across the sweep — otherwise coarser grids at
            // larger horizons mask the small tail gains.
            let base = horizons[0];
            let mut pts = Vec::new();
            for &h in horizons {
                let grid = ((grid_base * h / base) as usize).min(10_000);
                pts.extend(horizon_sweep(p.as_ref(), c, &[h], grid).expect("sweep"));
            }
            let mut t = Table::new(&["horizon", "E* (DP)", "t0", "periods", "delta E vs prev"]);
            let mut prev = f64::NAN;
            for pt in &pts {
                let delta = if prev.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:+.2}%", 100.0 * (pt.value - prev) / prev.max(1e-12))
                };
                t.row(&[
                    fmt(pt.horizon, 0),
                    fmt(pt.value, 4),
                    fmt(pt.t0, 2),
                    pt.m.to_string(),
                    delta,
                ]);
                prev = pt.value;
            }
            outln!(ctx, "{name}:");
            outln!(ctx, "{}", t.render());
        }
        outln!(
            ctx,
            "Shape: geo-dec stabilizes (optimum attained); Pareto keeps gaining value and"
        );
        outln!(
            ctx,
            "periods as the horizon grows — the supremum is approached, never attained,"
        );
        outln!(
            ctx,
            "reproducing the paper's non-existence claim for 1/(t+1)^d."
        );
        Ok(())
    }
}
