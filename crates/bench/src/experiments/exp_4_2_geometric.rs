//! EXP-4.2 — geometric-decreasing lifespan `p_a(t) = a^{−t}` (paper §4.2).
//!
//! Reproduces:
//! * the `t_0` bracket `√(c²/4 + c/ln a) + c/2 ≤ t_0 ≤ c + 1/ln a` and the
//!   paper's remark that the *upper* bound is close to the optimal `t_0`;
//! * the guideline recurrence (4.6) against \[3\]'s optimal equal-period
//!   recurrence — including the repelling-fixed-point structure;
//! * guideline-search efficiency against the exact optimum
//!   `E = (t*−c)/(a^{t*}−1)`.

use crate::harness::{ExpContext, Experiment};
use crate::{grids, outln};
use cs_apps::{fmt, pct, Table};
use cs_core::recurrence::geometric_decreasing_step;
use cs_core::{bounds, optimal, search};
use cs_life::GeometricDecreasing;

/// Registration for `exp_4_2_geometric`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_4_2_geometric"
    }

    fn paper(&self) -> &'static str {
        "§4.2"
    }

    fn title(&self) -> &'static str {
        "Geometric-decreasing lifespan: t0 bracket, recurrence (4.6), efficiency"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-4.2: geometric decreasing lifespan a^(-t) (paper §4.2)\n"
        );

        let mut t = Table::new(&[
            "a",
            "c",
            "bound lo",
            "bound hi",
            "t0* ([3])",
            "hi - t0*",
            "E opt",
            "E guideline",
            "efficiency",
        ]);
        for &a in &grids::RISK_FACTORS {
            for &c in &[0.1, 0.5, 1.0, 2.0] {
                let p = GeometricDecreasing::new(a).expect("family");
                let (lo, hi) = bounds::geometric_decreasing_t0_bounds(a, c);
                let opt = optimal::geometric_decreasing_optimal(a, c).expect("optimal");
                let plan = search::best_guideline_schedule(&p, c).expect("plan");
                t.row(&[
                    fmt(a, 2),
                    fmt(c, 1),
                    fmt(lo, 3),
                    fmt(hi, 3),
                    fmt(opt.period, 3),
                    fmt(hi - opt.period, 3),
                    fmt(opt.expected_work, 4),
                    fmt(plan.expected_work, 4),
                    pct(plan.expected_work / opt.expected_work),
                ]);
            }
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Paper's remark reproduced: the upper bound c + 1/ln a sits just above t0*.\n"
        );

        // Fixed-point structure of the recurrence (4.6).
        let a = 2.0;
        let c = 1.0;
        let t_star = optimal::geometric_decreasing_optimal_period(a, c).expect("t*");
        outln!(
            ctx,
            "Recurrence (4.6) structure at a = {a}, c = {c}: fixed point t* = {t_star:.6} \
             (identical to [3]'s optimal-period equation)."
        );
        let mut t2 = Table::new(&["start t0", "after 5 steps", "after 10 steps", "terminates?"]);
        for start in [
            t_star - 0.2,
            t_star - 0.01,
            t_star,
            t_star + 0.01,
            t_star + 0.1,
        ] {
            let mut x = start;
            let mut vals = Vec::new();
            let mut dead = false;
            for i in 0..10 {
                match geometric_decreasing_step(a, c, x) {
                    Some(next) => x = next,
                    None => {
                        dead = true;
                        break;
                    }
                }
                if i == 4 {
                    vals.push(x);
                }
            }
            t2.row(&[
                fmt(start, 4),
                vals.first()
                    .map(|v| fmt(*v, 4))
                    .unwrap_or_else(|| "-".into()),
                if dead { "-".into() } else { fmt(x, 4) },
                if dead { "yes".into() } else { "no".into() },
            ]);
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "The fixed point is REPELLING (|f'(t*)| = a^t* = {:.2} > 1): only t0 = t* generates\n\
             the infinite optimal schedule — why the paper calls choosing t0 'an art' (§6).",
            a.powf(t_star)
        );
        Ok(())
    }
}
