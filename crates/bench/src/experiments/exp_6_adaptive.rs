//! EXP-6b — progressive (conditional-probability) scheduling (paper §6).
//!
//! Two measurements:
//! 1. **Consistency** — under the exact life function, period-by-period
//!    conditional re-planning reproduces the a-priori guideline schedule.
//! 2. **Robustness value** — when the believed life function is a
//!    trace-based estimate, the progressive scheduler's plan, judged under
//!    the truth, tracks the oracle closely; planning the whole episode
//!    up-front from the same estimate does no better.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, pct, Table};
use cs_core::{adaptive, search};
use cs_life::{ArcLife, Polynomial, Uniform};
use cs_trace::estimate::estimate_life;
use cs_trace::owner::sample_absences;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Registration for `exp_6_adaptive`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_6_adaptive"
    }

    fn paper(&self) -> &'static str {
        "§6"
    }

    fn title(&self) -> &'static str {
        "Progressive scheduling with conditional probabilities vs a-priori plans"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-6b: progressive scheduling with conditional probabilities (paper §6)\n"
        );

        // 1. Consistency under the exact life function.
        outln!(ctx, "Consistency: progressive == a-priori under exact p");
        let mut t = Table::new(&["scenario", "a-priori E", "progressive E", "match"]);
        let cases: Vec<(String, ArcLife, f64)> = vec![
            (
                "uniform(L=400)".into(),
                Arc::new(Uniform::new(400.0).unwrap()),
                4.0,
            ),
            (
                "poly(d=3,L=300)".into(),
                Arc::new(Polynomial::new(3, 300.0).unwrap()),
                2.0,
            ),
        ];
        for (name, life, c) in &cases {
            let apriori = search::best_guideline_schedule(life, *c).expect("plan");
            let mut sched = adaptive::AdaptiveScheduler::new(life.clone(), *c).expect("adaptive");
            let progressive = sched.run_to_completion(500).expect("run");
            let ea = apriori.schedule.expected_work(life, *c);
            let eb = progressive.expected_work(life, *c);
            t.row(&[name.clone(), fmt(ea, 4), fmt(eb, 4), pct(eb / ea)]);
        }
        outln!(ctx, "{}", t.render());

        // 2. Value under estimated life functions.
        outln!(
            ctx,
            "Robustness: schedule from a trace estimate, judged under the truth"
        );
        let truth = Uniform::new(60.0).unwrap();
        let c = 1.0;
        let oracle = search::best_guideline_schedule(&truth, c).expect("oracle");
        let e_oracle = oracle.schedule.expected_work(&truth, c);
        let mut t2 = Table::new(&[
            "trace size",
            "up-front E",
            "progressive E",
            "oracle E",
            "prog eff",
        ]);
        let mut rng = StdRng::seed_from_u64(606);
        let trace_sizes = ctx.budget([100usize, 1_000, 10_000], [100usize, 300, 1_000]);
        for n in trace_sizes {
            let samples = sample_absences(&truth, n, &mut rng).expect("samples");
            let est: ArcLife = Arc::new(estimate_life(&samples, 24).expect("estimate"));
            // Up-front: plan the whole episode from the estimate.
            let upfront = search::best_guideline_schedule(&est, c).expect("plan");
            let e_upfront = upfront.schedule.expected_work(&truth, c);
            // Progressive: plan one period at a time from the (re-rooted)
            // estimate.
            let mut sched = adaptive::AdaptiveScheduler::new(est, c).expect("adaptive");
            let progressive = sched.run_to_completion(500).expect("run");
            let e_prog = progressive.expected_work(&truth, c);
            t2.row(&[
                n.to_string(),
                fmt(e_upfront, 4),
                fmt(e_prog, 4),
                fmt(e_oracle, 4),
                pct(e_prog / e_oracle),
            ]);
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "Shape: progressive efficiency rises with trace size toward 100%; with exact"
        );
        outln!(
            ctx,
            "knowledge the two planning modes coincide (the §6 observation that the"
        );
        outln!(
            ctx,
            "recurrence is progressive: t_{{i+1}} is needed only after period i ends)."
        );
        Ok(())
    }
}
