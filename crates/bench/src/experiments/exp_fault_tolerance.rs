//! EXP-FAULT — graceful degradation of the NOW farm under escalating fault
//! intensity.
//!
//! The paper's guidelines assume a well-behaved NOW. This experiment
//! measures what its policies deliver when the NOW misbehaves: every
//! workstation runs the canonical [`FaultPlan::scaled`] mix (message loss,
//! stragglers, silent crashes, storm susceptibility) at intensity `x`, the
//! farm adds periodic reclaim storms, and the resilient master (leases,
//! backoff, quarantine, tail replication) routes around the failures.
//!
//! For each policy × intensity cell we replicate the farm across seeds and
//! report the drained fraction, mean makespan, and the resilience
//! machinery's activity. Shape to look for: throughput degrades smoothly —
//! no cliff — and the guideline policy keeps its edge over naive fixed
//! sizes even as the fault mix worsens, because its chunk sizes already
//! hedge against mid-period loss.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_life::{ArcLife, Uniform};
use cs_now::farm::{FarmConfig, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::replicate::replicate_farm;
use cs_obs::RunSummary;
use cs_tasks::workloads;
use std::sync::Arc;

fn farm_template(intensity: f64, seed: u64) -> FarmConfig {
    let n_ws = 6;
    let workstations = (0..n_ws)
        .map(|i| {
            let life: ArcLife = Arc::new(Uniform::new(120.0 + 20.0 * (i % 3) as f64).unwrap());
            WorkstationConfig {
                life: life.clone(),
                believed: life,
                c: 2.0,
                policy: PolicySpec::Guideline,
                gap_mean: 10.0,
                faults: FaultPlan::scaled(intensity),
            }
        })
        .collect();
    let mut config = FarmConfig::new(workstations, 1e6, seed);
    // The 9 a.m. login waves: correlated reclaim storms every 400 time
    // units. Hit probability scales with the intensity via the plan.
    config.storms = (1..=10).map(|k| 400.0 * k as f64).collect();
    config
}

/// Registration for `exp_fault_tolerance`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_fault_tolerance"
    }

    fn paper(&self) -> &'static str {
        "§1 (NOW assumptions, stressed)"
    }

    fn title(&self) -> &'static str {
        "Graceful degradation of the farm under escalating fault intensity"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        let tasks = 800usize;
        let reps = ctx.budget(10u64, 3);
        let threads = 4;
        outln!(
            ctx,
            "EXP-FAULT: policy x fault-intensity degradation \
             (6 workstations, {tasks} unit tasks, c = 2, {reps} replications)\n"
        );
        outln!(ctx, "intensity x scales every fault class at once:");
        outln!(
            ctx,
            "  loss = min(0.25x, 0.9), slowdown = 1+x, crash rate = 5e-4 x,"
        );
        outln!(
            ctx,
            "  storm hit = min(0.6x, 1); storms every 400 time units.\n"
        );

        for policy in [
            PolicySpec::Guideline,
            PolicySpec::Greedy,
            PolicySpec::FixedSize(12.0),
        ] {
            let mut t = Table::new(&[
                "intensity",
                "drained",
                "makespan mean",
                "banked mean",
                "lease timeouts",
                "dup work",
            ]);
            for intensity in [0.0, 0.25, 0.5, 1.0, 2.0] {
                let template = farm_template(intensity, 90_210);
                let make_bag = move || workloads::uniform(tasks, 1.0).unwrap();
                let rep = replicate_farm(&template, policy, &make_bag, reps, threads)
                    .expect("valid farm template");
                t.row(&[
                    fmt(intensity, 2),
                    fmt(rep.drained_fraction, 2),
                    if rep.makespan.count() > 0 {
                        fmt(rep.makespan.mean(), 1)
                    } else {
                        "-".into()
                    },
                    fmt(rep.completed_work.mean(), 1),
                    fmt(rep.lease_timeouts.mean(), 1),
                    fmt(rep.duplicate_work.mean(), 1),
                ]);
                if intensity == 2.0 {
                    RunSummary::new("exp_fault_tolerance")
                        .text("policy", &rep.policy)
                        .num("intensity", intensity)
                        .int("replications", reps)
                        .num("drained_fraction", rep.drained_fraction)
                        .num("banked_mean", rep.completed_work.mean())
                        .num("lease_timeouts_mean", rep.lease_timeouts.mean())
                        .emit_to(ctx.out)
                        .map_err(|e| e.to_string())?;
                }
            }
            outln!(ctx, "policy = {}:", policy.label());
            outln!(ctx, "{}", t.render());
        }
        outln!(
            ctx,
            "Shape: degradation is smooth, not a cliff — leases requeue lost chunks,"
        );
        outln!(
            ctx,
            "quarantine shields the bag from black-hole workstations, and end-game"
        );
        outln!(
            ctx,
            "replication bounds the straggler tail. The guideline policy's edge over"
        );
        outln!(
            ctx,
            "naive fixed sizing persists across the intensity range."
        );
        Ok(())
    }
}
