//! The experiment registry: every `exp_*` study in the repo, one module
//! each, all implementing [`crate::harness::Experiment`].
//!
//! The binaries under `src/bin/` are thin shims over these modules (via
//! [`crate::harness::main_for`]), and the `cyclesteal exp` subcommand runs
//! them by id from [`all`]. Registration order follows the paper: §3
//! existence, §4 closed forms, §5 robustness, §6 open questions, then the
//! extensions (simulation, NOW farm, fault tolerance, observability).

pub mod exp_3_2_existence;
pub mod exp_4_1_t0_bounds;
pub mod exp_4_1_uniform;
pub mod exp_4_2_geometric;
pub mod exp_4_3_increasing;
pub mod exp_5_1_perturb;
pub mod exp_5_2_growth;
pub mod exp_6_adaptive;
pub mod exp_6_greedy;
pub mod exp_ablation;
pub mod exp_chaos;
pub mod exp_competitive;
pub mod exp_discrete;
pub mod exp_fault_tolerance;
pub mod exp_now_farm;
pub mod exp_obs_validate;
pub mod exp_online;
pub mod exp_saves;
pub mod exp_sim_validate;
pub mod exp_trace_robust;
pub mod exp_uniqueness;
pub mod exp_utilization;

use crate::harness::Experiment;

/// Every registered experiment, in paper order.
pub fn all() -> Vec<&'static dyn Experiment> {
    vec![
        &exp_3_2_existence::Exp,
        &exp_4_1_t0_bounds::Exp,
        &exp_4_1_uniform::Exp,
        &exp_4_2_geometric::Exp,
        &exp_4_3_increasing::Exp,
        &exp_5_1_perturb::Exp,
        &exp_5_2_growth::Exp,
        &exp_6_greedy::Exp,
        &exp_6_adaptive::Exp,
        &exp_uniqueness::Exp,
        &exp_discrete::Exp,
        &exp_competitive::Exp,
        &exp_ablation::Exp,
        &exp_sim_validate::Exp,
        &exp_utilization::Exp,
        &exp_online::Exp,
        &exp_trace_robust::Exp,
        &exp_saves::Exp,
        &exp_now_farm::Exp,
        &exp_fault_tolerance::Exp,
        &exp_chaos::Exp,
        &exp_obs_validate::Exp,
    ]
}
