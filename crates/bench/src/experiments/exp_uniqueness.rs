//! EXP-UNIQ — "Are optimal cycle-stealing schedules unique?" (paper §6).
//!
//! Theorem 3.1 reduces the question to the initial period: distinct optimal
//! schedules must have distinct `t_0`, and every `t_0` determines the rest
//! of the schedule through (3.6). We therefore chart the landscape
//! `t_0 ↦ E(guideline schedule from t_0)` for each family and count its
//! local maxima: a single peak means the optimum (within the recurrence
//! family, which contains the true optimum by Thm 3.1) is unique.

use crate::harness::{ExpContext, Experiment};
use crate::{canonical_scenarios, outln};
use cs_apps::{fmt, Table};
use cs_core::recurrence::GuidelineOptions;
use cs_core::search::{count_local_maxima, t0_landscape};
use cs_life::{LifeFunction, Pareto, Weibull};

/// Registration for `exp_uniqueness`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_uniqueness"
    }

    fn paper(&self) -> &'static str {
        "§6"
    }

    fn title(&self) -> &'static str {
        "Modality of the t0 -> E landscape (the uniqueness question)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-UNIQ: modality of the t0 -> E landscape (paper §6 uniqueness question)\n"
        );
        let opts = GuidelineOptions::default();
        let scan_points = ctx.budget(800, 200);
        let mut t = Table::new(&[
            "life function",
            "scan range",
            "points",
            "local maxima",
            "runner-up",
            "argmax t0",
            "max E",
        ]);
        let mut cases: Vec<(String, Box<dyn LifeFunction>, f64)> = canonical_scenarios()
            .into_iter()
            .map(|s| {
                let name = s.name;
                let c = s.c;
                (name, Box::new(s.life) as Box<dyn LifeFunction>, c)
            })
            .collect();
        // Add families outside the paper's trio as stress cases.
        cases.push((
            "weibull(k=2)".into(),
            Box::new(Weibull::new(2.0, 40.0).unwrap()),
            1.0,
        ));
        cases.push((
            "pareto(d=2)".into(),
            Box::new(Pareto::new(2.0).unwrap()),
            1.0,
        ));
        for (name, p, c) in &cases {
            let hi = p.horizon(1e-6) * 0.98;
            let lo = c + 1e-6;
            let land = t0_landscape(p.as_ref(), *c, lo, hi, scan_points, &opts).expect("landscape");
            let max_e = land.iter().map(|x| x.1).fold(f64::NEG_INFINITY, f64::max);
            let peaks = count_local_maxima(&land, 1e-9);
            // Prominence of the best runner-up peak (NaN when unimodal).
            let mut second = f64::NAN;
            for i in 1..land.len() - 1 {
                if land[i].1 > land[i - 1].1 && land[i].1 > land[i + 1].1 && land[i].1 < max_e {
                    second = if second.is_nan() {
                        land[i].1
                    } else {
                        second.max(land[i].1)
                    };
                }
            }
            let (best_t0, best_e) =
                land.iter()
                    .cloned()
                    .fold((f64::NAN, f64::NEG_INFINITY), |acc, x| {
                        if x.1 > acc.1 {
                            x
                        } else {
                            acc
                        }
                    });
            let runner_up = if second.is_nan() {
                "-".to_string()
            } else {
                format!("-{:.0}%", 100.0 * (max_e - second) / max_e)
            };
            t.row(&[
                name.clone(),
                format!("[{:.2}, {:.1}]", lo, hi),
                land.len().to_string(),
                peaks.to_string(),
                runner_up,
                fmt(best_t0, 2),
                fmt(best_e, 3),
            ]);
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Shape: the GLOBAL maximum is unique and well separated in every family —"
        );
        outln!(
            ctx,
            "an affirmative empirical answer to §6's uniqueness question (the paper proved"
        );
        outln!(
            ctx,
            "it case by case in [3]). The geometric-increasing landscape does carry"
        );
        outln!(
            ctx,
            "genuine secondary local maxima at small t0 (many-short-periods strategies),"
        );
        outln!(
            ctx,
            "all ≥ 78% below the global peak — which is exactly why the guideline search"
        );
        outln!(
            ctx,
            "grid-scans the bracket instead of hill-climbing from an arbitrary start."
        );
        Ok(())
    }
}
