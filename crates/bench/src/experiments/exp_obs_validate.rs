//! EXP-OBS — observability-contract validation.
//!
//! Two modes:
//!
//! * **Self-test** (no arguments): runs a seeded, faulty farm three ways —
//!   untraced, with a [`MemorySink`], and with a [`JsonlSink`] — and checks
//!   the whole contract: traced runs bit-identical to untraced, every JSONL
//!   line schema-valid, and event tallies reconciling exactly (bitwise for
//!   banked work) with the [`FarmReport`].
//! * **File mode** (`exp_obs_validate <events.jsonl>`): validates a trace
//!   emitted by `cyclesteal farm --trace-out` — every line parses, every
//!   event type and field set is in the schema, and the per-workstation
//!   `bank` sums reconcile bitwise with the trace's own `run_end.banked`.
//!
//! Fails (non-zero exit from the binary shim) on the first violated check,
//! so CI can gate on it.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_now::farm::{Farm, FarmConfig, FarmReport, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_obs::{validate_line, EventKind, JsonlSink, MemorySink, RunSummary, ValidatedEvent};
use cs_tasks::workloads;

/// A faulty 3-workstation farm that exercises most of the event vocabulary.
fn build_farm(seed: u64) -> Farm {
    let life: cs_life::ArcLife = std::sync::Arc::new(cs_life::Uniform::new(150.0).unwrap());
    let mut lossy = WorkstationConfig {
        life: life.clone(),
        believed: life.clone(),
        c: 2.0,
        policy: PolicySpec::FixedSize(20.0),
        gap_mean: 10.0,
        faults: FaultPlan::none(),
    };
    lossy.faults.loss_prob = 0.4;
    let mut slow = lossy.clone();
    slow.faults = FaultPlan::none();
    slow.faults.slowdown = 4.0;
    let healthy = WorkstationConfig {
        faults: FaultPlan::none(),
        ..lossy.clone()
    };
    let config = FarmConfig::new(vec![lossy, slow, healthy], 1e7, seed);
    let bag = workloads::uniform(400, 1.0).unwrap();
    Farm::new(config, bag).expect("valid config")
}

fn self_test(ctx: &mut ExpContext<'_>) -> Result<(), String> {
    let seed = 42;
    let plain = build_farm(seed).run();

    // 1. Pass-through: a traced run must be bit-identical to an untraced
    //    one.
    let mut mem = MemorySink::new();
    let traced = build_farm(seed).run_observed(&mut mem);
    for (label, a, b) in [
        ("makespan", plain.makespan, traced.makespan),
        (
            "completed_work",
            plain.completed_work,
            traced.completed_work,
        ),
        ("lost_work", plain.lost_work, traced.lost_work),
        (
            "remaining_work",
            plain.remaining_work,
            traced.remaining_work,
        ),
    ] {
        if a.to_bits() != b.to_bits() {
            return Err(format!("traced run diverged on {label}: {a} vs {b}"));
        }
    }
    if plain.robustness != traced.robustness {
        return Err("traced run diverged on robustness counters".into());
    }

    // 2. In-memory tallies reconcile with the report.
    reconcile_memory(&mem, &traced)?;

    // 3. The JSONL round trip: every line schema-valid, tallies identical
    //    to the in-memory stream.
    let path = std::env::temp_dir().join("exp_obs_validate_selftest.jsonl");
    let mut jsonl = JsonlSink::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
    let jsonl_run = build_farm(seed).run_observed(&mut jsonl);
    if jsonl_run.completed_work.to_bits() != plain.completed_work.to_bits() {
        return Err("JSONL-traced run diverged from untraced run".into());
    }
    let lines = jsonl.finish().map_err(|e| format!("finish: {e}"))?;
    if lines as usize != mem.events.len() {
        return Err(format!(
            "JSONL wrote {lines} lines but the memory sink saw {} events",
            mem.events.len()
        ));
    }
    validate_file(ctx, path.to_str().expect("utf-8 temp path"))?;
    std::fs::remove_file(&path).ok();

    outln!(
        ctx,
        "PASS: pass-through, schema and reconciliation hold \
         ({} events, banked {}, {} lease timeouts)",
        mem.events.len(),
        traced.completed_work,
        traced.robustness.lease_timeouts
    );
    RunSummary::new("exp_obs_validate")
        .int("events", mem.events.len() as u64)
        .num("banked", traced.completed_work)
        .int("lease_timeouts", traced.robustness.lease_timeouts)
        .flag("pass", true)
        .emit_to(ctx.out)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Checks the in-memory event stream against the report it came from.
fn reconcile_memory(mem: &MemorySink, report: &FarmReport) -> Result<(), String> {
    let n = report.per_workstation.len();
    let mut bank_sum = vec![0.0f64; n];
    let mut timeouts = 0u64;
    let mut requeues = 0u64;
    let mut episodes = 0u64;
    for e in &mem.events {
        match e.kind {
            EventKind::Bank { ws, work, .. } => bank_sum[ws as usize] += work,
            EventKind::LeaseTimeout { .. } => timeouts += 1,
            EventKind::Requeue { .. } => requeues += 1,
            EventKind::EpisodeStart { .. } => episodes += 1,
            _ => {}
        }
    }
    for (ws, st) in report.per_workstation.iter().enumerate() {
        if bank_sum[ws].to_bits() != st.completed_work.to_bits() {
            return Err(format!(
                "ws {ws}: bank events sum to {} but the report says {}",
                bank_sum[ws], st.completed_work
            ));
        }
    }
    if timeouts != report.robustness.lease_timeouts {
        return Err(format!(
            "{timeouts} lease_timeout events vs {} in the report",
            report.robustness.lease_timeouts
        ));
    }
    if requeues != timeouts {
        return Err(format!(
            "every lease timeout must requeue: {requeues} requeues vs {timeouts} timeouts"
        ));
    }
    let reported_episodes: u64 = report.per_workstation.iter().map(|w| w.episodes).sum();
    if episodes != reported_episodes {
        return Err(format!(
            "{episodes} episode_start events vs {reported_episodes} episodes in the report"
        ));
    }
    Ok(())
}

/// Validates an on-disk JSONL trace without access to the run that made it:
/// schema per line, and internal consistency — per-workstation `bank` sums
/// (accumulated in file order, then totalled in workstation order) must
/// equal `run_end.banked` bit for bit.
fn validate_file(ctx: &mut ExpContext<'_>, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events: Vec<ValidatedEvent> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let ev = validate_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        events.push(ev);
    }
    let first = events
        .first()
        .ok_or_else(|| format!("{path}: empty trace"))?;
    if first.kind != "run_start" {
        return Err(format!(
            "{path}: first event must be run_start, got {}",
            first.kind
        ));
    }
    let last = events.last().expect("nonempty");
    if last.kind != "run_end" {
        return Err(format!(
            "{path}: last event must be run_end, got {}",
            last.kind
        ));
    }
    let n = first
        .u64("workstations")
        .map_err(|e| format!("{path}: {e}"))? as usize;
    let banked = last.f64("banked").map_err(|e| format!("{path}: {e}"))?;
    // Monte-Carlo traces (workstations = 0) have no farm banking to
    // reconcile; farm traces must balance bitwise.
    if n > 0 {
        let mut bank_sum = vec![0.0f64; n];
        for e in &events {
            if e.kind == "bank" {
                let ws = e.u64("ws")? as usize;
                let work = e.f64("work")?;
                if ws >= n {
                    return Err(format!("{path}: bank names ws {ws} of {n}"));
                }
                bank_sum[ws] += work;
            }
        }
        let total: f64 = bank_sum.iter().sum();
        if total.to_bits() != banked.to_bits() {
            return Err(format!(
                "{path}: bank events sum to {total} but run_end.banked = {banked}"
            ));
        }
    }
    outln!(
        ctx,
        "PASS: {path}: {} events schema-valid, banked {} reconciles",
        events.len(),
        banked
    );
    Ok(())
}

/// Registration for `exp_obs_validate`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_obs_validate"
    }

    fn paper(&self) -> &'static str {
        "infrastructure"
    }

    fn title(&self) -> &'static str {
        "Observability contract: pass-through, schema and reconciliation checks"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        match ctx.opts.input.clone() {
            Some(path) => validate_file(ctx, &path),
            None => self_test(ctx),
        }
    }
}
