//! EXP-ONLINE — learn-while-stealing: a scheduler that starts ignorant of
//! the life function, observes one reclamation time per episode, and
//! re-plans from the accumulating estimate.
//!
//! Measures the per-episode efficiency (banked work vs the oracle that
//! knows `p` exactly) as episodes accumulate — the operational closure of
//! the paper's "approximate knowledge from trace data" premise.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{pct, Table};
use cs_core::search;
use cs_life::{GeometricDecreasing, LifeFunction, Polynomial, Uniform};
use cs_sim::policy::FixedSchedulePolicy;
use cs_sim::run_policy_episode;
use cs_trace::online::{EstimatorKind, OnlineEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPISODES: usize = 600;
const BLOCK: usize = 100;

fn run_learning(
    truth: &dyn LifeFunction,
    c: f64,
    kind: EstimatorKind,
    seed: u64,
    episodes: usize,
) -> Vec<(usize, f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let oracle_plan = search::best_guideline_schedule(truth, c).expect("oracle plan");
    let mut estimator = OnlineEstimator::new(kind, 20);
    let mut blocks = Vec::new();
    let mut banked_block = 0.0;
    let mut oracle_block = 0.0;
    // Until the estimator warms up, use a conservative default: equal
    // chunks of 4c (a practitioner's blind guess).
    let horizon_guess = |est: &OnlineEstimator| -> f64 {
        est.observations().iter().cloned().fold(8.0 * c, f64::max)
    };
    for ep in 1..=episodes {
        let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let r = truth.inverse_survival(u);
        // Plan from current knowledge.
        let schedule = match estimator.current_life() {
            Some(est) => search::best_guideline_schedule(&est, c)
                .map(|plan| plan.schedule)
                .unwrap_or_else(|_| cs_core::Schedule::empty()),
            None => {
                let h = horizon_guess(&estimator);
                let n = (h / (4.0 * c)).ceil() as usize;
                cs_core::Schedule::new(vec![4.0 * c; n.max(1)]).expect("blind schedule")
            }
        };
        let mut pol = FixedSchedulePolicy::new(schedule, "online");
        banked_block += run_policy_episode(&mut pol, c, r);
        let mut oracle_pol = FixedSchedulePolicy::new(oracle_plan.schedule.clone(), "oracle");
        oracle_block += run_policy_episode(&mut oracle_pol, c, r);
        estimator.observe(r).expect("observe");
        if ep % BLOCK == 0 {
            blocks.push((ep, banked_block, oracle_block));
            banked_block = 0.0;
            oracle_block = 0.0;
        }
    }
    blocks
}

/// Registration for `exp_online`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_online"
    }

    fn paper(&self) -> &'static str {
        "§1/§2 premise"
    }

    fn title(&self) -> &'static str {
        "Learn-while-stealing: online estimation with per-episode re-planning"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        let episodes = ctx.budget(EPISODES, 2 * BLOCK);
        outln!(
            ctx,
            "EXP-ONLINE: learning the life function while stealing ({episodes} episodes)\n"
        );
        let cases: Vec<(String, Box<dyn LifeFunction>, f64)> = vec![
            (
                "uniform(L=50)".into(),
                Box::new(Uniform::new(50.0).unwrap()),
                1.0,
            ),
            (
                "poly(d=2,L=60)".into(),
                Box::new(Polynomial::new(2, 60.0).unwrap()),
                1.0,
            ),
            (
                "geo-dec(a=1.5)".into(),
                Box::new(GeometricDecreasing::new(1.5).unwrap()),
                0.5,
            ),
        ];
        for (name, truth, c) in &cases {
            outln!(ctx, "{name} (c = {c}):");
            let mut table = Table::new(&["episodes", "empirical est eff", "best-fit est eff"]);
            let emp = run_learning(truth.as_ref(), *c, EstimatorKind::Empirical, 42, episodes);
            let fit = run_learning(truth.as_ref(), *c, EstimatorKind::BestFit, 42, episodes);
            for (i, &(ep, banked, oracle)) in emp.iter().enumerate() {
                let (_, fb, fo) = fit[i];
                table.row(&[
                    format!("{}-{}", ep - BLOCK + 1, ep),
                    pct(banked / oracle.max(1e-12)),
                    pct(fb / fo.max(1e-12)),
                ]);
            }
            outln!(ctx, "{}", table.render());
        }
        outln!(
            ctx,
            "Shape: efficiency starts low (blind equal chunks), jumps once the estimator"
        );
        outln!(
            ctx,
            "warms up (8 observations), and climbs toward 100% of the oracle within a few"
        );
        outln!(
            ctx,
            "hundred episodes; the parametric estimator converges faster when the truth is"
        );
        outln!(ctx, "inside a fitted family.");
        Ok(())
    }
}
