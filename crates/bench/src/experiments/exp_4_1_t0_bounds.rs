//! EXP-4.1a — §4.1 `t_0` bounds for the polynomial family `p_{d,L}`.
//!
//! Reproduces:
//! * the closed-form bracket `(c/d)^{1/(d+1)} L^{d/(d+1)} ≤ t_0 ≤
//!   2(c/d)^{1/(d+1)} L^{d/(d+1)} + 1` (eqs 4.2/4.3 simplified);
//! * for `d = 1`: `√(cL) ≤ t_0 ≤ 2√(cL) + 1` (eq 4.4) against the true
//!   optimum `√(2cL)` (eq 4.5);
//! * the generic Theorem 3.2/3.3 bracket, checked to contain the
//!   DP-oracle optimal `t_0`.

use crate::harness::{ExpContext, Experiment};
use crate::{grids, outln};
use cs_apps::{fmt, Table};
use cs_core::{bounds, dp};
use cs_life::Polynomial;

/// Registration for `exp_4_1_t0_bounds`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_4_1_t0_bounds"
    }

    fn paper(&self) -> &'static str {
        "§4.1"
    }

    fn title(&self) -> &'static str {
        "t0 bounds for the polynomial family vs the DP oracle (eqs 4.2-4.5)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-4.1a: t0 bounds for p_{{d,L}}(t) = 1 - t^d/L^d (paper §4.1)\n"
        );
        let dp_grid = ctx.budget(2000, 400);
        let mut table = Table::new(&[
            "d",
            "L",
            "c",
            "closed lo",
            "closed hi",
            "thm lo",
            "thm hi",
            "t0* (DP)",
            "in bracket",
            "hi/lo",
        ]);
        for &d in &grids::DEGREES {
            for &l in &grids::LIFESPANS[..3] {
                for &c in &grids::OVERHEADS {
                    let p = Polynomial::new(d, l).expect("family");
                    let (clo, chi) = bounds::polynomial_t0_bounds(d, l, c);
                    let b = bounds::t0_bracket(&p, c).expect("bracket");
                    let oracle = dp::solve_auto(&p, c, dp_grid).expect("dp");
                    let t0 = oracle
                        .schedule
                        .periods()
                        .first()
                        .copied()
                        .unwrap_or(f64::NAN);
                    let slack = 2.0 * oracle.step;
                    let inside = t0 >= b.lower - slack && t0 <= b.upper + slack;
                    table.row(&[
                        d.to_string(),
                        fmt(l, 0),
                        fmt(c, 0),
                        fmt(clo, 1),
                        fmt(chi, 1),
                        fmt(b.lower, 1),
                        fmt(b.upper, 1),
                        fmt(t0, 1),
                        if inside { "yes".into() } else { "NO".into() },
                        fmt(b.upper / b.lower, 2),
                    ]);
                }
            }
        }
        outln!(ctx, "{}", table.render());

        outln!(
            ctx,
            "d = 1 special case (eq 4.4 vs the optimal sqrt(2cL), eq 4.5):"
        );
        let mut t1 = Table::new(&[
            "L",
            "c",
            "sqrt(cL)",
            "sqrt(2cL)",
            "2 sqrt(cL)+1",
            "t0 (exact)",
        ]);
        for &l in &grids::LIFESPANS {
            let c = 5.0;
            let opt = cs_core::optimal::uniform_optimal(l, c).expect("optimal");
            t1.row(&[
                fmt(l, 0),
                fmt(c, 0),
                fmt((c * l).sqrt(), 1),
                fmt((2.0 * c * l).sqrt(), 1),
                fmt(2.0 * (c * l).sqrt() + 1.0, 1),
                fmt(opt.periods()[0], 1),
            ]);
        }
        outln!(ctx, "{}", t1.render());
        outln!(
            ctx,
            "Shape check: the optimal t0 tracks sqrt(2cL) and sits inside [sqrt(cL), 2 sqrt(cL)+1]."
        );
        Ok(())
    }
}
