//! EXP-5.1 — Theorem 5.1: schedules satisfying the recurrence (3.6) on a
//! concave life function beat every `[k, ±δ]`-perturbation.
//!
//! Prints the perturbation landscape: the best improvement any perturbation
//! achieves (negative = theorem confirmed), per family and δ, plus a
//! counter-example schedule showing the margin turns positive when (3.6)
//! is violated.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_core::{perturb, search, Schedule};
use cs_life::{LifeFunction, Polynomial, Uniform};

/// Registration for `exp_5_1_perturb`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_5_1_perturb"
    }

    fn paper(&self) -> &'static str {
        "§5 Thm 5.1"
    }

    fn title(&self) -> &'static str {
        "Local optimality under [k, ±δ]-perturbations (Thm 5.1)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-5.1: local optimality under perturbations (Thm 5.1)\n"
        );
        let deltas = [0.01, 0.1, 1.0, 5.0];
        let mut t = Table::new(&[
            "life function",
            "periods",
            "best perturbation gain",
            "confirmed",
        ]);
        let cases: Vec<(String, Box<dyn LifeFunction>, f64)> = vec![
            (
                "uniform(L=1000)".into(),
                Box::new(Uniform::new(1000.0).unwrap()),
                5.0,
            ),
            (
                "poly(d=2,L=1000)".into(),
                Box::new(Polynomial::new(2, 1000.0).unwrap()),
                5.0,
            ),
            (
                "poly(d=4,L=1000)".into(),
                Box::new(Polynomial::new(4, 1000.0).unwrap()),
                5.0,
            ),
            (
                "geo-inc(L=64)".into(),
                Box::new(cs_life::GeometricIncreasing::new(64.0).unwrap()),
                1.0,
            ),
        ];
        for (name, p, c) in &cases {
            let plan = search::best_guideline_schedule(p.as_ref(), *c).expect("plan");
            let margin = perturb::local_optimality_margin(&plan.schedule, p.as_ref(), *c, &deltas);
            t.row(&[
                name.clone(),
                plan.schedule.len().to_string(),
                format!("{margin:+.3e}"),
                if margin <= 1e-9 {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        outln!(ctx, "{}", t.render());

        // Degradation curve: E(S^{[k,+δ]}) - E(S) as δ grows, uniform case.
        let l = 1000.0;
        let c = 5.0;
        let p = Uniform::new(l).unwrap();
        let plan = search::best_guideline_schedule(&p, c).expect("plan");
        let base = plan.expected_work;
        outln!(
            ctx,
            "Perturbation degradation at k = 0 (uniform, L = {l}, c = {c}):"
        );
        let mut t2 = Table::new(&["delta", "E(S^[0,+d]) - E(S)", "E(S^[0,-d]) - E(S)"]);
        for d in [0.5, 2.0, 8.0, 32.0] {
            let up = perturb::perturb(&plan.schedule, 0, d)
                .map(|s| s.expected_work(&p, c) - base)
                .unwrap_or(f64::NAN);
            let down = perturb::perturb(&plan.schedule, 0, -d)
                .map(|s| s.expected_work(&p, c) - base)
                .unwrap_or(f64::NAN);
            t2.row(&[fmt(d, 1), format!("{up:+.4}"), format!("{down:+.4}")]);
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "(Quadratic loss in delta — the -delta^2/L signature of the linear family.)\n"
        );

        // Counter-example: a schedule violating (3.6) is improvable.
        let bad = Schedule::new(vec![100.0, 400.0]).unwrap();
        let margin = perturb::local_optimality_margin(&bad, &p, c, &deltas);
        outln!(
            ctx,
            "Control: schedule [100, 400] violates (3.6); best perturbation gain = {margin:+.3} (> 0, improvable)."
        );
        Ok(())
    }
}
