//! EXP-5.2 — Theorem 5.2 and Corollaries 5.1–5.3: period-growth laws and
//! period-count bounds, measured on guideline, \[3\]-optimal and DP-oracle
//! schedules.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_core::structure::{check_growth_law, check_strictly_decreasing};
use cs_core::{bounds, dp, optimal, search};
use cs_life::{GeometricDecreasing, GeometricIncreasing, Polynomial, Shape, Uniform};

/// Registration for `exp_5_2_growth`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_5_2_growth"
    }

    fn paper(&self) -> &'static str {
        "§5 Thm 5.2"
    }

    fn title(&self) -> &'static str {
        "Period-growth laws (Thm 5.2) and period-count bounds (Cor 5.2/5.3)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-5.2: growth laws (Thm 5.2) and period counts (Cor 5.2/5.3)\n"
        );

        // Concave side: t_{i+1} <= t_i - c; m below the Cor 5.3 ceiling.
        let dp_grid = ctx.budget(2000, 400);
        let mut t = Table::new(&[
            "scenario",
            "schedule",
            "m",
            "t0/c cap",
            "Cor5.3 bound",
            "thm 5.2",
            "cor 5.1",
        ]);
        let concave: Vec<(String, Box<dyn cs_life::LifeFunction>, f64, f64)> = vec![
            (
                "uniform".into(),
                Box::new(Uniform::new(1000.0).unwrap()),
                1000.0,
                5.0,
            ),
            (
                "poly d=2".into(),
                Box::new(Polynomial::new(2, 1000.0).unwrap()),
                1000.0,
                5.0,
            ),
            (
                "poly d=4".into(),
                Box::new(Polynomial::new(4, 1000.0).unwrap()),
                1000.0,
                5.0,
            ),
            (
                "geo-inc".into(),
                Box::new(GeometricIncreasing::new(256.0).unwrap()),
                256.0,
                2.0,
            ),
        ];
        for (name, p, l, c) in &concave {
            let plan = search::best_guideline_schedule(p.as_ref(), *c).expect("plan");
            let oracle = dp::solve_auto(p.as_ref(), *c, dp_grid).expect("dp");
            for (kind, s) in [
                ("guideline", &plan.schedule),
                ("dp oracle", &oracle.schedule),
            ] {
                let growth_ok = if kind == "dp oracle" {
                    // Grid rounding: allow one step of slack.
                    s.periods()
                        .windows(2)
                        .all(|w| w[1] <= w[0] - c + 2.0 * oracle.step)
                } else {
                    check_growth_law(s, Shape::Concave, *c).is_ok()
                };
                let decreasing_ok = if kind == "dp oracle" {
                    s.periods()
                        .windows(2)
                        .all(|w| w[1] < w[0] + 2.0 * oracle.step)
                } else {
                    check_strictly_decreasing(s).is_ok()
                };
                let m = s.len() as f64;
                let cap = s.periods().first().copied().unwrap_or(0.0) / c;
                let bound = bounds::cor_5_3_period_bound(*l, *c);
                t.row(&[
                    name.clone(),
                    kind.into(),
                    fmt(m, 0),
                    fmt(cap, 1),
                    fmt(bound, 0),
                    if growth_ok {
                        "holds".into()
                    } else {
                        "VIOLATED".into()
                    },
                    if decreasing_ok {
                        "holds".into()
                    } else {
                        "VIOLATED".into()
                    },
                ]);
            }
        }
        outln!(ctx, "{}", t.render());

        // Uniform meets equality: t_i - t_{i+1} = c exactly.
        let c = 5.0;
        let opt = optimal::uniform_optimal(1000.0, c).expect("optimal");
        let max_dev = opt
            .periods()
            .windows(2)
            .map(|w| ((w[0] - w[1]) - c).abs())
            .fold(0.0f64, f64::max);
        outln!(
            ctx,
            "Tightness (remark after Thm 5.2): uniform optimal has t_i - t_{{i+1}} = c exactly; \
             max |dev| = {max_dev:.2e}\n"
        );

        // Convex side: geometric decreasing, t_{i+1} >= t_i - c (equal periods).
        let a = 2.0;
        let c = 1.0;
        let p = GeometricDecreasing::new(a).unwrap();
        let opt = optimal::geometric_decreasing_optimal(a, c).expect("optimal");
        let s = opt.schedule(60);
        let ok = check_growth_law(&s, Shape::Convex, c).is_ok();
        outln!(
            ctx,
            "Convex side (geo-dec a = {a}): optimal equal periods t* = {:.4}; Thm 5.2 convex law: {}",
            opt.period,
            if ok { "holds" } else { "VIOLATED" }
        );
        let plan = search::best_guideline_schedule(&p, c).expect("plan");
        let ok = check_growth_law(&plan.schedule, Shape::Convex, c).is_ok();
        outln!(
            ctx,
            "Guideline schedule ({} periods): Thm 5.2 convex law: {}",
            plan.schedule.len(),
            if ok { "holds" } else { "VIOLATED" }
        );
        outln!(
            ctx,
            "\nInfinite-schedule contrast (Cor 5.1/5.2 fail for convex): the geo-dec optimum"
        );
        outln!(
            ctx,
            "has equal (non-decreasing) periods and is infinite — exactly as the paper notes."
        );
        Ok(())
    }
}
