//! EXP-TRACE — robustness to approximate life functions (paper §1/§2:
//! "our results … extend easily to situations wherein this knowledge is
//! approximate, garnered possibly from trace data").
//!
//! For each ground-truth family: sample traces of growing size, estimate a
//! smooth empirical life function, plan with the estimate, and judge the
//! plan under the truth. Also compares against planning with the best
//! parametric fit.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, pct, Table};
use cs_core::search;
use cs_life::{GeometricDecreasing, LifeFunction, Polynomial, Uniform};
use cs_trace::estimate::{estimate_life, ks_distance};
use cs_trace::fit::fit_best;
use cs_trace::owner::sample_absences;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registration for `exp_trace_robust`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_trace_robust"
    }

    fn paper(&self) -> &'static str {
        "§1/§2"
    }

    fn title(&self) -> &'static str {
        "Scheduling from trace estimates (approximate knowledge of p)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-TRACE: scheduling from trace estimates (approximate knowledge)\n"
        );
        let trace_sizes = ctx.budget(
            [100usize, 1_000, 10_000, 100_000],
            [100usize, 500, 2_000, 10_000],
        );
        let cases: Vec<(String, Box<dyn LifeFunction>, f64)> = vec![
            (
                "uniform(L=50)".into(),
                Box::new(Uniform::new(50.0).unwrap()),
                1.0,
            ),
            (
                "poly(d=2,L=60)".into(),
                Box::new(Polynomial::new(2, 60.0).unwrap()),
                1.0,
            ),
            (
                "geo-dec(a=1.5)".into(),
                Box::new(GeometricDecreasing::new(1.5).unwrap()),
                0.5,
            ),
        ];
        let mut rng = StdRng::seed_from_u64(20_260_706);
        for (name, truth, c) in &cases {
            let truth = truth.as_ref();
            let oracle = search::best_guideline_schedule(truth, *c).expect("oracle");
            let e_oracle = oracle.schedule.expected_work(truth, *c);
            outln!(ctx, "{name} (oracle E = {:.4}):", e_oracle);
            let mut t = Table::new(&[
                "trace n",
                "KS(est,truth)",
                "E empirical-plan",
                "eff",
                "best fit",
                "E fit-plan",
                "eff",
            ]);
            for n in trace_sizes {
                let samples = sample_absences(truth, n, &mut rng).expect("samples");
                let est = estimate_life(&samples, 24).expect("estimate");
                let ks = ks_distance(truth, &est, truth.horizon(1e-6), 400);
                let emp_plan = search::best_guideline_schedule(&est, *c).expect("plan");
                let e_emp = emp_plan.schedule.expected_work(truth, *c);
                let best = fit_best(&samples).expect("fit");
                let fit_plan = search::best_guideline_schedule(&best.life, *c).expect("fit plan");
                let e_fit = fit_plan.schedule.expected_work(truth, *c);
                t.row(&[
                    n.to_string(),
                    fmt(ks, 4),
                    fmt(e_emp, 4),
                    pct(e_emp / e_oracle),
                    best.family.clone(),
                    fmt(e_fit, 4),
                    pct(e_fit / e_oracle),
                ]);
            }
            outln!(ctx, "{}", t.render());
        }
        outln!(
            ctx,
            "Shape: efficiency climbs with trace size and exceeds ~95% from ~1k absences;"
        );
        outln!(
            ctx,
            "the expected-work functional is flat near the optimum (eq 2.1 is a sum of"
        );
        outln!(
            ctx,
            "smooth terms), which is exactly why approximate knowledge suffices."
        );
        Ok(())
    }
}
