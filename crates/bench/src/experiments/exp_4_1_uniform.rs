//! EXP-4.1b — uniform risk: the guideline recurrence equals \[3\]'s optimal
//! recurrence (eq 4.1, `t_k = t_{k−1} − c`), and guideline-searched
//! schedules match the optimal expected work.

use crate::harness::{ExpContext, Experiment};
use crate::{grids, outln};
use cs_apps::{fmt, pct, Table};
use cs_core::recurrence::{guideline_schedule, GuidelineOptions};
use cs_core::{optimal, search};
use cs_life::Uniform;

/// Registration for `exp_4_1_uniform`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_4_1_uniform"
    }

    fn paper(&self) -> &'static str {
        "§4.1"
    }

    fn title(&self) -> &'static str {
        "Uniform risk: guideline recurrence vs the optimal recurrence (eq 4.1)"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-4.1b: uniform risk — guideline vs optimal [3] (paper §4.1, eq 4.1)\n"
        );

        // 1. Recurrence identity: generate from the optimal t0, compare periods.
        let l = 1000.0;
        let c = 5.0;
        let p = Uniform::new(l).expect("uniform");
        let opt = optimal::uniform_optimal(l, c).expect("optimal");
        let guide = guideline_schedule(&p, c, opt.periods()[0], &GuidelineOptions::default())
            .expect("guide");
        outln!(
            ctx,
            "Recurrence check at t0 = {:.2} (L = {l}, c = {c}):",
            opt.periods()[0]
        );
        let mut t = Table::new(&["k", "optimal t_k", "guideline t_k", "diff"]);
        for k in 0..opt.len().min(guide.len()).min(8) {
            t.row(&[
                k.to_string(),
                fmt(opt.periods()[k], 4),
                fmt(guide.periods()[k], 4),
                format!("{:.2e}", (opt.periods()[k] - guide.periods()[k]).abs()),
            ]);
        }
        outln!(ctx, "{}", t.render());

        // 2. Expected-work comparison across the sweep.
        let mut t2 = Table::new(&[
            "L",
            "c",
            "m (opt)",
            "E optimal",
            "E guideline",
            "efficiency",
        ]);
        for &l in &grids::LIFESPANS {
            for &c in &grids::OVERHEADS {
                let p = Uniform::new(l).expect("uniform");
                let opt = optimal::uniform_optimal(l, c).expect("optimal");
                let e_opt = opt.expected_work(&p, c);
                let plan = search::best_guideline_schedule(&p, c).expect("plan");
                t2.row(&[
                    fmt(l, 0),
                    fmt(c, 0),
                    opt.len().to_string(),
                    fmt(e_opt, 2),
                    fmt(plan.expected_work, 2),
                    pct(plan.expected_work / e_opt),
                ]);
            }
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "Expected shape: efficiency = 100.0% everywhere (identical recurrences)."
        );
        Ok(())
    }
}
