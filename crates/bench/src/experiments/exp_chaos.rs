//! EXP-CHAOS — the kill-anywhere crash-recovery guarantee, enforced.
//!
//! Journals a seeded faulty farm run (with snapshot sidecars on a fixed
//! cadence), then kills the master at (sampled) journal record boundaries
//! — half the trials additionally leave a torn half-written record, the
//! signature of a real mid-write crash, and each trial cycles the sidecar
//! through intact / corrupted / absent — resumes from the journal, and
//! demands four exact properties per kill point:
//!
//! 1. the resumed `FarmReport` is **bitwise identical** to the
//!    uninterrupted run's,
//! 2. the stitched journal is **byte identical** to the uninterrupted
//!    journal,
//! 3. work is conserved (banked + remaining equals the initial bag mass),
//! 4. the snapshot outcome matches the staged sidecar: intact →
//!    O(snapshot-interval) fast path (or `journal-ahead` fallback when the
//!    snapshot outruns the truncated journal), corrupted → graceful
//!    full-redo fallback, absent → plain redo.
//!
//! Disk-faulted scenarios additionally resume each kill point through a
//! seeded `FaultyVfs` (failed/short writes, fsync errors, rename
//! failures, ENOSPC, cycling fail-stop and degrade policies) and demand a
//! bitwise report or the typed injected error, plus bitwise recovery
//! under a clean filesystem afterwards.
//!
//! Any deviation fails the experiment — this is the CI tripwire behind the
//! durability layer, not a statistical study. See `cs_bench::chaos` for
//! the harness and DESIGN.md for the recovery-by-deterministic-redo
//! design.

use crate::chaos::{run_chaos, ChaosConfig};
use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, Table};
use cs_obs::RunSummary;

/// Registration for `exp_chaos`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_chaos"
    }

    fn paper(&self) -> &'static str {
        "§4.2 Remark (saves ⇄ recovery, systemized)"
    }

    fn title(&self) -> &'static str {
        "Chaos harness: kill the master at every journal boundary, resume bit-identically"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        // Quick mode samples boundaries; the full run kills everywhere.
        let scenarios: Vec<ChaosConfig> = vec![
            ChaosConfig {
                workstations: 2,
                tasks: ctx.budget(60, 25),
                seed: 99,
                intensity: 0.8,
                sample: ctx.budget(None, Some(16)),
                disk_faults: true,
                ..Default::default()
            },
            ChaosConfig {
                workstations: 4,
                tasks: ctx.budget(200, 60),
                seed: 4242,
                intensity: 0.6,
                sample: ctx.budget(Some(64), Some(12)),
                disk_faults: true,
                ..Default::default()
            },
            ChaosConfig {
                workstations: 6,
                tasks: ctx.budget(300, 80),
                seed: 7,
                intensity: 1.2,
                sample: ctx.budget(Some(64), Some(12)),
                ..Default::default()
            },
        ];
        outln!(
            ctx,
            "EXP-CHAOS: deterministic master-kill / resume sweep over journaled farms\n"
        );
        outln!(
            ctx,
            "Per kill point: resumed report bitwise == uninterrupted report, stitched"
        );
        outln!(
            ctx,
            "journal byte == uninterrupted journal, and banked + remaining == bag mass.\n"
        );
        let mut t = Table::new(&[
            "ws",
            "tasks",
            "intensity",
            "records",
            "kills",
            "torn",
            "snap",
            "fallback",
            "dfaults",
            "exact",
        ]);
        let mut failures = Vec::new();
        for cfg in &scenarios {
            let out = run_chaos(cfg)?;
            t.row(&[
                cfg.workstations.to_string(),
                cfg.tasks.to_string(),
                fmt(cfg.intensity, 2),
                out.records.to_string(),
                out.kill_points.to_string(),
                out.torn_trials.to_string(),
                out.snapshot_resumes.to_string(),
                out.snapshot_fallbacks.to_string(),
                if cfg.disk_faults {
                    format!("{}k/{}", out.fault_kinds_fired.len(), out.disk_fault_trials)
                } else {
                    "-".to_string()
                },
                format!("{}/{}", out.resumed_ok, out.kill_points),
            ]);
            if !out.ok() {
                failures.extend(
                    out.mismatches
                        .iter()
                        .map(|m| format!("seed {}: {m}", cfg.seed)),
                );
            }
            if cfg.seed == 4242 {
                RunSummary::new("exp_chaos")
                    .int("records", out.records as u64)
                    .int("kill_points", out.kill_points as u64)
                    .int("torn_trials", out.torn_trials as u64)
                    .int("corrupt_trials", out.corrupt_trials as u64)
                    .int("snapshot_resumes", out.snapshot_resumes as u64)
                    .int("snapshot_fallbacks", out.snapshot_fallbacks as u64)
                    .int("resumed_ok", out.resumed_ok as u64)
                    .int("disk_fault_trials", out.disk_fault_trials as u64)
                    .int("fault_kinds_fired", out.fault_kinds_fired.len() as u64)
                    .int("degraded_completions", out.degraded_completions as u64)
                    .int("fail_stop_errors", out.fail_stop_errors as u64)
                    .int("mismatches", out.mismatches.len() as u64)
                    .emit_to(ctx.out)
                    .map_err(|e| e.to_string())?;
            }
        }
        outln!(ctx, "{}", t.render());
        if failures.is_empty() {
            outln!(
                ctx,
                "Kill-anywhere guarantee holds: every resume reproduced the uninterrupted"
            );
            outln!(
                ctx,
                "run exactly — the journal cadence (the paper's own §4.2 save guideline)"
            );
            outln!(
                ctx,
                "loses nothing a resume cannot regenerate, and a snapshot sidecar only"
            );
            outln!(
                ctx,
                "shortens recovery (corrupt or stale sidecars degrade to full redo)."
            );
            Ok(())
        } else {
            for f in &failures {
                outln!(ctx, "MISMATCH: {f}");
            }
            Err(format!(
                "chaos harness found {} recovery mismatches",
                failures.len()
            ))
        }
    }
}
