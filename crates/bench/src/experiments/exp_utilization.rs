//! EXP-UTIL — long-run steal-rate: across many episodes, what fraction of
//! the owner's total absence time does each chunk-sizing policy convert to
//! banked work?
//!
//! This is the practitioner's summary number for the paper's whole
//! enterprise: an upper bound is `E[R − c·(periods used)]/E[R]` and the
//! fluid ceiling is `1`; naive policies leave large fractions on the floor
//! either as per-period overhead (chunks too small) or as destroyed work
//! (chunks too large).

use crate::harness::{ExpContext, Experiment};
use crate::{canonical_scenarios, outln};
use cs_apps::{pct, Table};
use cs_core::{optimal, search};
use cs_life::LifeFunction;
use cs_sim::policy::{ChunkPolicy, FixedSchedulePolicy, FixedSizePolicy, GreedyPolicy};
use cs_sim::run_policy_episode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPISODES: usize = 4000;

/// Runs `episodes` episodes of a policy against reclaim times sampled from
/// `p`; returns (total banked, total absence time).
fn steal_rate(
    policy: &mut dyn ChunkPolicy,
    p: &dyn LifeFunction,
    c: f64,
    seed: u64,
    episodes: usize,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut banked = 0.0;
    let mut absent = 0.0;
    for _ in 0..episodes {
        let u = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let r = p.inverse_survival(u);
        absent += r;
        banked += run_policy_episode(policy, c, r);
    }
    (banked, absent)
}

/// Registration for `exp_utilization`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_utilization"
    }

    fn paper(&self) -> &'static str {
        "§1/§2 objective"
    }

    fn title(&self) -> &'static str {
        "Long-run steal-rate by chunk-sizing policy"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        let episodes = ctx.budget(EPISODES, 800);
        outln!(
            ctx,
            "EXP-UTIL: long-run steal-rate by policy ({episodes} episodes each)\n"
        );
        for s in canonical_scenarios() {
            let p = s.life.as_ref();
            let c = s.c;
            outln!(
                ctx,
                "{} (c = {c}, mean absence {:.2}):",
                s.name,
                p.mean_lifetime()
            );
            let plan = search::best_guideline_schedule(p, c).expect("plan");
            // Static guideline schedule replayed per episode (a-priori planning;
            // identical to progressive planning under the exact p).
            let mut policies: Vec<Box<dyn ChunkPolicy>> = vec![
                Box::new(FixedSchedulePolicy::new(plan.schedule.clone(), "guideline")),
                Box::new(GreedyPolicy::new(s.life.clone(), c)),
            ];
            // Fixed sizes spanning the sensible range.
            let horizon = p.horizon(1e-9);
            for factor in [0.02, 0.1, 0.4] {
                let t = (horizon * factor).max(c * 1.5);
                policies.push(Box::new(FixedSizePolicy::new(t, horizon)));
            }
            // The optimal baseline where closed forms exist.
            if s.name.starts_with("uniform") {
                let opt = optimal::uniform_optimal(1000.0, c).expect("optimal");
                policies.push(Box::new(FixedSchedulePolicy::new(opt, "optimal [3]")));
            } else if s.name.starts_with("geo-dec") {
                let opt = optimal::geometric_decreasing_optimal(2.0, c).expect("optimal");
                policies.push(Box::new(FixedSchedulePolicy::new(
                    opt.schedule(400),
                    "optimal [3]",
                )));
            }
            let mut table = Table::new(&["policy", "steal rate", "banked/episode"]);
            for pol in policies.iter_mut() {
                let (banked, absent) = steal_rate(pol.as_mut(), p, c, 77, episodes);
                table.row(&[
                    pol.name(),
                    pct(banked / absent),
                    format!("{:.3}", banked / episodes as f64),
                ]);
            }
            outln!(ctx, "{}", table.render());
        }
        outln!(
            ctx,
            "Shape: the guideline policy tracks the optimal baseline's steal rate and"
        );
        outln!(
            ctx,
            "dominates fixed sizes outside their sweet spot; the rate itself is far below"
        );
        outln!(
            ctx,
            "100% — the overhead c and the draconian losses are intrinsic to the contract."
        );
        Ok(())
    }
}
