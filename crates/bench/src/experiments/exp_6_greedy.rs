//! EXP-6a — "How good are greedy schedules?" (paper §6).
//!
//! The paper asserts greedy is optimal for the geometric-decreasing
//! scenario and suboptimal for uniform risk. We measure myopic greedy
//! (each period maximizes its own expected contribution) against the
//! guideline search and the best available optimum across all four
//! canonical scenarios.

use crate::harness::{ExpContext, Experiment};
use crate::{canonical_scenarios, outln};
use cs_apps::{fmt, pct, Table};
use cs_core::greedy::{greedy_schedule, GreedyOptions};
use cs_core::{dp, optimal, search};
use cs_life::GeometricDecreasing;

/// Registration for `exp_6_greedy`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_6_greedy"
    }

    fn paper(&self) -> &'static str {
        "§6"
    }

    fn title(&self) -> &'static str {
        "Greedy vs guideline vs optimal across the canonical scenarios"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(ctx, "EXP-6a: greedy vs guideline vs optimal (paper §6)\n");
        let dp_grid = ctx.budget(2400, 600);
        let mut t = Table::new(&[
            "scenario",
            "E optimal",
            "E guideline",
            "E greedy",
            "guide eff",
            "greedy eff",
        ]);
        for s in canonical_scenarios() {
            let p = s.life.as_ref();
            let c = s.c;
            // Best available optimum: family closed form where known, else DP.
            let e_opt = match s.name.as_str() {
                "uniform(L=1000)" => optimal::uniform_optimal(1000.0, c)
                    .unwrap()
                    .expected_work(p, c),
                "geo-dec(a=2)" => {
                    optimal::geometric_decreasing_optimal(2.0, c)
                        .unwrap()
                        .expected_work
                }
                "geo-inc(L=64)" => {
                    let r3 = optimal::geometric_increasing_optimal(64.0, c)
                        .unwrap()
                        .expected_work(p, c);
                    r3.max(dp::solve_auto(p, c, dp_grid).unwrap().expected_work)
                }
                _ => dp::solve_auto(p, c, dp_grid).unwrap().expected_work,
            };
            let plan = search::best_guideline_schedule(p, c).expect("plan");
            let greedy = greedy_schedule(p, c, &GreedyOptions::default()).expect("greedy");
            let e_greedy = greedy.expected_work(p, c);
            t.row(&[
                s.name.clone(),
                fmt(e_opt, 3),
                fmt(plan.expected_work, 3),
                fmt(e_greedy, 3),
                pct(plan.expected_work / e_opt),
                pct(e_greedy / e_opt),
            ]);
        }
        outln!(ctx, "{}", t.render());

        // The §6 claim under the microscope: geometric-decreasing.
        let a = 2.0;
        let c = 1.0;
        let p = GeometricDecreasing::new(a).unwrap();
        let opt = optimal::geometric_decreasing_optimal(a, c).unwrap();
        let greedy = greedy_schedule(&p, c, &GreedyOptions::default()).unwrap();
        let greedy_period = greedy.periods()[0];
        outln!(ctx, "Geometric-decreasing detail (a = {a}, c = {c}):");
        outln!(
            ctx,
            "  greedy period  = c + 1/ln a           = {:.6}",
            c + 1.0 / a.ln()
        );
        outln!(
            ctx,
            "  optimal period t*: t* + a^-t*/ln a = c + 1/ln a  ->  t* = {:.6}",
            opt.period
        );
        outln!(ctx, "  measured greedy period = {greedy_period:.6}");
        outln!(
            ctx,
            "  both are equal-period schedules; efficiency of greedy = {}",
            pct(greedy.expected_work(&p, c) / opt.expected_work)
        );
        outln!(
            ctx,
            "\nReading of the paper's claim: myopic greedy recovers the optimal *structure*\n\
             (constant periods) with a slightly longer period — near-optimal value, not exact.\n\
             For uniform risk greedy is measurably suboptimal, as the paper asserts."
        );
        Ok(())
    }
}
