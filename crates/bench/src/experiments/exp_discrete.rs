//! EXP-DISC — the §6 "discrete analogue" question, measured two ways:
//!
//! 1. **Task quantization**: how much of the fluid schedule's capacity is
//!    lost when periods must be filled with indivisible tasks of grain `g`
//!    (loss ≤ one grain per period; efficiency → 1 as `g → 0`).
//! 2. **Grid discretization**: how fast the DP-on-a-grid optimum converges
//!    to the continuous optimum as the grid refines — evidence that the
//!    continuous guidelines *do* yield valuable discrete analogues.

use crate::harness::{ExpContext, Experiment};
use crate::outln;
use cs_apps::{fmt, pct, Table};
use cs_core::{dp, optimal, search};
use cs_life::Uniform;
use cs_tasks::quantization::fluid_vs_packed;
use cs_tasks::workloads;

/// Registration for `exp_discrete`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_discrete"
    }

    fn paper(&self) -> &'static str {
        "§6"
    }

    fn title(&self) -> &'static str {
        "Discrete analogues: task quantization and DP-grid convergence"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-DISC: discrete analogues of the continuous model (paper §6)\n"
        );

        // 1. Task-grain sweep.
        let l = 1000.0;
        let c = 5.0;
        let p = Uniform::new(l).unwrap();
        let plan = search::best_guideline_schedule(&p, c).expect("plan");
        outln!(
            ctx,
            "Task quantization on the uniform guideline schedule ({} periods, fluid capacity {:.0}):",
            plan.schedule.len(),
            plan.schedule.max_work(c)
        );
        let bag_tasks = ctx.budget(200_000, 40_000);
        let mut t = Table::new(&["grain", "packed work", "efficiency", "bound 1-g*m/W"]);
        for grain in [0.1, 0.5, 2.0, 8.0, 32.0] {
            let mut bag = workloads::uniform(bag_tasks, grain).expect("bag");
            let r = fluid_vs_packed(&plan.schedule, &mut bag, c);
            let m = plan.schedule.len() as f64;
            let bound = 1.0 - grain * m / r.fluid_work;
            t.row(&[
                fmt(grain, 1),
                fmt(r.packed_work, 1),
                pct(r.efficiency),
                pct(bound.max(0.0)),
            ]);
        }
        outln!(ctx, "{}", t.render());
        outln!(
            ctx,
            "Shape: efficiency >= 1 - (one grain per period)/capacity, approaching 100% for"
        );
        outln!(ctx, "fine grains — the fluid model is the correct limit.\n");

        // 2. DP grid refinement.
        outln!(
            ctx,
            "Grid discretization: DP optimum vs continuous optimum (uniform, L = {l}, c = {c}):"
        );
        let e_star = optimal::uniform_optimal(l, c)
            .expect("optimal")
            .expected_work(&p, c);
        let grid_cells = ctx.budget([100usize, 400, 1600, 6400], [100usize, 200, 400, 800]);
        let mut t2 = Table::new(&["grid cells", "E (DP grid)", "gap vs continuous"]);
        for n in grid_cells {
            let sol = dp::solve_auto(&p, c, n).expect("dp");
            t2.row(&[
                n.to_string(),
                fmt(sol.expected_work, 4),
                format!("{:.3}%", 100.0 * (e_star - sol.expected_work) / e_star),
            ]);
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "Shape: the discrete optimum converges to the continuous one from below as the"
        );
        outln!(
            ctx,
            "grid refines; with ~10 grid cells per period the gap is already sub-percent."
        );
        Ok(())
    }
}
