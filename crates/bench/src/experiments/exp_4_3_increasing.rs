//! EXP-4.3 — geometric-increasing risk `(2^L − 2^t)/(2^L − 1)` (paper §4.3).
//!
//! Reproduces:
//! * the guideline recurrence (4.7) `t_{k+1} = log₂((t_k − c)·ln2 + 1)` vs
//!   \[3\]'s optimal recurrence `t_{k+1} = log₂(t_k − c + 2)`;
//! * guideline-search efficiency vs the \[3\]-shape optimum and the DP
//!   oracle;
//! * the paper's displayed `t_0` inequality
//!   `2^{t0/2}·t0² ≤ 2^L ≤ 2^{t0}·t0²` — and the discrepancy with its
//!   stated conclusion `t_0 = L/log²L`.

use crate::harness::{ExpContext, Experiment};
use crate::{grids, outln};
use cs_apps::{fmt, pct, Table};
use cs_core::recurrence::geometric_increasing_step;
use cs_core::{dp, optimal, search};
use cs_life::GeometricIncreasing;

/// Registration for `exp_4_3_increasing`.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "exp_4_3_increasing"
    }

    fn paper(&self) -> &'static str {
        "§4.3"
    }

    fn title(&self) -> &'static str {
        "Geometric-increasing risk: recurrence (4.7), t0 inequality, efficiency"
    }

    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String> {
        outln!(
            ctx,
            "EXP-4.3: geometric increasing risk (coffee break) — paper §4.3\n"
        );

        // Recurrence shapes side by side.
        let c = 1.0;
        outln!(ctx, "Recurrence comparison from t = 8 (c = {c}):");
        let mut t = Table::new(&["step", "guideline (4.7)", "[3] optimal"]);
        let mut g = 8.0f64;
        let mut r = 8.0f64;
        for k in 0..6 {
            t.row(&[k.to_string(), fmt(g, 4), fmt(r, 4)]);
            g = geometric_increasing_step(c, g).unwrap_or(f64::NAN);
            r = optimal::geometric_increasing_step_ref3(c, r).unwrap_or(f64::NAN);
            if !g.is_finite() || !r.is_finite() {
                break;
            }
        }
        outln!(ctx, "{}", t.render());

        let dp_grid = ctx.budget(2000, 400);
        let mut t2 = Table::new(&[
            "L",
            "c",
            "t0*",
            "L - t0*",
            "2 log2 t0*",
            "L/log^2 L",
            "E [3]-shape",
            "E guideline",
            "E DP",
            "guide eff",
        ]);
        for &l in &grids::GEO_INC_LIFESPANS {
            for &c in &[0.5, 1.0, 2.0] {
                let p = GeometricIncreasing::new(l).expect("family");
                let opt = optimal::geometric_increasing_optimal(l, c).expect("optimal");
                let e_ref3 = opt.expected_work(&p, c);
                let plan = search::best_guideline_schedule(&p, c).expect("plan");
                let oracle = dp::solve_auto(&p, c, dp_grid).expect("dp");
                let e_best = e_ref3.max(oracle.expected_work);
                let t0 = opt.periods()[0];
                t2.row(&[
                    fmt(l, 0),
                    fmt(c, 1),
                    fmt(t0, 2),
                    fmt(l - t0, 2),
                    fmt(2.0 * t0.log2(), 2),
                    fmt(l / (l.log2() * l.log2()), 2),
                    fmt(e_ref3, 3),
                    fmt(plan.expected_work, 3),
                    fmt(oracle.expected_work, 3),
                    pct(plan.expected_work / e_best),
                ]);
            }
        }
        outln!(ctx, "{}", t2.render());
        outln!(
            ctx,
            "Measured: t0* = L - Θ(log L), matching the DISPLAYED inequality\n\
             2^(t0/2) t0^2 <= 2^L <= 2^(t0) t0^2 — and contradicting the paper's stated\n\
             conclusion t0 = L/log^2 L (compare columns 'L - t0*' ~ '2 log2 t0*' vs 'L/log^2 L')."
        );
        Ok(())
    }
}
