//! The registry-driven experiment harness.
//!
//! Every `exp_*` experiment is a [`Experiment`] implementation registered
//! in [`crate::experiments::all`]. The standalone binaries and the
//! `cyclesteal exp` subcommand both run experiments through this module,
//! so a new experiment is a ~50-line registration in
//! `crates/bench/src/experiments/` instead of a new binary with its own
//! plumbing.
//!
//! Output discipline: experiments never print directly — they write through
//! [`ExpContext::out`] (see the [`outln!`](crate::outln) macro), which is
//! stdout for the binaries, a capture buffer for the golden-output tests,
//! and stdout-behind-a-header for `cyclesteal exp`. Observable runs (the
//! farm and episode simulators) should route through [`ExpContext::sink`]
//! so `--trace-out` captures an event stream; the observation layer's
//! pass-through guarantee keeps the printed numbers bit-identical either
//! way.

use cs_obs::{
    EventSink, JsonlSink, MetricsRegistry, NoopSink, ProgressSink, SpanProfiler, TeeSink,
};
use std::io::Write;

/// Options for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Shrink Monte-Carlo budgets for a fast smoke run (CI). Tables keep
    /// their shape; the numbers are noisier.
    pub quick: bool,
    /// Write the run's event stream to this JSONL path.
    pub trace_out: Option<String>,
    /// Positional input (used by `exp_obs_validate` to validate a trace
    /// file instead of running its self-test).
    pub input: Option<String>,
    /// Wall-clock cadence for `RUN-PROGRESS` heartbeats on stderr while an
    /// experiment's observed runs are in flight (`None` = silent,
    /// `Some(0.0)` = every event). Strictly pass-through: report text and
    /// trace bytes are identical with heartbeats on or off.
    pub progress_every: Option<f64>,
}

/// Execution context handed to [`Experiment::run`].
pub struct ExpContext<'a> {
    /// Where all report text goes (never print directly).
    pub out: &'a mut dyn Write,
    /// Event sink for observable runs (`NoopSink` unless `--trace-out`).
    pub sink: &'a mut dyn EventSink,
    /// The run options.
    pub opts: &'a ExpOptions,
}

impl ExpContext<'_> {
    /// The Monte-Carlo budget scale: picks `quick` in smoke runs, `full`
    /// otherwise. Keeps the quick-mode branches in experiment bodies
    /// one-liners.
    pub fn budget<T>(&self, full: T, quick: T) -> T {
        if self.opts.quick {
            quick
        } else {
            full
        }
    }
}

/// Writes one line to the experiment context (the harness `println!`).
///
/// Usable only inside functions returning `Result<_, String>`.
#[macro_export]
macro_rules! outln {
    ($ctx:expr) => {
        writeln!($ctx.out).map_err(|e| e.to_string())?
    };
    ($ctx:expr, $($arg:tt)*) => {
        writeln!($ctx.out, $($arg)*).map_err(|e| e.to_string())?
    };
}

/// One registered experiment: a paper table/claim reproduced by `run`.
pub trait Experiment: Sync {
    /// Stable identifier (`exp_4_2_geometric`), also the binary name.
    fn id(&self) -> &'static str;
    /// Where in the paper the claim lives (e.g. `§4.2`).
    fn paper(&self) -> &'static str;
    /// One-line description for `exp --list`.
    fn title(&self) -> &'static str;
    /// Produces the report tables on `ctx.out`.
    fn run(&self, ctx: &mut ExpContext<'_>) -> Result<(), String>;
}

/// Looks up a registered experiment by id.
pub fn by_id(id: &str) -> Option<&'static dyn Experiment> {
    crate::experiments::all().into_iter().find(|e| e.id() == id)
}

/// Runs one experiment with the given options, writing the report to
/// `out`. Builds the event sink from `opts.trace_out`.
pub fn run_to_writer(
    exp: &dyn Experiment,
    opts: &ExpOptions,
    out: &mut dyn Write,
) -> Result<(), String> {
    run_to_writer_profiled(exp, opts, out).map(drop)
}

/// Like [`run_to_writer`], but times the experiment under a span named
/// after `exp.id()` and returns the profiler's registry (one
/// `span_ns.<id>` histogram sample) — the raw material for
/// `bench_profile`'s BENCH.json. The span's events go to a local
/// [`NoopSink`], not the trace: an on-disk trace keeps its
/// `run_start`-first / `run_end`-last layout, which `exp_obs_validate`
/// and `cyclesteal obs check` both enforce.
pub fn run_to_writer_profiled(
    exp: &dyn Experiment,
    opts: &ExpOptions,
    out: &mut dyn Write,
) -> Result<MetricsRegistry, String> {
    let mut prof = SpanProfiler::new();
    let mut span_sink = NoopSink;
    let mut progress = opts
        .progress_every
        .map(|every| ProgressSink::new(std::io::stderr(), every));
    let mut jsonl = match &opts.trace_out {
        None => None,
        Some(path) => {
            let mut sink =
                JsonlSink::create(path).map_err(|e| format!("--trace-out {path}: {e}"))?;
            if progress.is_some() {
                // A heartbeating sweep is being watched live: line-buffer
                // the trace so `tail -f` sees events as they happen.
                sink = sink.flush_every(1);
            }
            Some(sink)
        }
    };
    {
        let mut tee = TeeSink::new();
        if let Some(sink) = jsonl.as_mut() {
            tee.push(sink);
        }
        if let Some(sink) = progress.as_mut() {
            tee.push(sink);
        }
        let span = prof.start(exp.id(), &mut span_sink);
        let result = exp.run(&mut ExpContext {
            out,
            sink: &mut tee,
            opts,
        });
        prof.end(span, &mut span_sink);
        result?;
    }
    if let Some(sink) = jsonl {
        let path = opts.trace_out.as_deref().unwrap_or_default();
        let lines = sink
            .finish()
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
        prof.bump("trace_events", lines);
        writeln!(out, "trace-out: {lines} events -> {path}").map_err(|e| e.to_string())?;
    }
    Ok(prof.take_registry())
}

/// One sweep entry: an experiment paired with its buffered report bytes
/// (or the error that stopped it).
pub type SweepEntry = (&'static dyn Experiment, Result<Vec<u8>, String>);

/// Runs every registered experiment, rendering each report into its own
/// byte buffer, and returns one [`SweepEntry`] per experiment in registry
/// order. With `threads > 1` the experiments run concurrently on the
/// `cs-pool` work-stealing runtime; because each report is buffered whole
/// and returned in registry order, the concatenated output is
/// byte-identical to a serial sweep for every thread count.
///
/// `opts.trace_out` is not supported here (a single trace file cannot
/// carry interleaved event streams) — callers run traced sweeps serially
/// through [`run_to_writer`].
pub fn run_all_buffered(opts: &ExpOptions, threads: usize) -> Vec<SweepEntry> {
    run_all_buffered_metrics(opts, threads).0
}

/// [`run_all_buffered`] that also hands back the work-stealing pool's
/// scheduling snapshot for the sweep (`None` on the serial path), so the
/// caller can surface worker utilization — the `cyclesteal exp --all`
/// sweep turns it into a `RUN-SUMMARY` line. The report bytes stay
/// identical to [`run_all_buffered`] for every thread count.
pub fn run_all_buffered_metrics(
    opts: &ExpOptions,
    threads: usize,
) -> (Vec<SweepEntry>, Option<cs_pool::PoolMetrics>) {
    assert!(
        opts.trace_out.is_none(),
        "run_all_buffered cannot multiplex --trace-out"
    );
    let all = crate::experiments::all();
    let run_one = |i: usize| -> Result<Vec<u8>, String> {
        let mut buf = Vec::new();
        run_to_writer(all[i], opts, &mut buf).map(|()| buf)
    };
    let (results, metrics) = if threads > 1 {
        let pool = cs_pool::Pool::new(threads);
        let results = pool.map_indexed(all.len(), run_one);
        (results, Some(pool.metrics()))
    } else {
        ((0..all.len()).map(run_one).collect(), None)
    };
    (all.into_iter().zip(results).collect(), metrics)
}

/// Entry point for the thin `exp_*` binaries: parses `[--quick]
/// [--trace-out <path>] [input]` from the command line, runs the
/// experiment on stdout, and maps errors to a failing exit code.
pub fn main_for(exp: &dyn Experiment) -> std::process::ExitCode {
    let mut opts = ExpOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trace-out" => match args.next() {
                Some(path) => opts.trace_out = Some(path),
                None => {
                    eprintln!("error: --trace-out needs a path");
                    return std::process::ExitCode::FAILURE;
                }
            },
            "--progress-every" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(every) if every.is_finite() && every >= 0.0 => {
                    opts.progress_every = Some(every)
                }
                _ => {
                    eprintln!("error: --progress-every needs a non-negative number of seconds");
                    return std::process::ExitCode::FAILURE;
                }
            },
            other if !other.starts_with("--") && opts.input.is_none() => {
                opts.input = Some(other.to_string());
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (expected [--quick] \
                     [--trace-out <path>] [--progress-every <s>] [input])"
                );
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match run_to_writer(exp, &opts, &mut out) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_listable() {
        let all = crate::experiments::all();
        assert_eq!(all.len(), 22, "all 22 experiments registered");
        let mut ids: Vec<&str> = all.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment id");
        for e in &all {
            assert!(e.id().starts_with("exp_"), "{}", e.id());
            assert!(!e.title().is_empty(), "{}", e.id());
            assert!(!e.paper().is_empty(), "{}", e.id());
            assert!(by_id(e.id()).is_some());
        }
        assert!(by_id("exp_nope").is_none());
    }

    #[test]
    fn profiled_run_records_an_experiment_span() {
        let exp = by_id("exp_3_2_existence").unwrap();
        let opts = ExpOptions {
            quick: true,
            ..Default::default()
        };
        let mut out = Vec::new();
        let reg = run_to_writer_profiled(exp, &opts, &mut out).unwrap();
        let hist = reg
            .histogram(&format!("span_ns.{}", exp.id()))
            .expect("experiment span histogram");
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() > 0.0);
        assert!(!out.is_empty(), "report text captured");
        // Profiling must not change the report text.
        let mut plain = Vec::new();
        run_to_writer(exp, &opts, &mut plain).unwrap();
        assert_eq!(out, plain);
    }
}
