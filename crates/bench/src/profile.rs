//! The perf-baseline harness behind the `bench_profile` binary.
//!
//! Runs a pinned grid of scenarios — serial/parallel Monte-Carlo, a clean
//! and a faulty farm, crash-recovery latency at three journaled run
//! lengths (snapshot fast path vs full redo replay), and the trace
//! analyzer itself — under the span profiler, and renders the result as
//! `BENCH.json`: a machine-readable baseline
//! (`{commit, date, scenarios: [...]}`) that `cyclesteal obs diff --bench
//! old.json new.json` compares across commits, flagging only regressions
//! (wall time up, throughput down).
//!
//! The `recovery_snapshot_*` / `recovery_redo_*` pairs document the O(1)
//! recovery claim: snapshot-path resume cost stays flat as the run length
//! grows (it replays only the records after the last sidecar), while redo
//! resume cost scales with the whole journal.
//!
//! Unlike the Criterion benches (statistical, minutes), this is one
//! timed pass per scenario: coarse numbers, but cheap enough for CI and
//! stable enough for a >20% regression gate.

use cs_life::{ArcLife, Polynomial, Uniform};
use cs_now::farm::{Farm, FarmConfig, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::{
    default_snapshot_path, guideline_fsync_policy, guideline_snapshot_interval, JournalOptions,
    SnapshotOutcome,
};
use cs_now::{ring_snapshot_path, segment_meta_path};
use cs_obs::{check_lines, Event, EventSink, MemorySink, MetricsRegistry, SpanProfiler};
use cs_sim::{simulate_expected_work_parallel_profiled, simulate_expected_work_profiled};
use cs_tasks::{workloads, TaskBag};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Options for one baseline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileOptions {
    /// Shrink workloads for a CI smoke pass (numbers are noisier; the
    /// JSON shape is identical).
    pub quick: bool,
}

/// Counts events without storing them (throughput denominator).
#[derive(Debug, Default)]
struct CountingSink {
    events: u64,
}

impl EventSink for CountingSink {
    fn emit(&mut self, _event: &Event) {
        self.events += 1;
    }
}

/// Per-span timing summary inside one scenario.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Span name (`mc.trial_batch`, `farm.dispatch`, …).
    pub name: String,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total nanoseconds across all spans of this name.
    pub total_ns: f64,
    /// Mean duration (ns).
    pub mean_ns: f64,
    /// Median duration (ns).
    pub p50_ns: f64,
    /// 99th-percentile duration (ns).
    pub p99_ns: f64,
}

/// One scenario's measured baseline numbers.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Stable scenario id (the diff key).
    pub id: &'static str,
    /// Wall-clock nanoseconds for the whole scenario.
    pub wall_ns: u64,
    /// Events emitted per second (`None` where no stream is produced).
    pub events_per_sec: Option<f64>,
    /// Monte-Carlo trials per second (`None` for non-MC scenarios).
    pub mc_trials_per_sec: Option<f64>,
    /// Wall-clock speedup over this scenario's 1-thread row (`None`
    /// outside the `mc_scaling_*` ladder).
    pub speedup: Option<f64>,
    /// Parallel efficiency: speedup divided by the thread count (`None`
    /// outside the `mc_scaling_*` ladder).
    pub efficiency: Option<f64>,
    /// Span timing summaries from the profiler registry.
    pub spans: Vec<SpanStat>,
}

fn span_stats(registry: &MetricsRegistry) -> Vec<SpanStat> {
    registry
        .histograms()
        .filter_map(|(name, h)| {
            let short = name.strip_prefix("span_ns.")?;
            Some(SpanStat {
                name: short.to_string(),
                count: h.count(),
                total_ns: h.sum(),
                mean_ns: h.mean().unwrap_or(0.0),
                p50_ns: h.quantile(0.5).unwrap_or(0.0),
                p99_ns: h.quantile(0.99).unwrap_or(0.0),
            })
        })
        .collect()
}

fn per_sec(n: u64, wall_ns: u64) -> Option<f64> {
    (wall_ns > 0).then(|| n as f64 * 1e9 / wall_ns as f64)
}

fn mc_scenario(
    id: &'static str,
    trials: u64,
    life: ArcLife,
    c: f64,
    threads: Option<usize>,
) -> Result<ScenarioResult, String> {
    let schedule = cs_core::search::best_guideline_schedule(&life, c)
        .map_err(|e| e.to_string())?
        .schedule;
    let mut sink = CountingSink::default();
    let mut prof = SpanProfiler::new();
    let start = Instant::now();
    let mc = match threads {
        None => {
            simulate_expected_work_profiled(&schedule, &life, c, trials, 42, &mut sink, &mut prof)
        }
        Some(t) => simulate_expected_work_parallel_profiled(
            &schedule, &life, c, trials, 42, t, &mut sink, &mut prof,
        ),
    };
    let wall_ns = start.elapsed().as_nanos() as u64;
    // Parallel shards count their events instead of emitting them; fold
    // them into the denominator or the parallel scenario under-reports its
    // event throughput by ~the shard count × trials.
    let events = sink.events + mc.shard_events;
    Ok(ScenarioResult {
        id,
        wall_ns,
        events_per_sec: per_sec(events, wall_ns),
        mc_trials_per_sec: per_sec(trials, wall_ns),
        speedup: None,
        efficiency: None,
        spans: span_stats(prof.registry()),
    })
}

fn farm_scenario(
    id: &'static str,
    tasks: usize,
    faults: FaultPlan,
) -> Result<(ScenarioResult, Vec<String>), String> {
    let life: ArcLife = Arc::new(Uniform::new(150.0).map_err(|e| e.to_string())?);
    let workstations = (0..8)
        .map(|_| WorkstationConfig {
            life: life.clone(),
            believed: life.clone(),
            c: 2.0,
            policy: PolicySpec::Guideline,
            gap_mean: 10.0,
            faults: faults.clone(),
        })
        .collect();
    let bag = workloads::uniform(tasks, 1.0).map_err(|e| e.to_string())?;
    let config = FarmConfig::new(workstations, 1e7, 42);
    let farm = Farm::new(config, bag).map_err(|e| e.to_string())?;
    let mut sink = MemorySink::new();
    let mut prof = SpanProfiler::new();
    let start = Instant::now();
    farm.run_profiled(&mut sink, &mut prof);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let lines: Vec<String> = sink.events.iter().map(Event::to_jsonl).collect();
    Ok((
        ScenarioResult {
            id,
            wall_ns,
            events_per_sec: per_sec(lines.len() as u64, wall_ns),
            mc_trials_per_sec: None,
            speedup: None,
            efficiency: None,
            spans: span_stats(prof.registry()),
        },
        lines,
    ))
}

/// The recovery-latency farm: the `farm_faulty` shape at a configurable
/// run length, rebuilt per resume (resuming consumes the config).
fn recovery_farm(tasks: usize) -> Result<(FarmConfig, TaskBag), String> {
    let life: ArcLife = Arc::new(Uniform::new(150.0).map_err(|e| e.to_string())?);
    let workstations = (0..8)
        .map(|_| WorkstationConfig {
            life: life.clone(),
            believed: life.clone(),
            c: 2.0,
            policy: PolicySpec::Guideline,
            gap_mean: 10.0,
            faults: FaultPlan::scaled(0.5),
        })
        .collect();
    let bag = workloads::uniform(tasks, 1.0).map_err(|e| e.to_string())?;
    Ok((FarmConfig::new(workstations, 1e7, 42), bag))
}

/// Times one resume of a complete journal. With the journal already
/// complete there is nothing to append, so the wall clock is pure
/// recovery cost; `records_replayed` is the throughput denominator.
fn time_resume(
    id: &'static str,
    tasks: usize,
    path: &Path,
    expect_snapshot: bool,
) -> Result<ScenarioResult, String> {
    let (config, bag) = recovery_farm(tasks)?;
    let opts = JournalOptions {
        fsync: guideline_fsync_policy(&config),
        // Writing fresh sidecars during the timed replay would charge
        // snapshot *production* to recovery; measure restoration only.
        snapshot_every: None,
        ..Default::default()
    };
    let start = Instant::now();
    let (_report, info) =
        Farm::resume_with(config, bag, path, opts).map_err(|e| format!("{id}: {e}"))?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    let outcome_ok = match info.snapshot {
        SnapshotOutcome::Used { .. } => expect_snapshot,
        SnapshotOutcome::None => !expect_snapshot,
        SnapshotOutcome::Fallback(_) => false,
    };
    if !outcome_ok {
        return Err(format!(
            "{id}: unexpected snapshot outcome {:?} (expected {})",
            info.snapshot,
            if expect_snapshot { "fast path" } else { "redo" }
        ));
    }
    Ok(ScenarioResult {
        id,
        wall_ns,
        events_per_sec: per_sec(info.records_replayed, wall_ns),
        mc_trials_per_sec: None,
        speedup: None,
        efficiency: None,
        spans: Vec::new(),
    })
}

/// One recovery-latency pair at a given run length: journal a reference
/// run with guideline-cadence snapshots, then time resuming the complete
/// journal through the sidecar fast path and through full redo replay.
fn recovery_pair(
    id_snapshot: &'static str,
    id_redo: &'static str,
    tasks: usize,
) -> Result<(ScenarioResult, ScenarioResult), String> {
    let path = std::env::temp_dir().join(format!(
        "cs_bench_recovery_{tasks}_{}.jsonl",
        std::process::id()
    ));
    let snap = default_snapshot_path(&path);
    let (config, bag) = recovery_farm(tasks)?;
    let opts = JournalOptions {
        fsync: guideline_fsync_policy(&config),
        snapshot_every: guideline_snapshot_interval(&config),
        ..Default::default()
    };
    Farm::new(config, bag)
        .map_err(|e| e.to_string())?
        .run_journaled_with(&path, opts)
        .map_err(|e| format!("{id_snapshot}: reference journaled run: {e}"))?;
    std::fs::metadata(&snap)
        .map_err(|e| format!("{id_snapshot}: reference run left no sidecar: {e}"))?;
    let fast = time_resume(id_snapshot, tasks, &path, true);
    // Redo: same journal, sidecar deleted.
    std::fs::remove_file(&snap).ok();
    let redo = time_resume(id_redo, tasks, &path, false);
    std::fs::remove_file(&path).ok();
    Ok((fast?, redo?))
}

/// Times resuming a ring-snapshotted, GC-truncated journal (the
/// bounded-disk durability row): the reference run keeps three snapshot
/// generations and prunes the journal prefix the oldest one covers, so
/// recovery restores the newest generation and replays only the
/// surviving segment tail. Wall time should track `recovery_snapshot_*`
/// — the ring walk and segment stitching must not make bounded-disk
/// recovery meaningfully slower than single-sidecar recovery.
fn ring_scenario(tasks: usize) -> Result<ScenarioResult, String> {
    let id = "recovery_ring";
    let path = std::env::temp_dir().join(format!(
        "cs_bench_ring_{tasks}_{}.jsonl",
        std::process::id()
    ));
    let (config, bag) = recovery_farm(tasks)?;
    let opts = JournalOptions {
        fsync: guideline_fsync_policy(&config),
        snapshot_every: guideline_snapshot_interval(&config),
        snapshot_ring: 3,
        gc: true,
        ..Default::default()
    };
    let (_report, stats) = Farm::new(config, bag)
        .map_err(|e| e.to_string())?
        .run_journaled_with(&path, opts)
        .map_err(|e| format!("{id}: reference journaled run: {e}"))?;
    if stats.gc_truncated_records == 0 {
        return Err(format!(
            "{id}: reference run never GC'd the journal ({} snapshots written)",
            stats.snapshots_written
        ));
    }
    let (config, bag) = recovery_farm(tasks)?;
    let resume_opts = JournalOptions {
        fsync: guideline_fsync_policy(&config),
        snapshot_every: None,
        snapshot_ring: 3,
        ..Default::default()
    };
    let start = Instant::now();
    let (_report, info) =
        Farm::resume_with(config, bag, &path, resume_opts).map_err(|e| format!("{id}: {e}"))?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(segment_meta_path(&path)).ok();
    for g in 0..3 {
        std::fs::remove_file(ring_snapshot_path(&path, g)).ok();
    }
    if !matches!(info.snapshot, SnapshotOutcome::Used { .. }) || info.segment_base == 0 {
        return Err(format!(
            "{id}: expected a generation restore over a GC'd segment, got {:?} \
             (segment base {})",
            info.snapshot, info.segment_base
        ));
    }
    Ok(ScenarioResult {
        id,
        wall_ns,
        events_per_sec: per_sec(info.records_replayed, wall_ns),
        mc_trials_per_sec: None,
        speedup: None,
        efficiency: None,
        spans: Vec::new(),
    })
}

/// Times [`check_lines`] over a recorded trace (the analyzer is itself a
/// perf surface: `obs check` gates CI).
fn analyzer_scenario(lines: &[String]) -> ScenarioResult {
    let start = Instant::now();
    let summary = check_lines(lines.iter().map(String::as_str));
    let wall_ns = start.elapsed().as_nanos() as u64;
    ScenarioResult {
        id: "analyzer_check",
        wall_ns,
        events_per_sec: per_sec(summary.lines as u64, wall_ns),
        mc_trials_per_sec: None,
        speedup: None,
        efficiency: None,
        spans: Vec::new(),
    }
}

/// Times [`cs_obs::analyze_lineage_lines`] over the same faulty farm
/// trace: the lineage reconstruction behind `obs path` / `obs chunks`
/// walks every event and runs the critical-path extraction, so it gets
/// its own throughput row next to the checker's.
fn lineage_scenario(lines: &[String]) -> Result<ScenarioResult, String> {
    let start = Instant::now();
    let analysis = cs_obs::analyze_lineage_lines(lines.iter().map(String::as_str))
        .map_err(|e| format!("analyze_lineage: {e}"))?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    if analysis.chunks.is_empty() {
        return Err("analyze_lineage: faulty trace reconstructed no chunks".into());
    }
    Ok(ScenarioResult {
        id: "analyze_lineage",
        wall_ns,
        events_per_sec: per_sec(lines.len() as u64, wall_ns),
        mc_trials_per_sec: None,
        speedup: None,
        efficiency: None,
        spans: Vec::new(),
    })
}

/// Runs the pinned scenario grid and returns the measured baselines, in
/// grid order.
pub fn run_profile(opts: ProfileOptions) -> Result<Vec<ScenarioResult>, String> {
    let trials = if opts.quick { 5_000 } else { 100_000 };
    // Large enough that the farm's steady-state dispatch loop dominates
    // one-time per-run costs (policy searches on fresh elapsed times); the
    // throughput numbers then measure the hot path, not the warmup.
    let tasks = if opts.quick { 20_000 } else { 100_000 };
    let uniform: ArcLife = Arc::new(Uniform::new(1000.0).map_err(|e| e.to_string())?);
    let mut out = Vec::new();
    out.push(mc_scenario(
        "mc_serial_uniform",
        trials,
        uniform.clone(),
        5.0,
        None,
    )?);
    // The scaling ladder on the work-stealing pool. `mc_scaling_1` takes
    // the parallel API's serial fallback and anchors the speedup column;
    // efficiency = speedup / threads, so a perfectly scaling pool holds
    // 1.0 down the ladder. Rows past the machine's core count measure
    // oversubscription, not scaling — `bench_profile` records the core
    // count in the `cpus` field so a diff can tell the two apart.
    //
    // The ladder deliberately differs from `mc_serial_uniform`:
    //  - Polynomial life at c = 0.5 makes each trial heavy (a `powf` per
    //    inverse-survival draw, ~50 schedule periods per episode), so the
    //    master's irreducible serial sections (RNG pre-draw, ordered
    //    merge — the price of bit-identity) stay a small fraction of a
    //    trial and Amdahl does not cap the ladder below the CI floor.
    //  - A fixed trial budget (no --quick shrink): 5k-trial windows are
    //    dominated by pool spin-up, which would measure thread creation,
    //    not scaling. The budget is small enough to keep quick runs quick.
    let poly: ArcLife = Arc::new(Polynomial::new(3, 1000.0).map_err(|e| e.to_string())?);
    let ladder: [(&'static str, usize); 4] = [
        ("mc_scaling_1", 1),
        ("mc_scaling_2", 2),
        ("mc_scaling_4", 4),
        ("mc_scaling_8", 8),
    ];
    let mut scaling = Vec::new();
    for (id, threads) in ladder {
        scaling.push(mc_scenario(id, 200_000, poly.clone(), 0.5, Some(threads))?);
    }
    let base_wall = scaling[0].wall_ns as f64;
    for (row, (_, threads)) in scaling.iter_mut().zip(ladder) {
        let speedup = (row.wall_ns > 0).then(|| base_wall / row.wall_ns as f64);
        row.speedup = speedup;
        row.efficiency = speedup.map(|s| s / threads as f64);
    }
    out.extend(scaling);
    let (clean, _) = farm_scenario("farm_clean", tasks, FaultPlan::none())?;
    out.push(clean);
    let (faulty, trace) = farm_scenario("farm_faulty", tasks, FaultPlan::scaled(0.5))?;
    out.push(faulty);
    out.push(analyzer_scenario(&trace));
    out.push(lineage_scenario(&trace)?);
    // Crash-recovery latency at three run lengths: the snapshot column
    // should stay flat while the redo column scales with the journal.
    let recovery: [(usize, &'static str, &'static str); 3] = if opts.quick {
        [
            (150, "recovery_snapshot_short", "recovery_redo_short"),
            (400, "recovery_snapshot_medium", "recovery_redo_medium"),
            (900, "recovery_snapshot_long", "recovery_redo_long"),
        ]
    } else {
        [
            (1_000, "recovery_snapshot_short", "recovery_redo_short"),
            (4_000, "recovery_snapshot_medium", "recovery_redo_medium"),
            (12_000, "recovery_snapshot_long", "recovery_redo_long"),
        ]
    };
    for (len, id_snapshot, id_redo) in recovery {
        let (fast, redo) = recovery_pair(id_snapshot, id_redo, len)?;
        out.push(fast);
        out.push(redo);
    }
    // Bounded-disk recovery: a three-generation ring with journal GC; the
    // medium run length keeps the scenario comparable to
    // recovery_snapshot_medium.
    out.push(ring_scenario(recovery[1].0)?);
    Ok(out)
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        _ => "null".to_string(),
    }
}

/// Renders results as the `BENCH.json` document (parseable back by
/// `cs_obs::parse_json`, diffable by `cyclesteal obs diff --bench`).
/// `cpus` records the machine's available parallelism so the
/// `mc_scaling_*` rows can be read honestly: a 1-core box cannot show a
/// 4-thread speedup no matter how good the pool is.
pub fn render_bench_json(
    results: &[ScenarioResult],
    commit: &str,
    date: &str,
    quick: bool,
    cpus: usize,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"commit\": \"{}\",\n  \"date\": \"{}\",\n  \"quick\": {},\n  \"cpus\": {},\n  \
         \"scenarios\": [\n",
        commit.replace(['"', '\\'], "?"),
        date.replace(['"', '\\'], "?"),
        quick,
        cpus
    ));
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_ns\": {}, \"events_per_sec\": {}, \
             \"mc_trials_per_sec\": {}, \"speedup\": {}, \"efficiency\": {}, \"spans\": {{",
            r.id,
            r.wall_ns,
            json_f64(r.events_per_sec),
            json_f64(r.mc_trials_per_sec),
            json_f64(r.speedup),
            json_f64(r.efficiency)
        ));
        for (j, sp) in r.spans.iter().enumerate() {
            s.push_str(&format!(
                "{}\"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}}}",
                if j == 0 { "" } else { ", " },
                sp.name,
                sp.count,
                json_f64(Some(sp.total_ns)),
                json_f64(Some(sp.mean_ns)),
                json_f64(Some(sp.p50_ns)),
                json_f64(Some(sp.p99_ns))
            ));
        }
        s.push_str(if i + 1 == results.len() {
            "}}\n"
        } else {
            "}},\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_obs::{diff_bench, parse_json, Json};

    fn tiny_results() -> Vec<ScenarioResult> {
        vec![
            ScenarioResult {
                id: "s1",
                wall_ns: 1_000_000,
                events_per_sec: Some(123456.789),
                mc_trials_per_sec: None,
                speedup: None,
                efficiency: None,
                spans: vec![SpanStat {
                    name: "mc.trials".into(),
                    count: 1,
                    total_ns: 900000.0,
                    mean_ns: 900000.0,
                    p50_ns: 900000.0,
                    p99_ns: 900000.0,
                }],
            },
            ScenarioResult {
                id: "s2",
                wall_ns: 2_000_000,
                events_per_sec: None,
                mc_trials_per_sec: Some(5000.0),
                speedup: Some(1.8),
                efficiency: Some(0.9),
                spans: Vec::new(),
            },
        ]
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let text = render_bench_json(&tiny_results(), "abc1234", "2026-08-06", false, 4);
        let doc = parse_json(&text).unwrap();
        assert_eq!(doc.get("commit").and_then(Json::as_str), Some("abc1234"));
        assert_eq!(doc.get("cpus").and_then(Json::as_f64), Some(4.0));
        let scenarios = doc.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(scenarios.len(), 2);
        let s1 = &scenarios[0];
        assert_eq!(s1.get("id").and_then(Json::as_str), Some("s1"));
        assert_eq!(s1.get("wall_ns").and_then(Json::as_f64), Some(1_000_000.0));
        // null -> NaN through the parser's as_f64.
        assert!(s1
            .get("mc_trials_per_sec")
            .and_then(Json::as_f64)
            .unwrap()
            .is_nan());
        assert!(s1.get("speedup").and_then(Json::as_f64).unwrap().is_nan());
        let s2 = &scenarios[1];
        assert_eq!(s2.get("speedup").and_then(Json::as_f64), Some(1.8));
        assert_eq!(s2.get("efficiency").and_then(Json::as_f64), Some(0.9));
        let spans = s1.get("spans").and_then(Json::as_obj).unwrap();
        assert!(spans.contains_key("mc.trials"));
    }

    #[test]
    fn bench_json_diffs_against_itself_clean() {
        let a = render_bench_json(&tiny_results(), "aaa", "2026-08-05", false, 1);
        let mut worse = tiny_results();
        worse[0].wall_ns *= 2; // 2x wall regression on s1
        worse[1].speedup = Some(0.9); // speedup collapse on s2
        worse[1].efficiency = Some(0.45);
        let b = render_bench_json(&worse, "bbb", "2026-08-06", false, 1);
        let same = diff_bench(&a, &a, 0.2).unwrap();
        assert!(same.iter().all(|r| !r.flagged), "{same:?}");
        let rows = diff_bench(&a, &b, 0.2).unwrap();
        assert!(rows.iter().any(|r| r.name == "s1.wall_ns" && r.flagged));
        // A speedup drop is a throughput-style regression (down is bad).
        assert!(rows.iter().any(|r| r.name == "s2.speedup" && r.flagged));
        assert!(rows.iter().any(|r| r.name == "s2.efficiency" && r.flagged));
    }

    #[test]
    fn quick_profile_produces_the_pinned_grid() {
        let results = run_profile(ProfileOptions { quick: true }).unwrap();
        let ids: Vec<&str> = results.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "mc_serial_uniform",
                "mc_scaling_1",
                "mc_scaling_2",
                "mc_scaling_4",
                "mc_scaling_8",
                "farm_clean",
                "farm_faulty",
                "analyzer_check",
                "analyze_lineage",
                "recovery_snapshot_short",
                "recovery_redo_short",
                "recovery_snapshot_medium",
                "recovery_redo_medium",
                "recovery_snapshot_long",
                "recovery_redo_long",
                "recovery_ring",
            ]
        );
        for r in &results {
            assert!(r.wall_ns > 0, "{}: zero wall time", r.id);
        }
        // MC scenarios report trial throughput; farm scenarios event
        // throughput; both MC and farm carry spans.
        assert!(results[0].mc_trials_per_sec.unwrap() > 0.0);
        assert!(results[5].events_per_sec.unwrap() > 0.0);
        assert!(results[0].spans.iter().any(|s| s.name == "mc.trial_batch"));
        assert!(results[6].spans.iter().any(|s| s.name == "farm.dispatch"));
        // The scaling ladder: only mc_scaling_* rows carry speedup and
        // efficiency; the 1-thread anchor is exactly 1.0 on both, and the
        // pooled rows run the work-stealing deques (mc.pool span).
        assert!(results[0].speedup.is_none());
        assert_eq!(results[1].speedup, Some(1.0));
        assert_eq!(results[1].efficiency, Some(1.0));
        for (i, threads) in [(2usize, 2.0f64), (3, 4.0), (4, 8.0)] {
            let r = &results[i];
            let s = r.speedup.unwrap();
            assert!(s > 0.0, "{}: speedup {s}", r.id);
            let e = r.efficiency.unwrap();
            assert!(
                (e - s / threads).abs() < 1e-12,
                "{}: efficiency {e} != speedup/{threads}",
                r.id
            );
            assert!(r.spans.iter().any(|sp| sp.name == "mc.pool"), "{}", r.id);
        }
        // The trace analyzers report line throughput over the faulty
        // farm trace.
        assert!(results[7].events_per_sec.unwrap() > 0.0);
        assert!(results[8].events_per_sec.unwrap() > 0.0);
        // Recovery scenarios report replayed-record throughput; the redo
        // path replays the whole journal so it can never be faster than
        // the snapshot path on replayed records.
        assert!(results[9].events_per_sec.unwrap() > 0.0);
        assert!(results[10].events_per_sec.unwrap() > 0.0);
    }
}
