//! The deterministic chaos harness: kill the master everywhere, prove
//! recovery is exact.
//!
//! The journal layer (`cs_obs::journal` + `cs_now::journal`) promises a
//! *kill-anywhere* guarantee: crash the master at any journal record
//! boundary — even mid-write, leaving a torn final record — and
//! [`cs_now::Farm::resume`] finishes the episode with a `FarmReport`
//! **bitwise identical** to the uninterrupted run, stitching the journal
//! into the exact byte stream the uninterrupted run would have written.
//!
//! [`run_chaos`] enforces that promise exhaustively: it journals one
//! seeded faulty reference run (with state snapshots on a fixed cadence),
//! then for every (or every `sample`-th) record boundary truncates the
//! journal there — alternately appending a torn record fragment, the
//! signature of a real mid-write crash — resumes, and byte/bit-compares.
//! Each kill point also cycles the snapshot sidecar through its three
//! recovery modes: intact (the O(snapshot-interval) fast path, or a
//! `journal-ahead` fallback when the snapshot outruns the truncated
//! journal), deliberately corrupted (graceful fallback to full redo), and
//! absent (plain redo). The *same* bitwise guarantees must hold in every
//! mode. Any deviation is collected as a mismatch, and mismatches fail
//! the `exp_chaos` experiment and the `cyclesteal chaos` CI step.
//! Everything is seeded and virtual-time: no sleeps, no real signals,
//! fully reproducible.
//!
//! With [`ChaosConfig::disk_faults`] on, every kill point runs a second
//! resume through a seeded [`cs_obs::FaultyVfs`], cycling all five
//! injectable fault kinds (failed/short writes, fsync errors, rename
//! failures, ENOSPC) and both [`cs_now::IoErrorPolicy`] modes. The
//! contract per trial: either the resume completes with a **bitwise**
//! report (clean or degraded), or it fails with the **typed, predicted**
//! injected error — and in every case whatever the faulty disk left
//! behind must still recover bitwise under a clean filesystem.

use cs_life::{ArcLife, Uniform};
use cs_now::farm::{Farm, FarmConfig, FarmReport, PolicySpec, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::{
    default_snapshot_path, guideline_fsync_policy, inspect_snapshot, IoErrorPolicy, JournalError,
    JournalOptions, SnapshotErrorKind, SnapshotOutcome,
};
use cs_obs::{injected_kind, FaultAt, FaultKind, FaultyVfs, ALL_FAULT_KINDS};
use cs_tasks::{workloads, TaskBag};
use std::path::PathBuf;
use std::sync::Arc;

/// Scenario knobs for one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Borrowed workstations in the farm.
    pub workstations: usize,
    /// Unit tasks in the bag.
    pub tasks: usize,
    /// Run seed (fixes the whole fault schedule).
    pub seed: u64,
    /// [`FaultPlan::scaled`] intensity for every workstation.
    pub intensity: f64,
    /// Kill at this many evenly spaced record boundaries instead of every
    /// one (`None` = every boundary — the full kill-anywhere proof).
    pub sample: Option<usize>,
    /// Snapshot cadence (virtual time) for the reference run's sidecar.
    pub snapshot_every: f64,
    /// Worker threads for the kill/resume trials (`1` = in-place serial).
    /// Trials are independent — each gets its own scratch journal — and
    /// their outcomes are merged in kill-point order, so the
    /// [`ChaosOutcome`] is identical for every thread count.
    pub threads: usize,
    /// Wall-clock cadence for `RUN-PROGRESS` heartbeats on stderr during
    /// the reference journaled run (`None` = silent). The kill/resume
    /// trials themselves stay quiet — hundreds of short resumes
    /// heartbeating concurrently would be noise, not telemetry.
    pub progress_every: Option<f64>,
    /// Run a second, disk-faulted resume at every kill point: a seeded
    /// [`FaultyVfs`] injects one planned fault (kind cycling through
    /// [`ALL_FAULT_KINDS`], policy alternating fail-stop/degrade) and the
    /// trial demands a bitwise report or the typed injected error — plus
    /// bitwise recovery under a clean filesystem afterwards.
    pub disk_faults: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            workstations: 4,
            tasks: 200,
            seed: 4242,
            intensity: 0.6,
            sample: None,
            snapshot_every: 10.0,
            threads: 1,
            progress_every: None,
            disk_faults: false,
        }
    }
}

/// What a chaos sweep found.
#[derive(Debug, Clone, Default)]
pub struct ChaosOutcome {
    /// Records in the uninterrupted reference journal.
    pub records: usize,
    /// Kill points exercised.
    pub kill_points: usize,
    /// Kill points that additionally injected a torn record fragment.
    pub torn_trials: usize,
    /// Trials whose sidecar was deliberately corrupted before resuming.
    pub corrupt_trials: usize,
    /// Resumes that took the snapshot fast path (prefix skipped).
    pub snapshot_resumes: usize,
    /// Resumes that fell back to full redo after a sidecar problem.
    pub snapshot_fallbacks: usize,
    /// Resumes whose report and stitched journal matched exactly.
    pub resumed_ok: usize,
    /// Disk-faulted resumes run (one per kill point when
    /// [`ChaosConfig::disk_faults`] is on).
    pub disk_fault_trials: usize,
    /// Distinct injected fault kinds that actually fired, sorted.
    pub fault_kinds_fired: Vec<FaultKind>,
    /// Disk-faulted resumes that completed degraded (in-memory) with a
    /// bitwise report.
    pub degraded_completions: usize,
    /// Disk-faulted resumes that fail-stopped with the typed injected
    /// error and recovered bitwise afterwards.
    pub fail_stop_errors: usize,
    /// Every deviation found (empty = kill-anywhere guarantee holds).
    pub mismatches: Vec<String>,
}

impl ChaosOutcome {
    /// True when every kill point recovered exactly.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty() && self.resumed_ok == self.kill_points
    }
}

/// The chaos scenario's farm: a mildly heterogeneous NOW under the
/// canonical scaled fault mix with periodic reclaim storms (the
/// `exp_fault_tolerance` shape, sized for exhaustive killing).
pub fn chaos_farm_config(cfg: &ChaosConfig) -> FarmConfig {
    let workstations = (0..cfg.workstations)
        .map(|i| {
            let life: ArcLife = Arc::new(Uniform::new(120.0 + 20.0 * (i % 3) as f64).unwrap());
            WorkstationConfig {
                life: life.clone(),
                believed: life,
                c: 2.0,
                policy: PolicySpec::Guideline,
                gap_mean: 10.0,
                faults: FaultPlan::scaled(cfg.intensity),
            }
        })
        .collect();
    let mut config = FarmConfig::new(workstations, 1e6, cfg.seed);
    config.storms = (1..=10).map(|k| 400.0 * k as f64).collect();
    config
}

fn chaos_bag(cfg: &ChaosConfig) -> TaskBag {
    workloads::uniform(cfg.tasks, 1.0).expect("positive task count")
}

/// Bitwise comparison of two farm reports; returns the first difference.
fn report_diff(a: &FarmReport, b: &FarmReport) -> Option<String> {
    let f = |name: &str, x: f64, y: f64| {
        (x.to_bits() != y.to_bits()).then(|| format!("{name}: {x:?} != {y:?}"))
    };
    f("makespan", a.makespan, b.makespan)
        .or_else(|| f("completed_work", a.completed_work, b.completed_work))
        .or_else(|| f("lost_work", a.lost_work, b.lost_work))
        .or_else(|| f("remaining_work", a.remaining_work, b.remaining_work))
        .or_else(|| (a.drained != b.drained).then(|| "drained differs".to_string()))
        .or_else(|| (a.robustness != b.robustness).then(|| "robustness differs".to_string()))
        .or_else(|| {
            a.per_workstation
                .iter()
                .zip(&b.per_workstation)
                .enumerate()
                .find_map(|(ws, (x, y))| {
                    f(
                        &format!("ws {ws} completed_work"),
                        x.completed_work,
                        y.completed_work,
                    )
                    .or_else(|| f(&format!("ws {ws} lost_work"), x.lost_work, y.lost_work))
                    .or_else(|| {
                        (x.chunks_completed != y.chunks_completed
                            || x.episodes != y.episodes
                            || x.lease_timeouts != y.lease_timeouts)
                            .then(|| format!("ws {ws} counters differ"))
                    })
                })
        })
}

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cs_chaos_{tag}_{}.jsonl", std::process::id()))
}

/// One kill point's verdict. Trials are independent (each resumes from its
/// own scratch copy of the truncated journal), so the sweep can run them
/// on the pool and merge these in kill-point order — the merged
/// [`ChaosOutcome`] is identical for every thread count.
#[derive(Debug, Default)]
struct TrialOutcome {
    torn: bool,
    corrupt: bool,
    snapshot_resume: bool,
    snapshot_fallback: bool,
    resumed_ok: bool,
    disk_trial: bool,
    fault_fired: Option<FaultKind>,
    degraded_completion: bool,
    fail_stop_error: bool,
    mismatches: Vec<String>,
}

/// The disk-faulted resume at one kill point: re-stage the truncated
/// journal (`staged.0`) and the intact sidecar (`staged.1`, when the
/// reference run wrote one), then resume through a [`FaultyVfs`] whose
/// one planned fault cycles kind with the trial index and whose
/// [`IoErrorPolicy`] alternates by parity. The contract: the resume
/// either completes with a report bitwise equal to `reference.0` (clean
/// or degraded), or fails with exactly the injected error — and whatever
/// the faulty disk left behind must then recover bitwise under a clean
/// filesystem.
fn run_disk_trial(
    cfg: &ChaosConfig,
    trial: usize,
    k: usize,
    staged: (&[u8], Option<&[u8]>),
    reference: (&FarmReport, &[u8]),
    t: &mut TrialOutcome,
) {
    let (prefix, snap_bytes) = staged;
    let (ref_report, ref_bytes) = reference;
    let trial_path = scratch_path(&format!("trial_{}_{trial}", cfg.seed));
    let trial_snap = default_snapshot_path(&trial_path);
    t.disk_trial = true;
    let kind = ALL_FAULT_KINDS[trial % ALL_FAULT_KINDS.len()];
    let index = (trial / ALL_FAULT_KINDS.len()) as u64 % 3;
    let policy = if trial % 2 == 0 {
        IoErrorPolicy::FailStop
    } else {
        IoErrorPolicy::Degrade
    };
    let label = format!("disk trial after {k} records ({kind} at op {index}, {policy})");
    std::fs::remove_file(&trial_snap).ok();
    let restage = std::fs::write(&trial_path, prefix).and_then(|()| match snap_bytes {
        Some(bytes) => std::fs::write(&trial_snap, bytes),
        None => Ok(()),
    });
    if let Err(e) = restage {
        t.mismatches.push(format!("{label}: restage failed: {e}"));
        return;
    }
    let fsync = guideline_fsync_policy(&chaos_farm_config(cfg));
    let vfs = FaultyVfs::with_plan(&[FaultAt { kind, index }]);
    let disk_opts = JournalOptions {
        fsync,
        snapshot_every: Some(cfg.snapshot_every),
        on_io_error: policy,
        ..Default::default()
    };
    let result = Farm::resume_vfs(
        chaos_farm_config(cfg),
        chaos_bag(cfg),
        &trial_path,
        disk_opts,
        &vfs,
    );
    t.fault_fired = vfs.fired().first().copied();
    let mut check_clean_recovery = false;
    match result {
        Ok((report, info)) => {
            if let Some(d) = report_diff(ref_report, &report) {
                t.mismatches.push(format!("{label}: report differs: {d}"));
            }
            if info.degraded {
                t.degraded_completion = true;
                check_clean_recovery = true;
                // Journaling stopped at the fault, but every byte that did
                // land must be a prefix of the reference stream.
                match std::fs::read(&trial_path) {
                    Ok(bytes) if !ref_bytes.starts_with(&bytes) => t.mismatches.push(format!(
                        "{label}: degraded journal is not a prefix of the reference stream"
                    )),
                    Err(e) => t
                        .mismatches
                        .push(format!("{label}: degraded journal unreadable: {e}")),
                    _ => {}
                }
            } else {
                // The fault missed the journal stream (or hit only the
                // advisory snapshot path): the stitched journal must
                // still be byte-exact.
                match std::fs::read(&trial_path) {
                    Ok(bytes) if bytes != ref_bytes => t
                        .mismatches
                        .push(format!("{label}: stitched journal differs")),
                    Err(e) => t.mismatches.push(format!("{label}: reread failed: {e}")),
                    _ => {}
                }
            }
        }
        Err(JournalError::Io(io)) if injected_kind(&io) == Some(kind) => {
            t.fail_stop_error = true;
            check_clean_recovery = true;
        }
        Err(e) => {
            t.mismatches.push(format!(
                "{label}: expected the injected {kind} error, got: {e}"
            ));
            check_clean_recovery = true;
        }
    }
    if check_clean_recovery {
        // Whatever the faulty disk left behind must still recover exactly
        // once the filesystem behaves.
        let clean_opts = JournalOptions {
            fsync,
            snapshot_every: Some(cfg.snapshot_every),
            ..Default::default()
        };
        match Farm::resume_with(
            chaos_farm_config(cfg),
            chaos_bag(cfg),
            &trial_path,
            clean_opts,
        ) {
            Ok((report, _info)) => {
                if let Some(d) = report_diff(ref_report, &report) {
                    t.mismatches
                        .push(format!("{label}: clean re-resume report differs: {d}"));
                }
                match std::fs::read(&trial_path) {
                    Ok(bytes) if bytes != ref_bytes => t
                        .mismatches
                        .push(format!("{label}: clean re-resume journal differs")),
                    Err(e) => t
                        .mismatches
                        .push(format!("{label}: clean re-resume reread failed: {e}")),
                    _ => {}
                }
            }
            Err(e) => t
                .mismatches
                .push(format!("{label}: clean re-resume failed: {e}")),
        }
    }
}

/// Runs one full chaos sweep: reference journaled run, then kill + resume
/// at each selected record boundary. Returns the outcome; hard setup
/// failures (unwritable temp dir, invalid scenario) are `Err`.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosOutcome, String> {
    let ref_path = scratch_path(&format!("ref_{}", cfg.seed));
    let ref_snap = default_snapshot_path(&ref_path);
    let config = chaos_farm_config(cfg);
    let opts = JournalOptions {
        fsync: guideline_fsync_policy(&config),
        snapshot_every: Some(cfg.snapshot_every),
        progress_every: cfg.progress_every,
        ..Default::default()
    };
    let farm = Farm::new(config, chaos_bag(cfg)).map_err(|e| e.to_string())?;
    let (ref_report, _stats) = farm
        .run_journaled_with(&ref_path, opts)
        .map_err(|e| format!("reference journaled run: {e}"))?;
    let ref_bytes = std::fs::read(&ref_path).map_err(|e| e.to_string())?;
    // The reference run's final sidecar: which journal prefix it covers
    // decides whether an intact copy is a fast path or a journal-ahead
    // fallback at each kill point.
    let snap_bytes = std::fs::read(&ref_snap).ok();
    let snap_records = match &snap_bytes {
        Some(_) => Some(
            inspect_snapshot(&ref_snap)
                .map_err(|e| format!("reference sidecar unreadable: {e}"))?
                .journal_records,
        ),
        None => None,
    };
    let records: Vec<&[u8]> = ref_bytes.split_inclusive(|&b| b == b'\n').collect();
    let n = records.len();
    if n < 3 {
        return Err(format!("degenerate scenario: only {n} journal records"));
    }

    // The uninterrupted journal itself must pass the strict invariant gate.
    let mut out = ChaosOutcome {
        records: n,
        ..Default::default()
    };
    let ref_text = String::from_utf8_lossy(&ref_bytes);
    let check = cs_obs::check_text(&ref_text, true);
    if !check.ok() {
        out.mismatches.push(format!(
            "reference journal fails obs check: {:?}",
            check.violations
        ));
    }

    // Kill boundaries: after k committed records, k in 1..n (killing after
    // all n records is the complete-journal verification case, also
    // exercised).
    let kill_points: Vec<usize> = match cfg.sample {
        None => (1..=n).collect(),
        Some(s) if s >= n => (1..=n).collect(),
        Some(s) => {
            let s = s.max(2);
            // Evenly spaced over [1, n], endpoints included.
            (0..s).map(|i| 1 + i * (n - 1) / (s - 1)).collect()
        }
    };
    let total_work = cfg.tasks as f64;
    let fsync = opts.fsync;
    // One kill point, end to end: stage the truncated journal (plus torn
    // fragment and sidecar mode), resume, and verify every guarantee.
    // Pure with respect to shared state — all inputs are read-only borrows
    // and each trial owns its scratch files — so trials can run on the
    // pool in any order.
    let run_trial = |trial: usize| -> TrialOutcome {
        let k = kill_points[trial];
        let mut t = TrialOutcome::default();
        let trial_path = scratch_path(&format!("trial_{}_{trial}", cfg.seed));
        let trial_snap = default_snapshot_path(&trial_path);
        let torn = trial % 2 == 1 && k < n;
        let mut prefix: Vec<u8> = records[..k].concat();
        if torn {
            // A mid-write crash: the next record got partially out.
            prefix.extend_from_slice(b"{\"v\":2,\"t\":17.25,\"typ");
            t.torn = true;
        }
        if let Err(e) = std::fs::write(&trial_path, &prefix) {
            t.mismatches
                .push(format!("kill after {k} records: scratch write failed: {e}"));
            return t;
        }
        // Cycle the sidecar through its three recovery modes: intact copy
        // of the reference snapshot, corrupted copy, and no sidecar. The
        // complete-journal trial (k = n) always gets the intact sidecar —
        // it is the one kill point guaranteed to satisfy the fast path's
        // snapshot-not-ahead precondition, so the sweep always exercises
        // an O(snapshot-interval) resume.
        let mode = if k == n { 0 } else { trial % 3 };
        std::fs::remove_file(&trial_snap).ok();
        let staged = match (mode, &snap_bytes) {
            (0, Some(bytes)) => std::fs::write(&trial_snap, bytes),
            (1, Some(bytes)) => {
                let mut bad_bytes = bytes.clone();
                let mid = bad_bytes.len() / 2;
                bad_bytes[mid] ^= 0x01;
                t.corrupt = true;
                std::fs::write(&trial_snap, &bad_bytes)
            }
            _ => Ok(()),
        };
        if let Err(e) = staged {
            t.mismatches
                .push(format!("kill after {k} records: sidecar stage failed: {e}"));
            return t;
        }
        let trial_opts = JournalOptions {
            fsync,
            snapshot_every: Some(cfg.snapshot_every),
            ..Default::default()
        };
        match Farm::resume_with(
            chaos_farm_config(cfg),
            chaos_bag(cfg),
            &trial_path,
            trial_opts,
        ) {
            Ok((report, info)) => {
                let mut bad = false;
                if let Some(d) = report_diff(&ref_report, &report) {
                    t.mismatches
                        .push(format!("kill after {k} records: report differs: {d}"));
                    bad = true;
                }
                match std::fs::read(&trial_path) {
                    Ok(stitched) if stitched != ref_bytes => {
                        t.mismatches.push(format!(
                            "kill after {k} records: stitched journal differs \
                             ({} vs {} bytes)",
                            stitched.len(),
                            ref_bytes.len()
                        ));
                        bad = true;
                    }
                    Err(e) => {
                        t.mismatches
                            .push(format!("kill after {k} records: reread failed: {e}"));
                        bad = true;
                    }
                    _ => {}
                }
                // Work conservation, independent of the reference run.
                let mass = report.completed_work + report.remaining_work;
                if (mass - total_work).abs() > 1e-6 {
                    t.mismatches.push(format!(
                        "kill after {k} records: work not conserved: \
                         banked {} + remaining {} != {total_work}",
                        report.completed_work, report.remaining_work
                    ));
                    bad = true;
                }
                // Snapshot accounting: skipped prefix + replayed tail must
                // cover exactly the k committed records, and the outcome
                // must match the sidecar mode we staged.
                let skipped = match info.snapshot {
                    SnapshotOutcome::Used { records_skipped } => {
                        t.snapshot_resume = true;
                        records_skipped
                    }
                    SnapshotOutcome::Fallback(_) => {
                        t.snapshot_fallback = true;
                        0
                    }
                    SnapshotOutcome::None => 0,
                };
                if skipped + info.records_replayed != k as u64 {
                    t.mismatches.push(format!(
                        "kill after {k} records: skipped {skipped} + replayed {} != {k}",
                        info.records_replayed
                    ));
                    bad = true;
                }
                let outcome_ok = match (mode, snap_records) {
                    (0, Some(r)) if r <= k as u64 => {
                        matches!(info.snapshot, SnapshotOutcome::Used { .. })
                    }
                    (0, Some(_)) => {
                        info.snapshot == SnapshotOutcome::Fallback(SnapshotErrorKind::JournalAhead)
                    }
                    (1, Some(_)) => matches!(info.snapshot, SnapshotOutcome::Fallback(_)),
                    _ => info.snapshot == SnapshotOutcome::None,
                };
                if !outcome_ok {
                    t.mismatches.push(format!(
                        "kill after {k} records (sidecar mode {mode}): \
                         unexpected snapshot outcome {:?}",
                        info.snapshot
                    ));
                    bad = true;
                }
                if !bad {
                    t.resumed_ok = true;
                }
            }
            Err(e) => t
                .mismatches
                .push(format!("kill after {k} records: resume failed: {e}")),
        }
        if cfg.disk_faults {
            let staged = (prefix.as_slice(), snap_bytes.as_deref());
            run_disk_trial(cfg, trial, k, staged, (&ref_report, &ref_bytes), &mut t);
        }
        std::fs::remove_file(&trial_path).ok();
        std::fs::remove_file(&trial_snap).ok();
        let mut snap_tmp = trial_snap.into_os_string();
        snap_tmp.push(".tmp");
        std::fs::remove_file(PathBuf::from(snap_tmp)).ok();
        t
    };
    let outcomes: Vec<TrialOutcome> = if cfg.threads > 1 {
        let pool = cs_pool::Pool::new(cfg.threads);
        pool.map_indexed(kill_points.len(), run_trial)
    } else {
        (0..kill_points.len()).map(run_trial).collect()
    };
    // Merge in kill-point order: counters and mismatch strings come out
    // identical to the serial sweep regardless of scheduling.
    let mut kinds = std::collections::BTreeSet::new();
    for t in outcomes {
        out.torn_trials += usize::from(t.torn);
        out.corrupt_trials += usize::from(t.corrupt);
        out.snapshot_resumes += usize::from(t.snapshot_resume);
        out.snapshot_fallbacks += usize::from(t.snapshot_fallback);
        out.resumed_ok += usize::from(t.resumed_ok);
        out.disk_fault_trials += usize::from(t.disk_trial);
        out.degraded_completions += usize::from(t.degraded_completion);
        out.fail_stop_errors += usize::from(t.fail_stop_error);
        kinds.extend(t.fault_fired);
        out.mismatches.extend(t.mismatches);
    }
    out.fault_kinds_fired = kinds.into_iter().collect();
    out.kill_points = kill_points.len();
    std::fs::remove_file(&ref_path).ok();
    std::fs::remove_file(&ref_snap).ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_chaos_sweep_holds_the_kill_anywhere_guarantee() {
        let cfg = ChaosConfig {
            tasks: 80,
            sample: Some(7),
            ..Default::default()
        };
        let out = run_chaos(&cfg).unwrap();
        assert!(out.ok(), "mismatches: {:#?}", out.mismatches);
        assert_eq!(out.kill_points, 7);
        assert!(out.torn_trials >= 2, "{out:?}");
        assert!(out.records > 10);
        // All three sidecar modes must have been exercised: the last kill
        // point (k = n, sidecar mode 0) always takes the fast path.
        assert!(out.snapshot_resumes >= 1, "{out:?}");
        assert!(out.corrupt_trials >= 1, "{out:?}");
        assert!(out.snapshot_fallbacks >= out.corrupt_trials, "{out:?}");
    }

    #[test]
    fn pooled_sweep_matches_the_serial_outcome() {
        // The trials are independent and merged in kill-point order, so
        // the outcome must be identical for every thread count.
        let cfg = ChaosConfig {
            workstations: 2,
            tasks: 40,
            seed: 31,
            sample: Some(6),
            ..Default::default()
        };
        let serial = run_chaos(&cfg).unwrap();
        let pooled = run_chaos(&ChaosConfig {
            threads: 4,
            ..cfg.clone()
        })
        .unwrap();
        assert!(serial.ok(), "serial mismatches: {:#?}", serial.mismatches);
        assert!(pooled.ok(), "pooled mismatches: {:#?}", pooled.mismatches);
        assert_eq!(serial.records, pooled.records);
        assert_eq!(serial.kill_points, pooled.kill_points);
        assert_eq!(serial.torn_trials, pooled.torn_trials);
        assert_eq!(serial.corrupt_trials, pooled.corrupt_trials);
        assert_eq!(serial.snapshot_resumes, pooled.snapshot_resumes);
        assert_eq!(serial.snapshot_fallbacks, pooled.snapshot_fallbacks);
        assert_eq!(serial.resumed_ok, pooled.resumed_ok);
        assert_eq!(serial.mismatches, pooled.mismatches);
    }

    #[test]
    fn disk_faulted_sweep_holds_the_contract_across_all_fault_kinds() {
        let cfg = ChaosConfig {
            workstations: 2,
            tasks: 25,
            seed: 101,
            intensity: 0.8,
            sample: None,
            disk_faults: true,
            ..Default::default()
        };
        let out = run_chaos(&cfg).unwrap();
        assert!(out.ok(), "mismatches: {:#?}", out.mismatches);
        assert_eq!(out.disk_fault_trials, out.kill_points);
        // The exhaustive sweep must exercise every injectable fault kind,
        // both completion modes, and the fail-stop error path.
        assert_eq!(out.fault_kinds_fired, ALL_FAULT_KINDS.to_vec(), "{out:?}");
        assert!(out.degraded_completions >= 1, "{out:?}");
        assert!(out.fail_stop_errors >= 1, "{out:?}");
    }

    #[test]
    fn exhaustive_chaos_on_a_tiny_farm() {
        // Small enough to kill at EVERY record boundary in test time.
        let cfg = ChaosConfig {
            workstations: 2,
            tasks: 25,
            seed: 99,
            intensity: 0.8,
            sample: None,
            ..Default::default()
        };
        let out = run_chaos(&cfg).unwrap();
        assert!(out.ok(), "mismatches: {:#?}", out.mismatches);
        assert_eq!(out.kill_points, out.records);
        assert!(out.snapshot_resumes >= 1, "{out:?}");
        assert!(out.corrupt_trials >= 1, "{out:?}");
    }
}
