//! Golden-output regression for the harness migration.
//!
//! The fixtures under `tests/golden/` were captured from the pre-refactor
//! standalone binaries (one `main` per experiment, `println!` throughout).
//! Each test runs the registered experiment in-process through the shared
//! harness in full (non-quick) mode and demands the report be **byte
//! identical** to the capture — the refactor moved every experiment onto
//! `Experiment::run` without changing a single printed character.
//!
//! `exp_obs_validate` has no fixture: its self-test writes a temp-dir path
//! into its own output, so it is covered by its PASS/FAIL contract (and the
//! harness smoke in CI) instead.

use cs_bench::harness::{by_id, run_to_writer, ExpOptions};

fn check(id: &str, golden: &str) {
    let exp = by_id(id).unwrap_or_else(|| panic!("{id} not registered"));
    let mut out: Vec<u8> = Vec::new();
    run_to_writer(exp, &ExpOptions::default(), &mut out)
        .unwrap_or_else(|e| panic!("{id} failed: {e}"));
    let got = String::from_utf8(out).expect("experiment output is UTF-8");
    assert_eq!(
        got, golden,
        "{id}: output drifted from the pre-refactor golden fixture"
    );
}

macro_rules! golden_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            check(
                stringify!($name),
                include_str!(concat!("golden/", stringify!($name), ".txt")),
            );
        }
    };
}

golden_test!(exp_3_2_existence);
golden_test!(exp_4_1_t0_bounds);
golden_test!(exp_4_1_uniform);
golden_test!(exp_4_2_geometric);
golden_test!(exp_4_3_increasing);
golden_test!(exp_5_1_perturb);
golden_test!(exp_5_2_growth);
golden_test!(exp_6_adaptive);
golden_test!(exp_6_greedy);
golden_test!(exp_ablation);
golden_test!(exp_competitive);
golden_test!(exp_discrete);
golden_test!(exp_fault_tolerance);
golden_test!(exp_now_farm);
golden_test!(exp_online);
golden_test!(exp_saves);
golden_test!(exp_sim_validate);
golden_test!(exp_trace_robust);
golden_test!(exp_uniqueness);
golden_test!(exp_utilization);

/// Every experiment must also survive quick mode (the CI smoke): same
/// code path the `cyclesteal exp --quick` smoke exercises, minus process
/// spawning. `exp_obs_validate` runs its full self-test here too.
#[test]
fn quick_mode_runs_every_experiment() {
    let opts = ExpOptions {
        quick: true,
        ..Default::default()
    };
    for exp in cs_bench::experiments::all() {
        let mut out: Vec<u8> = Vec::new();
        run_to_writer(exp, &opts, &mut out)
            .unwrap_or_else(|e| panic!("{} failed under --quick: {e}", exp.id()));
        assert!(!out.is_empty(), "{} printed nothing", exp.id());
    }
}
