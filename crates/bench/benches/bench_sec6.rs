//! Criterion benches for the §6 experiments: greedy scheduling and the
//! progressive (adaptive) planner.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_core::adaptive::AdaptiveScheduler;
use cs_core::greedy::{greedy_schedule, GreedyOptions};
use cs_life::{ArcLife, GeometricDecreasing, Uniform};
use std::hint::black_box;
use std::sync::Arc;

/// EXP-6a kernel: full greedy schedule generation.
fn bench_6_greedy(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_6/greedy");
    let u = Uniform::new(1_000.0).unwrap();
    g.bench_function("uniform", |b| {
        b.iter(|| greedy_schedule(black_box(&u), 5.0, &GreedyOptions::default()).unwrap())
    });
    let geo = GeometricDecreasing::new(2.0).unwrap();
    let opts = GreedyOptions {
        max_periods: 50,
        min_gain: 1e-12,
    };
    g.bench_function("geometric_50_periods", |b| {
        b.iter(|| greedy_schedule(black_box(&geo), 1.0, &opts).unwrap())
    });
    g.finish();
}

/// EXP-6b kernel: one progressive planning step (conditional re-rooting +
/// guideline search), and a full progressive episode.
fn bench_6_adaptive(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_6/adaptive");
    g.sample_size(20);
    let life: ArcLife = Arc::new(Uniform::new(400.0).unwrap());
    g.bench_function("next_period", |b| {
        let sched = AdaptiveScheduler::new(life.clone(), 4.0).unwrap();
        b.iter(|| black_box(&sched).next_period())
    });
    g.bench_function("full_progressive_episode", |b| {
        b.iter(|| {
            let mut sched = AdaptiveScheduler::new(life.clone(), 4.0).unwrap();
            sched.run_to_completion(100).unwrap()
        })
    });
    g.finish();
}

/// EXP-COMP kernel: exact competitive-ratio evaluation and the geometric
/// search (extension module).
fn bench_competitive(cr: &mut Criterion) {
    use cs_core::competitive::{best_geometric, competitive_ratio, geometric_schedule};
    let mut g = cr.benchmark_group("bench_6/competitive");
    let s = geometric_schedule(5.0, 1.05, 1000.0).unwrap();
    g.bench_function("ratio_eval", |b| {
        b.iter(|| competitive_ratio(black_box(&s), 1.0, 10.0, 1000.0).unwrap())
    });
    g.sample_size(10);
    g.bench_function("best_geometric_search", |b| {
        b.iter(|| best_geometric(1.0, 10.0, 1000.0).unwrap())
    });
    g.finish();
}

criterion_group!(sec6, bench_6_greedy, bench_6_adaptive, bench_competitive);
criterion_main!(sec6);
