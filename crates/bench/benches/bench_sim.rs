//! Criterion benches for EXP-SIM and EXP-TRACE kernels: episode execution,
//! Monte-Carlo throughput (serial vs parallel), expected-work evaluation,
//! and the trace-estimation pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::{search, Schedule};
use cs_life::Uniform;
use cs_sim::{run_episode, simulate_expected_work, simulate_expected_work_parallel};
use cs_trace::estimate::estimate_life;
use cs_trace::fit::fit_best;
use cs_trace::owner::sample_absences;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture() -> (Uniform, f64, Schedule) {
    let p = Uniform::new(1_000.0).unwrap();
    let c = 5.0;
    let plan = search::best_guideline_schedule(&p, c).unwrap();
    (p, c, plan.schedule)
}

fn bench_sim_episode(cr: &mut Criterion) {
    let (p, c, s) = fixture();
    let mut g = cr.benchmark_group("bench_sim/episode");
    g.bench_function("run_episode", |b| {
        b.iter(|| run_episode(black_box(&s), black_box(c), black_box(550.0)))
    });
    g.bench_function("expected_work_eval", |b| {
        b.iter(|| black_box(&s).expected_work(black_box(&p), black_box(c)))
    });
    g.finish();
}

fn bench_sim_montecarlo(cr: &mut Criterion) {
    let (p, c, s) = fixture();
    let mut g = cr.benchmark_group("bench_sim/montecarlo");
    g.sample_size(10);
    let trials = 400_000u64;
    g.throughput(Throughput::Elements(trials));
    g.bench_function("serial_400k", |b| {
        b.iter(|| simulate_expected_work(black_box(&s), &p, c, trials, 42))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_400k", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    simulate_expected_work_parallel(black_box(&s), &p, c, trials, 42, threads)
                })
            },
        );
    }
    g.finish();
}

fn bench_trace_pipeline(cr: &mut Criterion) {
    let truth = Uniform::new(50.0).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let samples = sample_absences(&truth, 10_000, &mut rng).unwrap();
    let mut g = cr.benchmark_group("bench_trace/pipeline");
    g.bench_function("estimate_life_10k", |b| {
        b.iter(|| estimate_life(black_box(&samples), 24).unwrap())
    });
    g.sample_size(10);
    g.bench_function("fit_best_10k", |b| {
        b.iter(|| fit_best(black_box(&samples)).unwrap())
    });
    g.finish();
}

criterion_group!(
    sim,
    bench_sim_episode,
    bench_sim_montecarlo,
    bench_trace_pipeline
);
criterion_main!(sim);
