//! Criterion benches for the §4 experiments: guideline generation, `t_0`
//! bracketing, and the optimal baselines for all three families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_core::recurrence::{guideline_schedule, GuidelineOptions};
use cs_core::{bounds, optimal, search};
use cs_life::{GeometricDecreasing, GeometricIncreasing, Polynomial, Uniform};
use std::hint::black_box;

/// EXP-4.1a kernel: the Theorem 3.2/3.3 bracket on the polynomial family.
fn bench_4_1_t0_bounds(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_4_1/t0_bracket");
    for d in [1u32, 2, 4] {
        let p = Polynomial::new(d, 10_000.0).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| bounds::t0_bracket(black_box(&p), black_box(5.0)).unwrap())
        });
    }
    g.finish();
}

/// EXP-4.1b kernel: full guideline generation on the uniform family.
fn bench_4_1_uniform(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_4_1/guideline_schedule");
    for l in [1_000.0, 100_000.0] {
        let p = Uniform::new(l).unwrap();
        let t0 = (2.0f64 * 5.0 * l).sqrt();
        g.bench_with_input(BenchmarkId::from_parameter(l as u64), &l, |b, _| {
            b.iter(|| {
                guideline_schedule(
                    black_box(&p),
                    black_box(5.0),
                    black_box(t0),
                    &GuidelineOptions::default(),
                )
                .unwrap()
            })
        });
    }
    // The full searched plan (bracket + 256-point scan + refinement).
    let p = Uniform::new(1_000.0).unwrap();
    g.bench_function("full_search", |b| {
        b.iter(|| search::best_guideline_schedule(black_box(&p), black_box(5.0)).unwrap())
    });
    g.finish();
}

/// EXP-4.2 kernel: optimal-period solve and guideline search on `a^{−t}`.
fn bench_4_2_geometric(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_4_2/geometric_decreasing");
    g.bench_function("optimal_period_solve", |b| {
        b.iter(|| optimal::geometric_decreasing_optimal(black_box(2.0), black_box(1.0)).unwrap())
    });
    let p = GeometricDecreasing::new(2.0).unwrap();
    g.bench_function("guideline_search", |b| {
        b.iter(|| search::best_guideline_schedule(black_box(&p), black_box(1.0)).unwrap())
    });
    g.finish();
}

/// EXP-4.3 kernel: \[3\]-shape t0 search and guideline search on the
/// increasing-risk family.
fn bench_4_3_increasing(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_4_3/geometric_increasing");
    g.sample_size(20);
    g.bench_function("ref3_shape_search", |b| {
        b.iter(|| optimal::geometric_increasing_optimal(black_box(64.0), black_box(1.0)).unwrap())
    });
    let p = GeometricIncreasing::new(64.0).unwrap();
    g.bench_function("guideline_search", |b| {
        b.iter(|| search::best_guideline_schedule(black_box(&p), black_box(1.0)).unwrap())
    });
    g.finish();
}

criterion_group!(
    sec4,
    bench_4_1_t0_bounds,
    bench_4_1_uniform,
    bench_4_2_geometric,
    bench_4_3_increasing
);
criterion_main!(sec4);
