//! Criterion benches for the §5 experiments: perturbation analysis and the
//! structural-law checks.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_core::structure::{check_growth_law, check_strictly_decreasing};
use cs_core::{perturb, search};
use cs_life::{Polynomial, Shape};
use std::hint::black_box;

fn plan() -> (Polynomial, f64, cs_core::Schedule) {
    let p = Polynomial::new(2, 1_000.0).unwrap();
    let c = 5.0;
    let plan = search::best_guideline_schedule(&p, c).unwrap();
    (p, c, plan.schedule)
}

/// EXP-5.1 kernel: the full perturbation margin over a guideline schedule.
fn bench_5_1_perturb(cr: &mut Criterion) {
    let (p, c, s) = plan();
    let mut g = cr.benchmark_group("bench_5_1/perturbation");
    g.bench_function("local_optimality_margin", |b| {
        b.iter(|| {
            perturb::local_optimality_margin(
                black_box(&s),
                black_box(&p),
                black_box(c),
                &[0.01, 0.1, 1.0],
            )
        })
    });
    g.bench_function("single_perturb_and_eval", |b| {
        b.iter(|| {
            let q = perturb::perturb(black_box(&s), 0, 0.1).unwrap();
            q.expected_work(black_box(&p), black_box(c))
        })
    });
    g.finish();
}

/// EXP-5.2 kernel: the structural predicates.
fn bench_5_2_growth(cr: &mut Criterion) {
    let (_, c, s) = plan();
    let mut g = cr.benchmark_group("bench_5_2/structure_checks");
    g.bench_function("growth_law", |b| {
        b.iter(|| check_growth_law(black_box(&s), Shape::Concave, black_box(c)).is_ok())
    });
    g.bench_function("strictly_decreasing", |b| {
        b.iter(|| check_strictly_decreasing(black_box(&s)).is_ok())
    });
    g.finish();
}

criterion_group!(sec5, bench_5_1_perturb, bench_5_2_growth);
criterion_main!(sec5);
