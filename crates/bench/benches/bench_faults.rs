//! Criterion benches for EXP-FAULT: the farm simulator's cost under fault
//! injection and the resilient master's overhead relative to the fault-free
//! fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_life::{ArcLife, Uniform};
use cs_now::farm::{Farm, FarmConfig, PolicyKind, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_tasks::workloads;
use std::sync::Arc;

fn faulty_config(policy: PolicyKind, intensity: f64) -> FarmConfig {
    let workstations = (0..8)
        .map(|_| {
            let life: ArcLife = Arc::new(Uniform::new(150.0).unwrap());
            WorkstationConfig {
                life: life.clone(),
                believed: life,
                c: 2.0,
                policy,
                gap_mean: 8.0,
                faults: FaultPlan::scaled(intensity),
            }
        })
        .collect();
    let mut config = FarmConfig::new(workstations, 1e6, 7);
    if intensity > 0.0 {
        config.storms = (1..=5).map(|k| 300.0 * k as f64).collect();
    }
    config
}

/// One farm run per policy under escalating fault intensity. Intensity 0 is
/// the fault-free fast path (no fault RNG draws, no lease bookkeeping
/// beyond registration) and doubles as the regression baseline for the
/// resilience layer's overhead.
fn bench_fault_injection(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_faults/farm");
    g.sample_size(20);
    for policy in [
        PolicyKind::Guideline,
        PolicyKind::Greedy,
        PolicyKind::FixedSize(15.0),
    ] {
        for intensity in [0.0, 0.5, 2.0] {
            let id = BenchmarkId::new(policy.label(), intensity);
            g.bench_with_input(id, &intensity, |b, &intensity| {
                b.iter(|| {
                    let bag = workloads::uniform(600, 1.0).unwrap();
                    Farm::new(faulty_config(policy, intensity), bag)
                        .unwrap()
                        .run()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(faults, bench_fault_injection);
criterion_main!(faults);
