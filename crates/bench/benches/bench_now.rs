//! Criterion benches for EXP-NOW and EXP-DISC kernels: the virtual-time
//! farm, replication scaling, task packing and quantization accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::{search, Schedule};
use cs_life::{ArcLife, Uniform};
use cs_now::farm::{Farm, FarmConfig, PolicyKind, WorkstationConfig};
use cs_now::faults::FaultPlan;
use cs_now::replicate::replicate_farm;
use cs_obs::{MemorySink, NoopSink};
use cs_tasks::quantization::fluid_vs_packed;
use cs_tasks::{workloads, TaskBag};
use std::hint::black_box;
use std::sync::Arc;

fn workstations(n: usize, policy: PolicyKind) -> Vec<WorkstationConfig> {
    (0..n)
        .map(|_| {
            let life: ArcLife = Arc::new(Uniform::new(150.0).unwrap());
            WorkstationConfig {
                life: life.clone(),
                believed: life,
                c: 2.0,
                policy,
                gap_mean: 8.0,
                faults: FaultPlan::none(),
            }
        })
        .collect()
}

/// EXP-NOW kernel: one farm run (fixed-size policy keeps the measurement
/// focused on the simulator, not on the guideline search).
fn bench_now_farm(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_now/farm");
    g.sample_size(20);
    for n_ws in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("fixed_policy", n_ws), &n_ws, |b, &n_ws| {
            b.iter(|| {
                let bag = workloads::uniform(1_000, 1.0).unwrap();
                let config =
                    FarmConfig::new(workstations(n_ws, PolicyKind::FixedSize(15.0)), 1e6, 7);
                Farm::new(config, bag).unwrap().run()
            })
        });
    }
    // The observability overhead guard: `untraced` vs `noop_sink` must be
    // within ~2% (the sink is a monomorphized no-op); `memory_sink` shows
    // the cost of actually recording every event.
    for (name, sink_kind) in [("untraced", 0u8), ("noop_sink", 1), ("memory_sink", 2)] {
        g.bench_function(BenchmarkId::new("sink_overhead", name), |b| {
            b.iter(|| {
                let bag = workloads::uniform(1_000, 1.0).unwrap();
                let config = FarmConfig::new(workstations(4, PolicyKind::FixedSize(15.0)), 1e6, 7);
                let farm = Farm::new(config, bag).unwrap();
                match sink_kind {
                    0 => farm.run(),
                    1 => farm.run_observed(&mut NoopSink),
                    _ => farm.run_observed(&mut MemorySink::new()),
                }
            })
        });
    }
    g.sample_size(10);
    g.bench_function("replicate_8x_4threads", |b| {
        let template = FarmConfig::new(workstations(4, PolicyKind::FixedSize(15.0)), 1e6, 1);
        let make_bag = || workloads::uniform(400, 1.0).unwrap();
        b.iter(|| replicate_farm(&template, PolicyKind::FixedSize(15.0), &make_bag, 8, 4).unwrap())
    });
    g.finish();
}

/// EXP-DISC kernel: chunk packing throughput and quantization accounting.
fn bench_discrete(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_discrete/packing");
    let n_tasks = 100_000usize;
    g.throughput(Throughput::Elements(n_tasks as u64));
    g.bench_function("check_out_100k_tasks", |b| {
        b.iter_batched(
            || workloads::uniform(n_tasks, 1.0).unwrap(),
            |mut bag: TaskBag| {
                let mut total = 0.0;
                while !bag.is_drained() {
                    let chunk = bag.check_out(black_box(64.0));
                    total += chunk.total_duration();
                    bag.complete(chunk);
                }
                total
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let p = Uniform::new(1_000.0).unwrap();
    let plan = search::best_guideline_schedule(&p, 5.0).unwrap();
    let schedule: Schedule = plan.schedule;
    g.bench_function("fluid_vs_packed", |b| {
        b.iter_batched(
            || workloads::uniform(10_000, 0.5).unwrap(),
            |mut bag| fluid_vs_packed(black_box(&schedule), &mut bag, 5.0),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(now, bench_now_farm, bench_discrete);
criterion_main!(now);
