//! Criterion benches for the §3 experiment: the Corollary 3.2 existence
//! test and the DP horizon-sweep probe behind EXP-3.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_core::dp;
use cs_core::existence::{cor_3_2_test, horizon_sweep};
use cs_life::{GeometricDecreasing, Pareto};
use std::hint::black_box;

fn bench_3_2_existence(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_3_2/existence");
    let pareto = Pareto::new(2.0).unwrap();
    g.bench_function("cor_3_2_test", |b| {
        b.iter(|| cor_3_2_test(black_box(&pareto), black_box(1.0)).unwrap())
    });
    let geo = GeometricDecreasing::new(2.0).unwrap();
    g.sample_size(10);
    g.bench_function("horizon_sweep_3pts", |b| {
        b.iter(|| horizon_sweep(black_box(&geo), 1.0, &[20.0, 40.0, 80.0], 800).unwrap())
    });
    g.finish();
}

/// The DP oracle itself, scaling with grid size (it is the ground truth of
/// nearly every experiment, so its cost matters).
fn bench_dp_oracle(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("bench_3_2/dp_oracle");
    let p = Pareto::new(2.0).unwrap();
    for n in [500usize, 2_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| dp::solve(black_box(&p), 1.0, 100.0, n).unwrap())
        });
    }
    g.finish();
}

criterion_group!(sec3, bench_3_2_existence, bench_dp_oracle);
criterion_main!(sec3);
