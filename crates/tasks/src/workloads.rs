//! Workload generators: task-duration mixes for the experiments.
//!
//! The paper's motivating applications are scientific codes with "massive
//! numbers of independent repetitive tasks of known durations". These
//! generators produce representative mixes:
//!
//! * [`uniform`] — identical durations (parameter sweeps, Monte-Carlo
//!   batches);
//! * [`jittered`] — identical up to bounded multiplicative noise
//!   (data-dependent inner loops);
//! * [`bimodal`] — a fast/slow mixture (e.g. cheap rejection vs full
//!   evaluation);
//! * [`pareto_tail`] — heavy-tailed durations (render farms, adaptive
//!   integration), the stress case for chunk packing.

use crate::TaskBag;
use rand::Rng;

/// `n` identical tasks of duration `grain`.
pub fn uniform(n: usize, grain: f64) -> Result<TaskBag, &'static str> {
    if !(grain.is_finite() && grain > 0.0) {
        return Err("grain must be positive");
    }
    let mut bag = TaskBag::new();
    for _ in 0..n {
        bag.push(grain)?;
    }
    Ok(bag)
}

/// `n` tasks of duration `grain · U(1−jitter, 1+jitter)`, `0 ≤ jitter < 1`.
pub fn jittered(
    n: usize,
    grain: f64,
    jitter: f64,
    rng: &mut impl Rng,
) -> Result<TaskBag, &'static str> {
    if !(grain.is_finite() && grain > 0.0) {
        return Err("grain must be positive");
    }
    if !(0.0..1.0).contains(&jitter) {
        return Err("jitter must lie in [0, 1)");
    }
    let mut bag = TaskBag::new();
    for _ in 0..n {
        let factor = 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0);
        bag.push(grain * factor)?;
    }
    Ok(bag)
}

/// `n` tasks, a fraction `slow_fraction` of which take `slow` and the rest
/// `fast`.
pub fn bimodal(
    n: usize,
    fast: f64,
    slow: f64,
    slow_fraction: f64,
    rng: &mut impl Rng,
) -> Result<TaskBag, &'static str> {
    if !(fast.is_finite() && fast > 0.0 && slow.is_finite() && slow > 0.0) {
        return Err("durations must be positive");
    }
    if !(0.0..=1.0).contains(&slow_fraction) {
        return Err("slow_fraction must lie in [0, 1]");
    }
    let mut bag = TaskBag::new();
    for _ in 0..n {
        let d = if rng.random::<f64>() < slow_fraction {
            slow
        } else {
            fast
        };
        bag.push(d)?;
    }
    Ok(bag)
}

/// `n` tasks with Pareto-tailed durations: `min_duration · U^{−1/alpha}`
/// (`U ~ U(0,1)`), capped at `cap` to keep single tasks schedulable.
pub fn pareto_tail(
    n: usize,
    min_duration: f64,
    alpha: f64,
    cap: f64,
    rng: &mut impl Rng,
) -> Result<TaskBag, &'static str> {
    if !(min_duration.is_finite() && min_duration > 0.0) {
        return Err("min_duration must be positive");
    }
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err("alpha must be positive");
    }
    if !(cap >= min_duration) {
        return Err("cap must be at least min_duration");
    }
    let mut bag = TaskBag::new();
    for _ in 0..n {
        let u: f64 = rng.random::<f64>().max(1e-12);
        let d = (min_duration * u.powf(-1.0 / alpha)).min(cap);
        bag.push(d)?;
    }
    Ok(bag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_counts_and_work() {
        let bag = uniform(100, 0.5).unwrap();
        assert_eq!(bag.pending_count(), 100);
        assert!((bag.pending_work() - 50.0).abs() < 1e-9);
        assert!(uniform(5, 0.0).is_err());
    }

    #[test]
    fn jittered_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let bag = jittered(1000, 2.0, 0.25, &mut rng).unwrap();
        assert_eq!(bag.pending_count(), 1000);
        let total = bag.pending_work();
        assert!(total > 1500.0 && total < 2500.0);
        assert!(jittered(5, 1.0, 1.0, &mut rng).is_err());
        assert!(jittered(5, -1.0, 0.1, &mut rng).is_err());
    }

    #[test]
    fn bimodal_mix() {
        let mut rng = StdRng::seed_from_u64(11);
        let bag = bimodal(2000, 1.0, 10.0, 0.1, &mut rng).unwrap();
        let mean = bag.pending_work() / 2000.0;
        // Expected mean = 0.9*1 + 0.1*10 = 1.9.
        assert!((mean - 1.9).abs() < 0.25, "mean = {mean}");
        assert!(bimodal(5, 1.0, 2.0, 1.5, &mut rng).is_err());
    }

    #[test]
    fn pareto_tail_capped() {
        let mut rng = StdRng::seed_from_u64(13);
        let bag = pareto_tail(500, 0.5, 1.5, 40.0, &mut rng).unwrap();
        assert_eq!(bag.pending_count(), 500);
        assert!(pareto_tail(5, 1.0, 1.0, 0.5, &mut rng).is_err());
        assert!(pareto_tail(5, 1.0, 0.0, 10.0, &mut rng).is_err());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = jittered(50, 1.0, 0.3, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = jittered(50, 1.0, 0.3, &mut StdRng::seed_from_u64(42)).unwrap();
        assert!((a.pending_work() - b.pending_work()).abs() < 1e-12);
    }
}
