//! Task-granularity (quantization) accounting — the §6 "discrete analogue"
//! question.
//!
//! The paper's model is fluid: a period of length `t` accomplishes exactly
//! `t − c` work. Real chunks are built from indivisible tasks, so the packed
//! work is at most `t − c` and the shortfall depends on the task grain.
//! [`fluid_vs_packed`] walks a fluid schedule over a concrete [`TaskBag`]
//! and reports both totals, letting `exp_discrete` chart the efficiency loss
//! as the grain coarsens.

use crate::{pack_chunk, TaskBag};
use cs_core::Schedule;

/// Outcome of running a fluid schedule over a discrete task bag, assuming
/// the episode is never interrupted (quantization in isolation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationReport {
    /// The fluid model's work: `Σ (t_i ⊖ c)`.
    pub fluid_work: f64,
    /// Work actually packed into the periods from the bag.
    pub packed_work: f64,
    /// Number of periods that received at least one task.
    pub productive_periods: usize,
    /// `packed_work / fluid_work` (1 when the grain divides evenly;
    /// 1 when both are zero).
    pub efficiency: f64,
}

/// Packs the bag's tasks period-by-period into `schedule` and compares
/// against the fluid capacity. The bag is consumed in FIFO order; killed
/// periods are not modeled here (see `cs-sim` for interruption effects).
pub fn fluid_vs_packed(schedule: &Schedule, bag: &mut TaskBag, c: f64) -> QuantizationReport {
    let mut fluid = 0.0;
    let mut packed = 0.0;
    let mut productive = 0usize;
    for &t in schedule.periods() {
        fluid += (t - c).max(0.0);
        let chunk = pack_chunk(bag, t, c);
        if !chunk.is_empty() {
            productive += 1;
            packed += chunk.total_duration();
            bag.complete(chunk);
        }
    }
    let efficiency = if fluid > 0.0 { packed / fluid } else { 1.0 };
    QuantizationReport {
        fluid_work: fluid,
        packed_work: packed,
        productive_periods: productive,
        efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use proptest::prelude::*;

    fn sched(v: &[f64]) -> Schedule {
        Schedule::new(v.to_vec()).unwrap()
    }

    #[test]
    fn perfect_fit_has_unit_efficiency() {
        // Unit tasks, integer budgets: no quantization loss.
        let mut bag = workloads::uniform(100, 1.0).unwrap();
        let s = sched(&[11.0, 6.0, 3.0]);
        let r = fluid_vs_packed(&s, &mut bag, 1.0);
        assert_eq!(r.fluid_work, 10.0 + 5.0 + 2.0);
        assert_eq!(r.packed_work, r.fluid_work);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(r.productive_periods, 3);
    }

    #[test]
    fn coarse_grain_loses_work() {
        // Tasks of 3.0 into a budget of 5.0: one task fits, 2.0 wasted.
        let mut bag = workloads::uniform(10, 3.0).unwrap();
        let s = sched(&[6.0]);
        let r = fluid_vs_packed(&s, &mut bag, 1.0);
        assert_eq!(r.fluid_work, 5.0);
        assert_eq!(r.packed_work, 3.0);
        assert!((r.efficiency - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_reports_unity() {
        let mut bag = workloads::uniform(5, 1.0).unwrap();
        let r = fluid_vs_packed(&Schedule::empty(), &mut bag, 1.0);
        assert_eq!(r.fluid_work, 0.0);
        assert_eq!(r.efficiency, 1.0);
        assert_eq!(r.productive_periods, 0);
    }

    #[test]
    fn bag_drains_before_schedule_ends() {
        let mut bag = workloads::uniform(3, 1.0).unwrap();
        let s = sched(&[3.0, 3.0, 3.0]);
        let r = fluid_vs_packed(&s, &mut bag, 1.0);
        assert_eq!(r.packed_work, 3.0);
        assert!(bag.is_drained());
        // Only the first two periods got tasks (2 + 1).
        assert_eq!(r.productive_periods, 2);
    }

    proptest! {
        /// Packed work never exceeds fluid capacity, and efficiency rises
        /// as the grain shrinks relative to the budget.
        #[test]
        fn prop_packed_bounded_by_fluid(
            grain in 0.05f64..4.0,
            periods in proptest::collection::vec(2.0f64..20.0, 1..6),
        ) {
            let c = 1.0;
            let mut bag = workloads::uniform(10_000, grain).unwrap();
            let s = Schedule::new(periods).unwrap();
            let r = fluid_vs_packed(&s, &mut bag, c);
            prop_assert!(r.packed_work <= r.fluid_work + 1e-9);
            prop_assert!(r.efficiency <= 1.0 + 1e-12);
            // Loss per productive period is below one grain.
            prop_assert!(
                r.fluid_work - r.packed_work <= grain * s.len() as f64 + 1e-9
            );
        }
    }
}
