//! # cs-tasks
//!
//! The data-parallel workload model of the paper's §1: computations that
//! "consist of a massive number of independent repetitive tasks of known
//! durations", as found in many scientific applications.
//!
//! * [`Task`] — an indivisible unit of work with a known duration. Per the
//!   paper's modeling convention, the duration *includes* the marginal cost
//!   of transmitting the task's input and output, so the per-period
//!   communication overhead `c` stays independent of data sizes.
//! * [`TaskBag`] — the master pool on workstation A. Chunks are checked out
//!   for a period; a reclaimed (killed) chunk is returned, because the
//!   draconian contract loses the *work*, not A's knowledge of the tasks.
//! * [`Chunk`] / [`pack_chunk`] — greedy FIFO packing of tasks into the
//!   compute budget `t − c` of a period: the discrete realization of the
//!   paper's fluid "amount of work chosen so that `t_k` time units suffice".
//! * [`workloads`] — generators for uniform, jittered, bimodal and
//!   heavy-tailed task-duration mixes.
//! * [`quantization`] — the §6 "discrete analogue" question made
//!   measurable: how much of a fluid schedule's budget is lost to task
//!   granularity.

#![forbid(unsafe_code)]
// `!(a < b)`-style comparisons deliberately route NaN to the error path.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod quantization;
pub mod workloads;

use std::collections::VecDeque;

/// An indivisible task with a known positive duration (input/output
/// transmission cost folded in — paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Stable identifier assigned by the owning [`TaskBag`].
    pub id: u64,
    /// Execution time on the borrowed workstation.
    pub duration: f64,
}

/// A set of tasks checked out for one cycle-stealing period.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    tasks: Vec<Task>,
}

impl Chunk {
    /// Builds a chunk from explicit tasks, in dispatch order. Used by
    /// resilient masters to re-dispatch copies of in-flight chunks (task ids
    /// are the caller's responsibility; the bag never hands out duplicates
    /// itself).
    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        Self { tasks }
    }

    /// Consumes the chunk, yielding its tasks in dispatch order.
    pub fn into_tasks(self) -> Vec<Task> {
        self.tasks
    }

    /// The tasks in the chunk, in dispatch order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the chunk holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total compute time of the chunk.
    pub fn total_duration(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Keeps only the tasks satisfying the predicate, in place and in
    /// dispatch order. Lets a master drop already-banked duplicates without
    /// reallocating the chunk.
    pub fn retain(&mut self, f: impl FnMut(&Task) -> bool) {
        self.tasks.retain(f);
    }
}

/// The master task pool: a FIFO bag of independent tasks.
///
/// The bag tracks three populations: *pending* tasks awaiting dispatch,
/// *in-flight* chunks checked out to borrowed workstations, and the tally of
/// *completed* work. [`TaskBag::complete`] banks a chunk;
/// [`TaskBag::abandon`] returns a killed chunk's tasks to the head of the
/// queue (they must be redone, the episode's defining loss).
#[derive(Debug, Clone)]
pub struct TaskBag {
    pending: VecDeque<Task>,
    next_id: u64,
    completed_tasks: u64,
    completed_work: f64,
    lost_work: f64,
}

impl TaskBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self {
            pending: VecDeque::new(),
            next_id: 0,
            completed_tasks: 0,
            completed_work: 0.0,
            lost_work: 0.0,
        }
    }

    /// Creates a bag from explicit durations. Non-finite or nonpositive
    /// durations are rejected.
    pub fn from_durations(durations: &[f64]) -> Result<Self, &'static str> {
        let mut bag = Self::new();
        for &d in durations {
            bag.push(d)?;
        }
        Ok(bag)
    }

    /// Appends one task of the given duration; returns its id.
    pub fn push(&mut self, duration: f64) -> Result<u64, &'static str> {
        if !(duration.is_finite() && duration > 0.0) {
            return Err("task duration must be finite and positive");
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(Task { id, duration });
        Ok(id)
    }

    /// Number of pending (not yet dispatched) tasks.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The pending tasks in dispatch (FIFO) order. Lets a master audit its
    /// queue — e.g. to subtract already-banked duplicates when computing
    /// remaining work under result replication.
    pub fn pending_tasks(&self) -> impl Iterator<Item = &Task> {
        self.pending.iter()
    }

    /// Total duration of pending tasks.
    pub fn pending_work(&self) -> f64 {
        self.pending.iter().map(|t| t.duration).sum()
    }

    /// Number of tasks whose results have been banked.
    pub fn completed_count(&self) -> u64 {
        self.completed_tasks
    }

    /// Total duration of banked (successfully completed) tasks.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Total duration of work that was executed but lost to reclamations.
    pub fn lost_work(&self) -> f64 {
        self.lost_work
    }

    /// True when no pending tasks remain.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Checks out the next chunk: greedily packs FIFO tasks whose cumulative
    /// duration fits in `budget`. Returns an empty chunk when the bag is
    /// drained or the first pending task alone exceeds the budget (an
    /// indivisible task cannot be split — paper §2.1).
    pub fn check_out(&mut self, budget: f64) -> Chunk {
        let mut chunk = Chunk::default();
        self.check_out_into(budget, &mut chunk.tasks);
        chunk
    }

    /// [`TaskBag::check_out`] into a caller-provided buffer (cleared first),
    /// so a hot dispatch loop can recycle chunk storage instead of
    /// allocating per period. Packing semantics are identical to
    /// [`TaskBag::check_out`].
    pub fn check_out_into(&mut self, budget: f64, into: &mut Vec<Task>) {
        into.clear();
        if budget <= 0.0 {
            return;
        }
        let mut used = 0.0;
        while let Some(task) = self.pending.front() {
            if used + task.duration > budget + 1e-12 {
                break;
            }
            used += task.duration;
            into.push(self.pending.pop_front().expect("front exists"));
        }
    }

    /// Banks a completed chunk: its work is added to the completed tally.
    pub fn complete(&mut self, chunk: Chunk) {
        self.completed_tasks += chunk.tasks.len() as u64;
        self.completed_work += chunk.total_duration();
    }

    /// Returns a killed chunk's tasks to the **head** of the queue (so the
    /// same tasks are retried first) and records the lost work.
    pub fn abandon(&mut self, chunk: Chunk) {
        self.lost_work += chunk.total_duration();
        self.requeue(chunk);
    }

    /// Returns a chunk's tasks to the head of the queue **without** counting
    /// lost work. For chunks that never executed — a dispatch message lost
    /// in transit, or a lease that timed out — as opposed to work that was
    /// executed and then destroyed by a reclamation ([`TaskBag::abandon`]).
    pub fn requeue(&mut self, chunk: Chunk) {
        for task in chunk.tasks.into_iter().rev() {
            self.pending.push_front(task);
        }
    }
}

impl Default for TaskBag {
    fn default() -> Self {
        Self::new()
    }
}

/// A bag's complete internal state, exposed for checkpoint/restore (the
/// `cs-now` snapshot subsystem). The fields are the bag's raw parts; a
/// state round-tripped through [`TaskBag::restore_state`] reproduces the
/// bag exactly, including the id counter and the work tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBagState {
    /// Pending tasks in dispatch (FIFO) order.
    pub pending: Vec<Task>,
    /// Next id [`TaskBag::push`] would assign.
    pub next_id: u64,
    /// Banked task count.
    pub completed_tasks: u64,
    /// Banked task time.
    pub completed_work: f64,
    /// Executed-then-destroyed task time.
    pub lost_work: f64,
}

impl TaskBag {
    /// Captures the bag's full state for a checkpoint.
    pub fn save_state(&self) -> TaskBagState {
        TaskBagState {
            pending: self.pending.iter().copied().collect(),
            next_id: self.next_id,
            completed_tasks: self.completed_tasks,
            completed_work: self.completed_work,
            lost_work: self.lost_work,
        }
    }

    /// Rebuilds a bag from a captured state.
    pub fn restore_state(state: TaskBagState) -> Self {
        Self {
            pending: state.pending.into(),
            next_id: state.next_id,
            completed_tasks: state.completed_tasks,
            completed_work: state.completed_work,
            lost_work: state.lost_work,
        }
    }
}

/// Packs one chunk for a period of length `t` with overhead `c`: the compute
/// budget is `t − c` (the paper's `t_k ⊖ c` productive capacity).
pub fn pack_chunk(bag: &mut TaskBag, period: f64, c: f64) -> Chunk {
    bag.check_out((period - c).max(0.0))
}

/// [`pack_chunk`] into a caller-provided buffer (cleared first), for
/// dispatch loops that recycle chunk storage.
pub fn pack_chunk_into(bag: &mut TaskBag, period: f64, c: f64, into: &mut Vec<Task>) {
    bag.check_out_into((period - c).max(0.0), into);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_durations() {
        let mut bag = TaskBag::new();
        assert!(bag.push(0.0).is_err());
        assert!(bag.push(-1.0).is_err());
        assert!(bag.push(f64::NAN).is_err());
        assert!(bag.push(2.5).is_ok());
        assert_eq!(bag.pending_count(), 1);
    }

    #[test]
    fn from_durations_round_trip() {
        let bag = TaskBag::from_durations(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(bag.pending_count(), 3);
        assert_eq!(bag.pending_work(), 6.0);
        assert!(TaskBag::from_durations(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn check_out_respects_budget_fifo() {
        let mut bag = TaskBag::from_durations(&[3.0, 3.0, 3.0, 3.0]).unwrap();
        let chunk = bag.check_out(7.0);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.total_duration(), 6.0);
        assert_eq!(bag.pending_count(), 2);
        // FIFO: ids 0 and 1 were taken.
        assert_eq!(chunk.tasks()[0].id, 0);
        assert_eq!(chunk.tasks()[1].id, 1);
    }

    #[test]
    fn check_out_empty_cases() {
        let mut bag = TaskBag::from_durations(&[5.0]).unwrap();
        assert!(bag.check_out(0.0).is_empty());
        assert!(bag.check_out(-1.0).is_empty());
        // First task too big for the budget: nothing is dispatched.
        assert!(bag.check_out(4.0).is_empty());
        assert_eq!(bag.pending_count(), 1);
        // Drained bag.
        let mut empty = TaskBag::new();
        assert!(empty.check_out(10.0).is_empty());
    }

    #[test]
    fn check_out_exact_fit() {
        let mut bag = TaskBag::from_durations(&[2.0, 2.0]).unwrap();
        let chunk = bag.check_out(4.0);
        assert_eq!(chunk.len(), 2);
        assert!(bag.is_drained());
    }

    #[test]
    fn complete_banks_work() {
        let mut bag = TaskBag::from_durations(&[1.0, 2.0]).unwrap();
        let chunk = bag.check_out(10.0);
        bag.complete(chunk);
        assert_eq!(bag.completed_count(), 2);
        assert_eq!(bag.completed_work(), 3.0);
        assert_eq!(bag.lost_work(), 0.0);
    }

    #[test]
    fn abandon_requeues_at_head_and_counts_loss() {
        let mut bag = TaskBag::from_durations(&[1.0, 2.0, 4.0]).unwrap();
        let chunk = bag.check_out(3.0); // ids 0, 1
        assert_eq!(chunk.len(), 2);
        bag.abandon(chunk);
        assert_eq!(bag.lost_work(), 3.0);
        assert_eq!(bag.pending_count(), 3);
        // Retried first, original order.
        let retry = bag.check_out(3.0);
        assert_eq!(retry.tasks()[0].id, 0);
        assert_eq!(retry.tasks()[1].id, 1);
    }

    #[test]
    fn pack_chunk_subtracts_overhead() {
        let mut bag = TaskBag::from_durations(&[1.0; 10]).unwrap();
        let chunk = pack_chunk(&mut bag, 5.5, 2.0);
        assert_eq!(chunk.len(), 3); // budget 3.5 fits three unit tasks
        let none = pack_chunk(&mut bag, 1.5, 2.0);
        assert!(none.is_empty());
    }

    #[test]
    fn requeue_restores_order_without_loss() {
        let mut bag = TaskBag::from_durations(&[1.0, 2.0, 4.0]).unwrap();
        let chunk = bag.check_out(3.0); // ids 0, 1
        bag.requeue(chunk);
        assert_eq!(bag.lost_work(), 0.0);
        assert_eq!(bag.pending_count(), 3);
        let retry = bag.check_out(3.0);
        assert_eq!(retry.tasks()[0].id, 0);
        assert_eq!(retry.tasks()[1].id, 1);
    }

    #[test]
    fn chunk_task_round_trip() {
        let mut bag = TaskBag::from_durations(&[1.0, 2.0]).unwrap();
        let chunk = bag.check_out(10.0);
        let tasks = chunk.clone().into_tasks();
        assert_eq!(tasks.len(), 2);
        let rebuilt = Chunk::from_tasks(tasks);
        assert_eq!(rebuilt, chunk);
        assert_eq!(rebuilt.total_duration(), 3.0);
    }

    #[test]
    fn pending_tasks_iterates_fifo() {
        let bag = TaskBag::from_durations(&[1.0, 2.0, 3.0]).unwrap();
        let ids: Vec<u64> = bag.pending_tasks().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn save_restore_round_trips_mid_run() {
        let mut bag = TaskBag::from_durations(&[2.0, 3.0, 1.0, 4.0]).unwrap();
        let c1 = bag.check_out(5.0);
        bag.complete(c1);
        let c2 = bag.check_out(1.5);
        bag.abandon(c2);
        let state = bag.save_state();
        let restored = TaskBag::restore_state(state.clone());
        assert_eq!(restored.save_state(), state);
        assert_eq!(restored.pending_count(), bag.pending_count());
        assert_eq!(restored.completed_work(), bag.completed_work());
        assert_eq!(restored.lost_work(), bag.lost_work());
        // The id counter survives: new pushes continue the sequence.
        let mut restored = restored;
        let id_a = bag.push(1.0).unwrap();
        let id_b = restored.push(1.0).unwrap();
        assert_eq!(id_a, id_b);
        // FIFO order survives too.
        let a: Vec<u64> = bag.pending_tasks().map(|t| t.id).collect();
        let b: Vec<u64> = restored.pending_tasks().map(|t| t.id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn conservation_of_work() {
        // pending + completed always equals the initial total, regardless of
        // the complete/abandon interleaving.
        let mut bag = TaskBag::from_durations(&[2.0, 3.0, 1.0, 4.0, 2.0]).unwrap();
        let total = bag.pending_work();
        let c1 = bag.check_out(5.0);
        bag.complete(c1);
        let c2 = bag.check_out(5.0);
        bag.abandon(c2);
        let c3 = bag.check_out(100.0);
        bag.complete(c3);
        assert!((bag.completed_work() + bag.pending_work() - total).abs() < 1e-12);
        assert!(bag.is_drained());
    }
}
