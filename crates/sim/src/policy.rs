//! Chunk-sizing policies: the strategies the paper's experiments compare,
//! behind one trait so the simulator and the NOW farm can drive any of
//! them.
//!
//! A policy answers one question, repeatedly: *given that the current
//! episode has survived `elapsed` time units so far, how long should the
//! next period be?* This is exactly the progressive decision loop of §6.

use cs_core::greedy::{greedy_step, GreedyOptions};
use cs_core::recurrence::GuidelineOptions;
use cs_core::search;
use cs_core::Schedule;
use cs_life::{ArcLife, Conditional};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What became of one dispatched period, reported back to the policy by the
/// master (see [`ChunkPolicy::observe`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeriodOutcome {
    /// The chunk completed and its results banked this much task time.
    Banked {
        /// Task time banked.
        work: f64,
    },
    /// The owner reclaimed mid-period; this much executed work was destroyed
    /// (§2.1 draconian semantics).
    Killed {
        /// Task time destroyed.
        lost: f64,
    },
    /// The dispatch or its result was lost in transit: the period elapsed,
    /// nothing banked.
    Lost,
    /// The chunk completed but only after its lease expired (a straggler);
    /// the master may already have re-dispatched its tasks.
    Straggled,
    /// The workstation crashed mid-period and will never answer again.
    Crashed,
}

/// A chunk-sizing policy for cycle-stealing episodes.
pub trait ChunkPolicy: Send {
    /// The next period length given the episode has survived to `elapsed`.
    /// `None` ends the episode voluntarily (no productive period remains).
    fn next_period(&mut self, elapsed: f64) -> Option<f64>;

    /// Resets internal state for a fresh episode.
    fn reset(&mut self);

    /// Human-readable policy name for experiment tables.
    fn name(&self) -> String;

    /// Feedback hook: the master reports how each dispatched period ended.
    /// The default ignores it — the paper's policies are open-loop within an
    /// episode — but adaptive policies can use it to react to losses,
    /// stragglers and kills without changing the dispatch interface.
    fn observe(&mut self, outcome: &PeriodOutcome) {
        let _ = outcome;
    }

    /// Checkpoint hook: serializes whatever mutable state the policy
    /// carries beyond its construction parameters. Stateless policies (the
    /// paper's guideline, greedy and fixed-size schedulers recompute
    /// everything from `elapsed`) return an empty vector — the default.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`ChunkPolicy::save_state`] onto a freshly
    /// constructed policy. The default ignores the bytes (stateless
    /// policies have nothing to restore).
    fn restore_state(&mut self, state: &[u8]) {
        let _ = state;
    }
}

/// Plays out a precomputed schedule, period by period.
#[derive(Debug, Clone)]
pub struct FixedSchedulePolicy {
    schedule: Schedule,
    index: usize,
    label: String,
}

impl FixedSchedulePolicy {
    /// Wraps a schedule with a label for reports.
    pub fn new(schedule: Schedule, label: impl Into<String>) -> Self {
        Self {
            schedule,
            index: 0,
            label: label.into(),
        }
    }
}

impl ChunkPolicy for FixedSchedulePolicy {
    fn next_period(&mut self, _elapsed: f64) -> Option<f64> {
        let t = self.schedule.periods().get(self.index).copied();
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn reset(&mut self) {
        self.index = 0;
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    /// The replay cursor is the only mutable state.
    fn save_state(&self) -> Vec<u8> {
        (self.index as u64).to_le_bytes().to_vec()
    }

    fn restore_state(&mut self, state: &[u8]) {
        if let Ok(bytes) = <[u8; 8]>::try_from(state) {
            self.index = u64::from_le_bytes(bytes) as usize;
        }
    }
}

/// Always asks for the same period length (the naive baseline every
/// practical cycle-stealer starts from).
#[derive(Debug, Clone, Copy)]
pub struct FixedSizePolicy {
    period: f64,
    /// Stop after this much elapsed time (e.g. the known lifespan).
    pub horizon: f64,
}

impl FixedSizePolicy {
    /// A constant-period policy; `horizon` bounds the episode (use
    /// `f64::INFINITY` when no bound is known).
    pub fn new(period: f64, horizon: f64) -> Self {
        Self { period, horizon }
    }
}

impl ChunkPolicy for FixedSizePolicy {
    fn next_period(&mut self, elapsed: f64) -> Option<f64> {
        if elapsed + self.period <= self.horizon {
            Some(self.period)
        } else {
            None
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        format!("fixed({})", self.period)
    }
}

/// Myopic greedy policy: each period maximizes its own expected gain under
/// the believed life function (paper §6).
pub struct GreedyPolicy {
    life: ArcLife,
    c: f64,
    opts: GreedyOptions,
}

impl GreedyPolicy {
    /// Greedy policy under believed life function `life` and overhead `c`.
    pub fn new(life: ArcLife, c: f64) -> Self {
        Self {
            life,
            c,
            opts: GreedyOptions::default(),
        }
    }
}

impl ChunkPolicy for GreedyPolicy {
    fn next_period(&mut self, elapsed: f64) -> Option<f64> {
        let (t, gain) = greedy_step(&self.life, self.c, elapsed)?;
        if gain < self.opts.min_gain {
            None
        } else {
            Some(t)
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "greedy".into()
    }
}

/// Shared memo-cache for [`GuidelinePolicy`] searches.
///
/// `next_period` is a pure function of `(life, c, opts, elapsed)`: the
/// bracket + grid search draws on nothing else. Within a run, `elapsed`
/// values recur heavily — the elapsed chain is built by repeated
/// `fl(fl(start + t) - start)` round-trips, which collapse onto a handful
/// of distinct values per binade of the life function's support — so a
/// map keyed by `elapsed.to_bits()` turns the ~300µs search into a hash
/// lookup after the first visit. The cache stores the *exact* `Option<f64>`
/// the search produced, so cached and uncached runs are bit-identical.
///
/// Sharing is the caller's contract: a cache must only be shared between
/// policies constructed with the same life function, `c`, and options.
/// `cs_scenarios::PolicyCaches` enforces this by keying on
/// `(Arc::as_ptr(life), c.to_bits())`.
pub struct GuidelineCache {
    map: Mutex<HashMap<u64, Option<f64>>>,
}

/// Memory backstop: stop inserting (lookups still work) past this many
/// distinct elapsed values. Real runs see tens of entries; hitting this
/// means something is feeding the cache unbounded distinct times.
const GUIDELINE_CACHE_CAP: usize = 1 << 20;

impl GuidelineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Number of memoized elapsed values.
    pub fn len(&self) -> usize {
        self.map.lock().expect("guideline cache poisoned").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: u64) -> Option<Option<f64>> {
        self.map
            .lock()
            .expect("guideline cache poisoned")
            .get(&key)
            .copied()
    }

    fn store(&self, key: u64, value: Option<f64>) {
        let mut map = self.map.lock().expect("guideline cache poisoned");
        if map.len() < GUIDELINE_CACHE_CAP {
            map.insert(key, value);
        }
    }
}

impl Default for GuidelineCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Guideline policy (the paper's contribution): re-roots the believed life
/// function at the elapsed time and reruns the Thm 3.2/3.3 + eq (3.6)
/// search for the next period — the progressive scheduler of §6.
///
/// Note the cost: every period pays a full bracket + grid search (hundreds
/// of life-function evaluations). That is the price of progressiveness —
/// the believed life function may be refreshed between periods. When it
/// cannot change, plan once and replay via [`FixedSchedulePolicy`] (the two
/// are equivalent under an exact, fixed `p`; see `exp_6_adaptive`), or
/// attach a [`GuidelineCache`] ([`GuidelinePolicy::with_cache`]) to pay
/// each distinct elapsed time once per run instead of once per period.
pub struct GuidelinePolicy {
    life: ArcLife,
    c: f64,
    opts: GuidelineOptions,
    cache: Option<Arc<GuidelineCache>>,
}

impl GuidelinePolicy {
    /// Guideline policy under believed life function `life`, overhead `c`.
    pub fn new(life: ArcLife, c: f64) -> Self {
        Self {
            life,
            c,
            opts: GuidelineOptions::default(),
            cache: None,
        }
    }

    /// Like [`GuidelinePolicy::new`], memoizing searches in `cache`. The
    /// cache may be shared across policies **only** when they were built
    /// from the same life function and `c` — see [`GuidelineCache`].
    pub fn with_cache(life: ArcLife, c: f64, cache: Arc<GuidelineCache>) -> Self {
        Self {
            life,
            c,
            opts: GuidelineOptions::default(),
            cache: Some(cache),
        }
    }

    fn search_period(&self, elapsed: f64) -> Option<f64> {
        let plan = if elapsed == 0.0 {
            search::best_guideline_schedule_with(&self.life, self.c, &self.opts).ok()?
        } else {
            let q = Conditional::new(self.life.clone(), elapsed).ok()?;
            search::best_guideline_schedule_with(&q, self.c, &self.opts).ok()?
        };
        let t = plan.schedule.periods().first().copied()?;
        if t <= self.c || plan.expected_work <= 0.0 {
            None
        } else {
            Some(t)
        }
    }
}

impl ChunkPolicy for GuidelinePolicy {
    fn next_period(&mut self, elapsed: f64) -> Option<f64> {
        match &self.cache {
            None => self.search_period(elapsed),
            Some(cache) => {
                let key = elapsed.to_bits();
                if let Some(hit) = cache.lookup(key) {
                    return hit;
                }
                let computed = self.search_period(elapsed);
                cache.store(key, computed);
                computed
            }
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "guideline".into()
    }
}

/// Runs one episode under a policy with the §2.1 kill semantics, returning
/// banked work. `reclaim` is the owner's return time.
pub fn run_policy_episode(policy: &mut dyn ChunkPolicy, c: f64, reclaim: f64) -> f64 {
    policy.reset();
    let mut elapsed = 0.0;
    let mut banked = 0.0;
    while let Some(t) = policy.next_period(elapsed) {
        if !(t.is_finite() && t > 0.0) {
            break;
        }
        let end = elapsed + t;
        if end >= reclaim {
            return banked;
        }
        banked += (t - c).max(0.0);
        elapsed = end;
    }
    banked
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::Uniform;
    use std::sync::Arc;

    #[test]
    fn fixed_schedule_policy_replays_and_resets() {
        let s = Schedule::new(vec![3.0, 2.0]).unwrap();
        let mut pol = FixedSchedulePolicy::new(s, "test");
        assert_eq!(pol.next_period(0.0), Some(3.0));
        assert_eq!(pol.next_period(3.0), Some(2.0));
        assert_eq!(pol.next_period(5.0), None);
        pol.reset();
        assert_eq!(pol.next_period(0.0), Some(3.0));
        assert_eq!(pol.name(), "test");
    }

    #[test]
    fn fixed_size_policy_respects_horizon() {
        let mut pol = FixedSizePolicy::new(4.0, 10.0);
        assert_eq!(pol.next_period(0.0), Some(4.0));
        assert_eq!(pol.next_period(4.0), Some(4.0));
        assert_eq!(pol.next_period(8.0), None);
        assert!(pol.name().contains("fixed"));
    }

    #[test]
    fn greedy_policy_produces_periods() {
        let life: ArcLife = Arc::new(Uniform::new(100.0).unwrap());
        let mut pol = GreedyPolicy::new(life, 2.0);
        let t = pol.next_period(0.0).unwrap();
        // argmax (t-c)(1 - t/L) = (L + c)/2 = 51.
        assert!((t - 51.0).abs() < 0.1, "t = {t}");
        assert_eq!(pol.name(), "greedy");
    }

    #[test]
    fn guideline_policy_first_period_matches_search() {
        let life: ArcLife = Arc::new(Uniform::new(400.0).unwrap());
        let c = 4.0;
        let mut pol = GuidelinePolicy::new(life, c);
        let t = pol.next_period(0.0).unwrap();
        let plan = search::best_guideline_schedule(&Uniform::new(400.0).unwrap(), c).unwrap();
        assert!((t - plan.schedule.periods()[0]).abs() < 1e-9);
        assert_eq!(pol.name(), "guideline");
    }

    #[test]
    fn cached_guideline_policy_is_bit_identical_to_uncached() {
        let life: ArcLife = Arc::new(Uniform::new(400.0).unwrap());
        let c = 4.0;
        let cache = Arc::new(GuidelineCache::new());
        let mut plain = GuidelinePolicy::new(life.clone(), c);
        let mut cached = GuidelinePolicy::with_cache(life.clone(), c, cache.clone());
        // A second policy sharing the same cache (the farm's many
        // workstations share one believed life function).
        let mut peer = GuidelinePolicy::with_cache(life, c, cache.clone());
        for elapsed in [0.0, 17.25, 123.0, 399.0, 400.0, 1000.0] {
            let want = plain.next_period(elapsed);
            assert_eq!(cached.next_period(elapsed), want, "miss at {elapsed}");
            assert_eq!(cached.next_period(elapsed), want, "hit at {elapsed}");
            assert_eq!(peer.next_period(elapsed), want, "shared hit at {elapsed}");
        }
        // One entry per distinct elapsed value, including memoized `None`s.
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn run_policy_episode_kill_semantics() {
        let s = Schedule::new(vec![5.0, 5.0, 5.0]).unwrap();
        let mut pol = FixedSchedulePolicy::new(s, "s");
        // Reclaim during period 2.
        let banked = run_policy_episode(&mut pol, 1.0, 12.0);
        assert_eq!(banked, 8.0);
        // Never reclaimed.
        let banked = run_policy_episode(&mut pol, 1.0, f64::INFINITY);
        assert_eq!(banked, 12.0);
        // Reclaimed immediately.
        let banked = run_policy_episode(&mut pol, 1.0, 0.0);
        assert_eq!(banked, 0.0);
    }

    #[test]
    fn observe_default_is_noop_and_overridable() {
        // Default implementation: accepted and ignored by every policy.
        let mut fixed = FixedSizePolicy::new(4.0, 10.0);
        fixed.observe(&PeriodOutcome::Lost);
        assert_eq!(fixed.next_period(0.0), Some(4.0));

        // An adaptive policy can override it.
        struct Counting {
            kills: u32,
        }
        impl ChunkPolicy for Counting {
            fn next_period(&mut self, _elapsed: f64) -> Option<f64> {
                Some(5.0)
            }
            fn reset(&mut self) {}
            fn name(&self) -> String {
                "counting".into()
            }
            fn observe(&mut self, outcome: &PeriodOutcome) {
                if matches!(outcome, PeriodOutcome::Killed { .. }) {
                    self.kills += 1;
                }
            }
        }
        let mut p = Counting { kills: 0 };
        p.observe(&PeriodOutcome::Killed { lost: 3.0 });
        p.observe(&PeriodOutcome::Banked { work: 2.0 });
        assert_eq!(p.kills, 1);
    }

    #[test]
    fn fixed_schedule_state_round_trips_mid_schedule() {
        let s = Schedule::new(vec![3.0, 2.0, 1.0]).unwrap();
        let mut pol = FixedSchedulePolicy::new(s.clone(), "test");
        assert_eq!(pol.next_period(0.0), Some(3.0));
        assert_eq!(pol.next_period(3.0), Some(2.0));
        let saved = pol.save_state();
        let mut fresh = FixedSchedulePolicy::new(s, "test");
        fresh.restore_state(&saved);
        assert_eq!(fresh.next_period(5.0), Some(1.0));
        assert_eq!(fresh.next_period(6.0), None);
        // Stateless policies checkpoint to nothing and ignore restores.
        let mut fixed = FixedSizePolicy::new(4.0, 10.0);
        assert!(fixed.save_state().is_empty());
        fixed.restore_state(&saved);
        assert_eq!(fixed.next_period(0.0), Some(4.0));
    }

    #[test]
    fn policies_are_object_safe() {
        let life: ArcLife = Arc::new(Uniform::new(50.0).unwrap());
        let mut policies: Vec<Box<dyn ChunkPolicy>> = vec![
            Box::new(FixedSizePolicy::new(5.0, 50.0)),
            Box::new(GreedyPolicy::new(life.clone(), 1.0)),
            Box::new(GuidelinePolicy::new(life, 1.0)),
        ];
        for p in policies.iter_mut() {
            assert!(p.next_period(0.0).is_some(), "{} gave no period", p.name());
        }
    }
}
