//! # cs-sim
//!
//! Simulation substrate for the cycle-stealing model (paper §2.1).
//!
//! The paper is an analytical study; there is no hardware to run on, and
//! none is needed — the object of study is the episode semantics itself.
//! This crate implements those semantics exactly and uses them to validate
//! the analysis:
//!
//! * [`episode`] — one episode of draconian cycle-stealing: workstation A
//!   feeds periods to workstation B; a reclamation mid-period kills the
//!   period's work and ends the episode. Fluid mode reproduces eq (2.1)'s
//!   accounting; task mode executes a real [`cs_tasks::TaskBag`] chunk by
//!   chunk.
//! * [`montecarlo`] — estimates `E[work]` by simulating many episodes with
//!   reclamation times drawn from the life function (inverse transform),
//!   serially or on the `cs-pool` work-stealing runtime (bit-identical to
//!   serial at every thread count). `exp_sim_validate` shows the
//!   Monte-Carlo mean converging to the analytic `E(S; p)`.
//! * [`policy`] — chunk-sizing policies as a trait, so the same simulator
//!   drives guideline, fixed-size, greedy and adaptive scheduling (used by
//!   `cs-now` for the multi-workstation farm).
//! * [`stats`] — summary statistics with confidence intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod episode;
pub mod montecarlo;
pub mod policy;
pub mod stats;

pub use episode::{run_episode, run_episode_observed, run_episode_tasks, EpisodeOutcome};
pub use montecarlo::{
    simulate_expected_work, simulate_expected_work_observed, simulate_expected_work_parallel,
    simulate_expected_work_parallel_metrics, simulate_expected_work_parallel_observed,
    simulate_expected_work_parallel_profiled, simulate_expected_work_profiled, MonteCarlo,
};
pub use policy::{
    run_policy_episode, ChunkPolicy, FixedSchedulePolicy, FixedSizePolicy, GreedyPolicy,
    GuidelineCache, GuidelinePolicy, PeriodOutcome,
};
pub use stats::Summary;
