//! Summary statistics for Monte-Carlo experiments.

/// Streaming mean/variance accumulator (Welford) with a 95% normal CI.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; NaN with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean (NaN with fewer than 2 observations —
    /// prefer [`Summary::ci95`] when the value reaches a report).
    pub fn std_error(&self) -> f64 {
        (self.variance() / self.n as f64).sqrt()
    }

    /// Half-width of the 95% normal confidence interval for the mean
    /// (NaN with fewer than 2 observations — prefer [`Summary::ci95`] when
    /// the value reaches a report).
    pub fn ci95_half_width(&self) -> f64 {
        1.959_963_984_540_054 * self.std_error()
    }

    /// Half-width of the 95% confidence interval, or `None` with fewer
    /// than 2 observations (when the sample variance — and hence the CI —
    /// is undefined). Use this at reporting sites so a single-sample run
    /// renders "insufficient samples" instead of `NaN`, and so NaN's
    /// always-false comparisons cannot masquerade as model disagreement.
    pub fn ci95(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.ci95_half_width())
    }

    /// Smallest observation (infinite when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−infinite when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.ci95(), None);
    }

    #[test]
    fn ci95_requires_two_samples() {
        // Regression: `ci95_half_width()` is NaN for n = 1, which printed
        // `± NaN` and made agreement checks silently false. `ci95()` makes
        // the undefined case explicit.
        let mut s = Summary::new();
        s.push(5.0);
        assert!(s.ci95_half_width().is_nan());
        assert_eq!(s.ci95(), None);
        s.push(7.0);
        let ci = s.ci95().expect("defined for n >= 2");
        assert!(ci.is_finite() && ci > 0.0);
        assert_eq!(ci, s.ci95_half_width());
    }

    #[test]
    fn known_small_sample() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() + i as f64 * 0.01)
            .collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&Summary::new());
        assert_eq!((a.count(), a.mean()), before);
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-15);
    }
}
