//! Monte-Carlo estimation of an episode's expected work.
//!
//! Reclamation times are drawn from the life function by inverse transform
//! (`P(R > t) = p(t)` ⇒ `R = p⁻¹(U)`); each trial runs one episode with the
//! §2.1 kill semantics. The sample mean converges to the analytic `E(S; p)`
//! of eq (2.1) — the model-validation experiment `exp_sim_validate`.
//!
//! The parallel driver shards trials over crossbeam scoped threads. Each
//! shard gets an independent deterministic RNG seeded by SplitMix64 from the
//! master seed, so results are reproducible regardless of thread count.

use crate::episode::run_episode_observed;
use crate::stats::Summary;
use cs_core::Schedule;
use cs_life::LifeFunction;
use cs_obs::{Event, EventKind, EventSink, NoopSink, SpanId, SpanProfiler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Summary of per-episode banked work.
    pub work: Summary,
    /// Fraction of episodes interrupted mid-schedule.
    pub interrupted_fraction: f64,
    /// Mean number of completed periods.
    pub mean_periods: f64,
    /// Events generated inside parallel worker shards. Shard traces are
    /// counted rather than emitted (they would interleave
    /// nondeterministically across threads), so throughput accounting must
    /// add this to whatever reached the caller's sink. Zero on serial
    /// paths, where every event reaches the sink and is already counted.
    pub shard_events: u64,
}

/// SplitMix64 step, used to derive independent shard seeds from one master
/// seed (Steele et al., "Fast splittable pseudorandom number generators").
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tallies the events a worker shard generates without materializing a
/// trace: the per-trial episode lifecycle still happens, it is just
/// counted instead of recorded, so the master can report an honest
/// event-throughput denominator for parallel runs.
#[derive(Debug, Default)]
struct ShardEventCount {
    events: u64,
}

impl EventSink for ShardEventCount {
    fn emit(&mut self, _event: &Event) {
        self.events += 1;
    }
}

fn run_trials(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
) -> (Summary, u64, u64, u64) {
    let mut counter = ShardEventCount::default();
    let (work, interrupted, periods) =
        run_trials_observed(schedule, p, c, trials, seed, &mut counter, 0);
    (work, interrupted, periods, counter.events)
}

/// The trial loop, with per-episode events routed to `sink` and an
/// `mc_progress` tick every `progress_stride` trials (0 disables progress
/// ticks). The sink never feeds back into the RNG or the episode, so the
/// returned tallies are bit-identical to the unobserved loop.
fn run_trials_observed<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    sink: S,
    progress_stride: u64,
) -> (Summary, u64, u64) {
    run_trials_profiled(
        schedule,
        p,
        c,
        trials,
        seed,
        sink,
        progress_stride,
        &mut SpanProfiler::disabled(),
    )
}

/// [`run_trials_observed`] plus span profiling: each stride of trials
/// (one `mc_progress` interval) runs inside an `mc.trial_batch` span, so
/// the profiler's `span_ns.mc.trial_batch` histogram shows how batch
/// latency is distributed across the run. The profiler only reads the
/// wall clock — trial order, RNG draws and tallies are untouched.
#[allow(clippy::too_many_arguments)]
fn run_trials_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    mut sink: S,
    progress_stride: u64,
    prof: &mut SpanProfiler,
) -> (Summary, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut work = Summary::new();
    let mut interrupted = 0u64;
    let mut periods = 0u64;
    let mut batch = prof.start("mc.trial_batch", &mut sink);
    let mut batch_trials = 0u64;
    for i in 0..trials {
        let u = rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15);
        let r = p.inverse_survival(u);
        let out = run_episode_observed(schedule, c, r, &mut sink);
        work.push(out.work);
        if out.interrupted {
            interrupted += 1;
        }
        periods += out.periods_completed as u64;
        batch_trials += 1;
        let done = i + 1;
        let tick = progress_stride != 0 && (done % progress_stride == 0 || done == trials);
        if tick {
            sink.emit(&Event {
                time: done as f64,
                kind: EventKind::McProgress {
                    done,
                    total: trials,
                },
            });
        }
        if tick || done == trials {
            prof.bump("trials", batch_trials);
            batch_trials = 0;
            prof.end(batch, &mut sink);
            batch = if done < trials {
                prof.start("mc.trial_batch", &mut sink)
            } else {
                SpanId::NONE
            };
        }
    }
    // Zero-trial runs leave the opening batch span dangling; close it.
    prof.end(batch, &mut sink);
    (work, interrupted, periods)
}

/// Serial Monte-Carlo estimate of `E[work]` for `schedule` under `p`.
/// # Examples
///
/// ```
/// use cs_core::Schedule;
/// use cs_life::Uniform;
/// use cs_sim::simulate_expected_work;
/// let p = Uniform::new(100.0).unwrap();
/// let s = Schedule::new(vec![30.0, 20.0]).unwrap();
/// let mc = simulate_expected_work(&s, &p, 2.0, 10_000, 42);
/// let analytic = s.expected_work(&p, 2.0);
/// assert!((mc.work.mean() - analytic).abs() < 5.0 * mc.work.std_error());
/// ```
pub fn simulate_expected_work(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
) -> MonteCarlo {
    // Monomorphized over NoopSink — the unobserved path pays nothing.
    simulate_expected_work_observed(schedule, p, c, trials, seed, NoopSink)
}

/// [`simulate_expected_work`] with a trace: `run_start`, the full episode
/// lifecycle of every trial (episode times restart at 0 each trial),
/// `mc_progress` every `max(1, trials/20)` trials, and a closing `run_end`.
/// The sink is strictly pass-through: the returned [`MonteCarlo`] is
/// bit-identical to the untraced run for the same `(trials, seed)`.
pub fn simulate_expected_work_observed<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    sink: S,
) -> MonteCarlo {
    serial_inner(
        schedule,
        p,
        c,
        trials,
        seed,
        sink,
        &mut SpanProfiler::disabled(),
    )
}

/// [`simulate_expected_work_observed`] plus span profiling: the trial
/// loop runs under an `mc.trials` root span with one `mc.trial_batch`
/// child per progress stride, all recorded into `prof` and emitted to the
/// sink as v2 span events. The span events sit strictly between
/// `run_start` and `run_end` (a trace's first and last lines stay run
/// bookkeeping), and the profiler is pass-through: the returned
/// [`MonteCarlo`] is bit-identical with profiling on or off.
pub fn simulate_expected_work_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    serial_inner(schedule, p, c, trials, seed, sink, prof)
}

fn serial_inner<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    mut sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    sink.emit(&Event {
        time: 0.0,
        kind: EventKind::RunStart {
            seed,
            workstations: 0,
            tasks: 0,
        },
    });
    let stride = (trials / 20).max(1);
    let root = prof.start("mc.trials", &mut sink);
    let (work, interrupted, periods) =
        run_trials_profiled(schedule, p, c, trials, seed, &mut sink, stride, prof);
    prof.end(root, &mut sink);
    let mc = MonteCarlo {
        work,
        interrupted_fraction: interrupted as f64 / trials.max(1) as f64,
        mean_periods: periods as f64 / trials.max(1) as f64,
        shard_events: 0,
    };
    sink.emit(&Event {
        time: trials as f64,
        kind: EventKind::RunEnd {
            banked: mc.work.mean(),
            lost: 0.0,
            drained: false,
        },
    });
    mc
}

/// Parallel Monte-Carlo estimate: trials are sharded across `threads`
/// crossbeam scoped threads with independent SplitMix64-derived seeds, and
/// the per-shard summaries are merged exactly.
///
/// Reproducible for a fixed `(seed, threads)` pair.
pub fn simulate_expected_work_parallel(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
) -> MonteCarlo {
    simulate_expected_work_parallel_observed(schedule, p, c, trials, seed, threads, NoopSink)
}

/// [`simulate_expected_work_parallel`] with a trace. Worker shards run
/// untraced (episode events would interleave nondeterministically across
/// threads); the master emits `run_start`, one `mc_progress` per shard —
/// merged in shard order, so the trace is deterministic for a fixed
/// `(seed, threads)` — and a closing `run_end`. With `threads == 1` (or
/// fewer than 2 trials) this falls back to the serial observed path, which
/// also traces each episode's lifecycle. Either way the sink is strictly
/// pass-through and the returned [`MonteCarlo`] is bit-identical to the
/// untraced run.
pub fn simulate_expected_work_parallel_observed<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    sink: S,
) -> MonteCarlo {
    parallel_inner(
        schedule,
        p,
        c,
        trials,
        seed,
        threads,
        sink,
        &mut SpanProfiler::disabled(),
    )
}

/// [`simulate_expected_work_parallel_observed`] plus span profiling: the
/// fan-out/join sits under an `mc.shards` span and the exact merge under
/// `mc.merge`, both children of the `mc.trials` root. Shards themselves
/// run unprofiled (the profiler is not shared across threads). With one
/// thread this falls back to the serial profiled path, batch spans
/// included. Pass-through: results are bit-identical with profiling on
/// or off.
#[allow(clippy::too_many_arguments)]
pub fn simulate_expected_work_parallel_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    parallel_inner(schedule, p, c, trials, seed, threads, sink, prof)
}

#[allow(clippy::too_many_arguments)]
fn parallel_inner<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    mut sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    let threads = threads.max(1);
    if threads == 1 || trials < 2 {
        return serial_inner(schedule, p, c, trials, seed, sink, prof);
    }
    sink.emit(&Event {
        time: 0.0,
        kind: EventKind::RunStart {
            seed,
            workstations: 0,
            tasks: 0,
        },
    });
    let root = prof.start("mc.trials", &mut sink);
    let mut seed_state = seed;
    let shard_seeds: Vec<u64> = (0..threads).map(|_| splitmix64(&mut seed_state)).collect();
    let base = trials / threads as u64;
    let remainder = trials % threads as u64;
    let shards_span = prof.start("mc.shards", &mut sink);
    let results: Vec<(Summary, u64, u64, u64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shard_seeds
            .iter()
            .enumerate()
            .map(|(i, &shard_seed)| {
                let shard_trials = base + u64::from((i as u64) < remainder);
                scope.spawn(move |_| run_trials(schedule, p, c, shard_trials, shard_seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard panicked"))
            .collect()
    })
    .expect("scope panicked");
    prof.bump("shards", threads as u64);
    prof.end(shards_span, &mut sink);
    let merge_span = prof.start("mc.merge", &mut sink);
    let mut work = Summary::new();
    let mut interrupted = 0u64;
    let mut periods = 0u64;
    let mut shard_events = 0u64;
    let mut done = 0u64;
    for (i, (w, intr, m, ev)) in results.into_iter().enumerate() {
        done += base + u64::from((i as u64) < remainder);
        sink.emit(&Event {
            time: done as f64,
            kind: EventKind::McProgress {
                done,
                total: trials,
            },
        });
        work.merge(&w);
        interrupted += intr;
        periods += m;
        shard_events += ev;
    }
    prof.end(merge_span, &mut sink);
    prof.end(root, &mut sink);
    let mc = MonteCarlo {
        work,
        interrupted_fraction: interrupted as f64 / trials.max(1) as f64,
        mean_periods: periods as f64 / trials.max(1) as f64,
        shard_events,
    };
    sink.emit(&Event {
        time: trials as f64,
        kind: EventKind::RunEnd {
            banked: mc.work.mean(),
            lost: 0.0,
            drained: false,
        },
    });
    mc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::{GeometricDecreasing, GeometricIncreasing, Polynomial, Uniform};

    fn sched(v: &[f64]) -> Schedule {
        Schedule::new(v.to_vec()).unwrap()
    }

    /// The Monte-Carlo mean must match E(S;p) within ~4 standard errors.
    fn assert_matches_analytic(p: &dyn LifeFunction, s: &Schedule, c: f64) {
        let analytic = s.expected_work(p, c);
        let mc = simulate_expected_work(s, p, c, 60_000, 42);
        let err = (mc.work.mean() - analytic).abs();
        let tol = 4.0 * mc.work.std_error() + 1e-9;
        assert!(
            err <= tol,
            "MC mean {} vs analytic {analytic} (err {err}, tol {tol})",
            mc.work.mean()
        );
    }

    #[test]
    fn validates_uniform() {
        let p = Uniform::new(100.0).unwrap();
        assert_matches_analytic(&p, &sched(&[30.0, 25.0, 20.0]), 5.0);
    }

    #[test]
    fn validates_polynomial() {
        let p = Polynomial::new(3, 50.0).unwrap();
        assert_matches_analytic(&p, &sched(&[20.0, 12.0, 8.0]), 2.0);
    }

    #[test]
    fn validates_geometric_decreasing() {
        let p = GeometricDecreasing::new(2.0).unwrap();
        assert_matches_analytic(&p, &sched(&[2.0; 30]), 0.5);
    }

    #[test]
    fn validates_geometric_increasing() {
        let p = GeometricIncreasing::new(32.0).unwrap();
        assert_matches_analytic(&p, &sched(&[20.0, 5.0, 3.0]), 1.0);
    }

    #[test]
    fn interrupted_fraction_matches_survival() {
        // P(interrupted before schedule end) = 1 - p(T_last).
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[40.0]);
        let mc = simulate_expected_work(&s, &p, 1.0, 50_000, 7);
        assert!((mc.interrupted_fraction - 0.4).abs() < 0.01);
        assert!(mc.mean_periods > 0.55 && mc.mean_periods < 0.65);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let a = simulate_expected_work(&s, &p, 2.0, 5000, 99);
        let b = simulate_expected_work(&s, &p, 2.0, 5000, 99);
        assert_eq!(a.work.mean(), b.work.mean());
    }

    #[test]
    fn parallel_matches_analytic_and_is_deterministic() {
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0, 40.0]);
        let c = 4.0;
        let analytic = s.expected_work(&p, c);
        let a = simulate_expected_work_parallel(&s, &p, c, 80_000, 1234, 4);
        let b = simulate_expected_work_parallel(&s, &p, c, 80_000, 1234, 4);
        assert_eq!(
            a.work.mean(),
            b.work.mean(),
            "parallel run not reproducible"
        );
        let err = (a.work.mean() - analytic).abs();
        assert!(err <= 4.0 * a.work.std_error() + 1e-9);
        assert_eq!(a.work.count(), 80_000);
    }

    #[test]
    fn parallel_single_thread_falls_back() {
        let p = Uniform::new(50.0).unwrap();
        let s = sched(&[10.0]);
        let a = simulate_expected_work_parallel(&s, &p, 1.0, 1000, 5, 1);
        let b = simulate_expected_work(&s, &p, 1.0, 1000, 5);
        assert_eq!(a.work.mean(), b.work.mean());
    }

    #[test]
    fn observed_serial_is_passthrough_and_ticks_progress() {
        use cs_obs::MemorySink;
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let plain = simulate_expected_work(&s, &p, 2.0, 400, 99);
        let mut sink = MemorySink::new();
        let traced = simulate_expected_work_observed(&s, &p, 2.0, 400, 99, &mut sink);
        assert_eq!(plain.work.mean().to_bits(), traced.work.mean().to_bits());
        assert_eq!(plain.work.count(), traced.work.count());
        let progress: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                cs_obs::EventKind::McProgress { done, total } => Some((done, total)),
                _ => None,
            })
            .collect();
        assert_eq!(progress.len(), 20);
        assert_eq!(progress.last(), Some(&(400, 400)));
        assert!(matches!(
            sink.events.last().unwrap().kind,
            cs_obs::EventKind::RunEnd { .. }
        ));
    }

    #[test]
    fn observed_parallel_is_passthrough() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        let plain = simulate_expected_work_parallel(&s, &p, 4.0, 8000, 7, 4);
        let mut sink = MemorySink::new();
        let traced = simulate_expected_work_parallel_observed(&s, &p, 4.0, 8000, 7, 4, &mut sink);
        assert_eq!(plain.work.mean().to_bits(), traced.work.mean().to_bits());
        assert_eq!(plain.work.max().to_bits(), traced.work.max().to_bits());
        // run_start + one progress tick per shard + run_end.
        assert_eq!(sink.events.len(), 6);
        assert!(matches!(
            sink.events[0].kind,
            cs_obs::EventKind::RunStart { seed: 7, .. }
        ));
    }

    #[test]
    fn profiled_serial_is_passthrough_with_batch_spans() {
        use cs_obs::{EventKind as K, MemorySink};
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let plain = simulate_expected_work(&s, &p, 2.0, 400, 99);
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::new();
        let profiled = simulate_expected_work_profiled(&s, &p, 2.0, 400, 99, &mut sink, &mut prof);
        // Pass-through: bit-identical tallies.
        assert_eq!(plain.work.mean().to_bits(), profiled.work.mean().to_bits());
        assert_eq!(plain.work.count(), profiled.work.count());
        assert_eq!(plain.interrupted_fraction, profiled.interrupted_fraction);
        // 20 progress strides → 20 batch spans under one mc.trials root.
        assert_eq!(prof.open_spans(), 0);
        let batches = prof.registry().histogram("span_ns.mc.trial_batch").unwrap();
        assert_eq!(batches.count(), 20);
        assert_eq!(
            prof.registry()
                .histogram("span_ns.mc.trials")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(prof.registry().counter("span.mc.trial_batch.trials"), 400);
        // Trace layout: run_start first, run_end last, spans balanced.
        assert!(matches!(
            sink.events.first().unwrap().kind,
            K::RunStart { .. }
        ));
        assert!(matches!(sink.events.last().unwrap().kind, K::RunEnd { .. }));
        let starts = sink
            .events
            .iter()
            .filter(|e| matches!(e.kind, K::SpanStart { .. }))
            .count();
        let ends = sink
            .events
            .iter()
            .filter(|e| matches!(e.kind, K::SpanEnd { .. }))
            .count();
        assert_eq!(starts, 21);
        assert_eq!(starts, ends);
    }

    #[test]
    fn profiled_parallel_is_passthrough_with_shard_spans() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        let plain = simulate_expected_work_parallel(&s, &p, 4.0, 8000, 7, 4);
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::new();
        let profiled =
            simulate_expected_work_parallel_profiled(&s, &p, 4.0, 8000, 7, 4, &mut sink, &mut prof);
        assert_eq!(plain.work.mean().to_bits(), profiled.work.mean().to_bits());
        assert_eq!(plain.work.max().to_bits(), profiled.work.max().to_bits());
        assert_eq!(prof.open_spans(), 0);
        for span in ["span_ns.mc.trials", "span_ns.mc.shards", "span_ns.mc.merge"] {
            assert_eq!(
                prof.registry().histogram(span).unwrap().count(),
                1,
                "{span}"
            );
        }
        // Every emitted line validates under the v2 schema.
        for e in &sink.events {
            cs_obs::validate_line(&e.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn parallel_counts_shard_events_serial_does_not() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        // Serial: every event reaches the sink, so nothing is shard-only.
        let mut sink = MemorySink::new();
        let serial = simulate_expected_work_observed(&s, &p, 4.0, 2000, 7, &mut sink);
        assert_eq!(serial.shard_events, 0);
        let serial_episode_events = sink
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    cs_obs::EventKind::RunStart { .. }
                        | cs_obs::EventKind::RunEnd { .. }
                        | cs_obs::EventKind::McProgress { .. }
                )
            })
            .count() as u64;
        // Parallel: shards trace nothing into the sink, but their event
        // production is tallied. Every trial emits at least an episode
        // start/end pair; the exact total depends on shard RNG draws, so
        // check the tally lands in the same regime as the serial trace
        // rather than demanding equality.
        let par = simulate_expected_work_parallel(&s, &p, 4.0, 2000, 7, 4);
        assert!(
            par.shard_events >= 2 * 2000,
            "shard_events {} < 2 per trial",
            par.shard_events
        );
        // Both runs execute 2000 episodes through the same emitter, so the
        // shard tally lands in the same regime as the serial trace.
        let lo = serial_episode_events / 2;
        let hi = serial_episode_events * 2;
        assert!(
            (lo..=hi).contains(&par.shard_events),
            "shard_events {} outside [{lo}, {hi}]",
            par.shard_events
        );
    }

    #[test]
    fn splitmix_distinct_seeds() {
        let mut st = 17u64;
        let a = splitmix64(&mut st);
        let b = splitmix64(&mut st);
        let c = splitmix64(&mut st);
        assert!(a != b && b != c && a != c);
    }
}
