//! Monte-Carlo estimation of an episode's expected work.
//!
//! Reclamation times are drawn from the life function by inverse transform
//! (`P(R > t) = p(t)` ⇒ `R = p⁻¹(U)`); each trial runs one episode with the
//! §2.1 kill semantics. The sample mean converges to the analytic `E(S; p)`
//! of eq (2.1) — the model-validation experiment `exp_sim_validate`.
//!
//! The parallel driver runs trials on the `cs-pool` work-stealing runtime.
//! The master pre-draws every trial's uniform variate from the *same* RNG
//! stream the serial loop uses, workers run the (pure) inverse transform
//! and episode for dynamically-balanced trial batches, and the master
//! merges per-trial outcomes back in trial order. Consequence: the pooled
//! result is bit-identical to the serial path for **every** thread count —
//! batch decomposition is pure load balancing and cannot leak into the
//! numbers.

use crate::episode::run_episode_observed;
use crate::stats::Summary;
use cs_core::Schedule;
use cs_life::LifeFunction;
use cs_obs::{Event, EventKind, EventSink, NoopSink, SpanId, SpanProfiler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Summary of per-episode banked work.
    pub work: Summary,
    /// Fraction of episodes interrupted mid-schedule.
    pub interrupted_fraction: f64,
    /// Mean number of completed periods.
    pub mean_periods: f64,
    /// Events generated inside pooled worker batches. Worker traces are
    /// counted rather than emitted (they would interleave
    /// nondeterministically across threads), so throughput accounting must
    /// add this to whatever reached the caller's sink. Zero on serial
    /// paths, where every event reaches the sink and is already counted.
    /// Because the pooled path replays the exact serial trial stream, this
    /// tally equals the number of episode events the serial trace would
    /// contain — batch boundaries cannot skew it.
    pub shard_events: u64,
}

/// Tallies the events a pooled worker batch generates without
/// materializing a trace: the per-trial episode lifecycle still happens,
/// it is just counted instead of recorded, so the master can report an
/// honest event-throughput denominator for parallel runs.
#[derive(Debug, Default)]
struct ShardEventCount {
    events: u64,
}

impl EventSink for ShardEventCount {
    fn emit(&mut self, _event: &Event) {
        self.events += 1;
    }
}

/// The serial trial loop plus span profiling: each stride of trials
/// (one `mc_progress` interval) runs inside an `mc.trial_batch` span, so
/// the profiler's `span_ns.mc.trial_batch` histogram shows how batch
/// latency is distributed across the run. The profiler only reads the
/// wall clock — trial order, RNG draws and tallies are untouched.
#[allow(clippy::too_many_arguments)]
fn run_trials_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    mut sink: S,
    progress_stride: u64,
    prof: &mut SpanProfiler,
) -> (Summary, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut work = Summary::new();
    let mut interrupted = 0u64;
    let mut periods = 0u64;
    let mut batch = prof.start("mc.trial_batch", &mut sink);
    let mut batch_trials = 0u64;
    for i in 0..trials {
        let u = rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15);
        let r = p.inverse_survival(u);
        let out = run_episode_observed(schedule, c, r, &mut sink);
        work.push(out.work);
        if out.interrupted {
            interrupted += 1;
        }
        periods += out.periods_completed as u64;
        batch_trials += 1;
        let done = i + 1;
        let tick = progress_stride != 0 && (done % progress_stride == 0 || done == trials);
        if tick {
            sink.emit(&Event {
                time: done as f64,
                kind: EventKind::McProgress {
                    done,
                    total: trials,
                },
            });
        }
        if tick || done == trials {
            prof.bump("trials", batch_trials);
            batch_trials = 0;
            prof.end(batch, &mut sink);
            batch = if done < trials {
                prof.start("mc.trial_batch", &mut sink)
            } else {
                SpanId::NONE
            };
        }
    }
    // Zero-trial runs leave the opening batch span dangling; close it.
    prof.end(batch, &mut sink);
    (work, interrupted, periods)
}

/// Serial Monte-Carlo estimate of `E[work]` for `schedule` under `p`.
/// # Examples
///
/// ```
/// use cs_core::Schedule;
/// use cs_life::Uniform;
/// use cs_sim::simulate_expected_work;
/// let p = Uniform::new(100.0).unwrap();
/// let s = Schedule::new(vec![30.0, 20.0]).unwrap();
/// let mc = simulate_expected_work(&s, &p, 2.0, 10_000, 42);
/// let analytic = s.expected_work(&p, 2.0);
/// assert!((mc.work.mean() - analytic).abs() < 5.0 * mc.work.std_error());
/// ```
pub fn simulate_expected_work(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
) -> MonteCarlo {
    // Monomorphized over NoopSink — the unobserved path pays nothing.
    simulate_expected_work_observed(schedule, p, c, trials, seed, NoopSink)
}

/// [`simulate_expected_work`] with a trace: `run_start`, the full episode
/// lifecycle of every trial (episode times restart at 0 each trial),
/// `mc_progress` every `max(1, trials/20)` trials, and a closing `run_end`.
/// The sink is strictly pass-through: the returned [`MonteCarlo`] is
/// bit-identical to the untraced run for the same `(trials, seed)`.
pub fn simulate_expected_work_observed<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    sink: S,
) -> MonteCarlo {
    serial_inner(
        schedule,
        p,
        c,
        trials,
        seed,
        sink,
        &mut SpanProfiler::disabled(),
    )
}

/// [`simulate_expected_work_observed`] plus span profiling: the trial
/// loop runs under an `mc.trials` root span with one `mc.trial_batch`
/// child per progress stride, all recorded into `prof` and emitted to the
/// sink as v2 span events. The span events sit strictly between
/// `run_start` and `run_end` (a trace's first and last lines stay run
/// bookkeeping), and the profiler is pass-through: the returned
/// [`MonteCarlo`] is bit-identical with profiling on or off.
pub fn simulate_expected_work_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    serial_inner(schedule, p, c, trials, seed, sink, prof)
}

fn serial_inner<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    mut sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    sink.emit(&Event {
        time: 0.0,
        kind: EventKind::RunStart {
            seed,
            workstations: 0,
            tasks: 0,
        },
    });
    let stride = (trials / 20).max(1);
    let root = prof.start("mc.trials", &mut sink);
    let (work, interrupted, periods) =
        run_trials_profiled(schedule, p, c, trials, seed, &mut sink, stride, prof);
    prof.end(root, &mut sink);
    let mc = MonteCarlo {
        work,
        interrupted_fraction: interrupted as f64 / trials.max(1) as f64,
        mean_periods: periods as f64 / trials.max(1) as f64,
        shard_events: 0,
    };
    sink.emit(&Event {
        time: trials as f64,
        kind: EventKind::RunEnd {
            banked: mc.work.mean(),
            lost: 0.0,
            drained: false,
        },
    });
    mc
}

/// Parallel Monte-Carlo estimate on the `cs-pool` work-stealing runtime:
/// the master pre-draws each trial's uniform variate from the unchanged
/// serial RNG stream, workers run dynamically-balanced batches of pure
/// per-trial work (inverse transform + episode), and outcomes are merged
/// back in trial order.
///
/// Bit-identical to [`simulate_expected_work`] for the same
/// `(schedule, p, c, trials, seed)` — regardless of `threads`.
pub fn simulate_expected_work_parallel(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
) -> MonteCarlo {
    simulate_expected_work_parallel_observed(schedule, p, c, trials, seed, threads, NoopSink)
}

/// [`simulate_expected_work_parallel`] with a trace. Worker batches run
/// untraced (episode events would interleave nondeterministically across
/// threads; their production is tallied into `shard_events` instead); the
/// master emits `run_start`, `mc_progress` at exactly the serial milestone
/// set — every `max(1, trials/20)` trials during the in-order merge — and
/// a closing `run_end`, so the trace is identical for every thread count.
/// With `threads == 1` (or fewer than 2 trials) this falls back to the
/// serial observed path, which also traces each episode's lifecycle.
/// Either way the sink is strictly pass-through and the returned
/// [`MonteCarlo`] is bit-identical to the untraced run.
pub fn simulate_expected_work_parallel_observed<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    sink: S,
) -> MonteCarlo {
    parallel_inner(
        schedule,
        p,
        c,
        trials,
        seed,
        threads,
        sink,
        &mut SpanProfiler::disabled(),
    )
    .0
}

/// [`simulate_expected_work_parallel_observed`] plus span profiling: each
/// pre-draw window records an `mc.draw` span (the serial RNG fraction), the
/// pooled fan-out an `mc.pool` span, and the in-order merge an `mc.merge`
/// span, all children of the `mc.trials` root; pool scheduling counters
/// (tasks, steals, parks) are folded in under the root as
/// `span.mc.trials.pool.*`. Workers themselves run unprofiled (the
/// profiler is not shared across threads). With one thread this falls back
/// to the serial profiled path, batch spans included. Pass-through:
/// results are bit-identical with profiling on or off.
#[allow(clippy::too_many_arguments)]
pub fn simulate_expected_work_parallel_profiled<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    sink: S,
    prof: &mut SpanProfiler,
) -> MonteCarlo {
    parallel_inner(schedule, p, c, trials, seed, threads, sink, prof).0
}

/// [`simulate_expected_work_parallel_profiled`] that also hands back the
/// work-stealing pool's scheduling snapshot (`None` when the run fell
/// back to the serial path), so callers can surface worker utilization —
/// tasks, steals, batch sizes, parks — without re-deriving it. The
/// [`MonteCarlo`] result stays bit-identical to every other entry point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_expected_work_parallel_metrics<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    sink: S,
    prof: &mut SpanProfiler,
) -> (MonteCarlo, Option<cs_pool::PoolMetrics>) {
    parallel_inner(schedule, p, c, trials, seed, threads, sink, prof)
}

/// Trials per pre-draw window. At most two windows are in flight (one on
/// the pool, one being drawn or merged by the master), which bounds
/// pooled-path memory (one `f64` variate plus one small outcome tuple per
/// in-flight trial) no matter how many trials the run asks for; windows
/// replay the serial RNG stream back-to-back, so the decomposition is
/// invisible in the results. Sized so the master's serial per-window work
/// (drawing the next window, merging the previous) overlaps a pooled
/// window large enough to hide it.
const MC_WINDOW: u64 = 1 << 16;

#[allow(clippy::too_many_arguments)]
fn parallel_inner<S: EventSink>(
    schedule: &Schedule,
    p: &dyn LifeFunction,
    c: f64,
    trials: u64,
    seed: u64,
    threads: usize,
    mut sink: S,
    prof: &mut SpanProfiler,
) -> (MonteCarlo, Option<cs_pool::PoolMetrics>) {
    let threads = threads.max(1);
    if threads == 1 || trials < 2 {
        return (serial_inner(schedule, p, c, trials, seed, sink, prof), None);
    }
    sink.emit(&Event {
        time: 0.0,
        kind: EventKind::RunStart {
            seed,
            workstations: 0,
            tasks: 0,
        },
    });
    let root = prof.start("mc.trials", &mut sink);
    let pool = cs_pool::Pool::new(threads);
    // The exact RNG stream the serial loop would consume — every variate is
    // drawn here, in trial order, on the master.
    let mut rng = StdRng::seed_from_u64(seed);
    let stride = (trials / 20).max(1);
    let mut work = Summary::new();
    let mut interrupted = 0u64;
    let mut periods = 0u64;
    let mut shard_events = 0u64;
    let mut done = 0u64;
    // The master's serial sections (drawing the next window's variates,
    // merging the previous window's outcomes in trial order) pipeline
    // against the pool: a helper thread drives `map_indexed` so the master
    // is never blocked behind a window it could be drawing or merging.
    // Windows are still drawn, dispatched, and merged strictly in order,
    // so the overlap changes wall-clock only — never a bit of the result.
    type WindowOut = Vec<(Vec<(f64, bool, usize)>, u64)>;
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = std::sync::mpsc::channel::<(Vec<f64>, usize)>();
        let (res_tx, res_rx) = std::sync::mpsc::channel::<WindowOut>();
        let pool = &pool;
        scope.spawn(move || {
            while let Ok((us, batch)) = job_rx.recv() {
                let wlen = us.len();
                let batches = wlen.div_ceil(batch);
                let results = pool.map_indexed(batches, |bi| {
                    let lo = bi * batch;
                    let hi = (lo + batch).min(wlen);
                    let mut counter = ShardEventCount::default();
                    let mut outs = Vec::with_capacity(hi - lo);
                    for &u in &us[lo..hi] {
                        // Pure per-trial work: same inputs → same bits, so
                        // batch decomposition cannot affect any outcome.
                        let r = p.inverse_survival(u);
                        let ep = run_episode_observed(schedule, c, r, &mut counter);
                        outs.push((ep.work, ep.interrupted, ep.periods_completed));
                    }
                    (outs, counter.events)
                });
                if res_tx.send(results).is_err() {
                    break;
                }
            }
        });
        let mut merge = |results: WindowOut,
                         prof: &mut SpanProfiler,
                         sink: &mut S,
                         work: &mut Summary,
                         shard_events: &mut u64| {
            let merge_span = prof.start("mc.merge", sink);
            for (outs, events) in results {
                *shard_events += events;
                for (w, intr, pc) in outs {
                    // Identical accumulation order and operations to the
                    // serial loop — this is what makes the summaries
                    // bit-identical.
                    work.push(w);
                    if intr {
                        interrupted += 1;
                    }
                    periods += pc as u64;
                    done += 1;
                    if done % stride == 0 || done == trials {
                        sink.emit(&Event {
                            time: done as f64,
                            kind: EventKind::McProgress {
                                done,
                                total: trials,
                            },
                        });
                    }
                }
            }
            prof.end(merge_span, sink);
        };
        let mut in_flight = 0u32;
        let mut remaining = trials;
        while remaining > 0 {
            let wlen = remaining.min(MC_WINDOW) as usize;
            remaining -= wlen as u64;
            let draw = prof.start("mc.draw", &mut sink);
            let us: Vec<f64> = (0..wlen)
                .map(|_| rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15))
                .collect();
            prof.end(draw, &mut sink);
            // Small batches relative to window/threads so the pool has
            // slack to balance: a worker that lands expensive episodes
            // simply completes fewer batches while others steal the rest.
            let batch = wlen.div_ceil(threads * 8).clamp(32, 8192);
            prof.bump("batches", wlen.div_ceil(batch) as u64);
            job_tx.send((us, batch)).expect("pool driver thread died");
            in_flight += 1;
            // Merge the previous window while the pool runs this one.
            if in_flight == 2 {
                let wait = prof.start("mc.pool", &mut sink);
                let results = res_rx.recv().expect("pool driver thread died");
                prof.end(wait, &mut sink);
                merge(results, prof, &mut sink, &mut work, &mut shard_events);
                in_flight -= 1;
            }
        }
        drop(job_tx);
        while in_flight > 0 {
            let wait = prof.start("mc.pool", &mut sink);
            let results = res_rx.recv().expect("pool driver thread died");
            prof.end(wait, &mut sink);
            merge(results, prof, &mut sink, &mut work, &mut shard_events);
            in_flight -= 1;
        }
    });
    let pm = pool.metrics();
    prof.bump("pool.tasks", pm.tasks);
    prof.bump("pool.steals", pm.steals);
    prof.bump("pool.stolen_tasks", pm.stolen_tasks);
    prof.bump("pool.parks", pm.parks);
    prof.end(root, &mut sink);
    let mc = MonteCarlo {
        work,
        interrupted_fraction: interrupted as f64 / trials.max(1) as f64,
        mean_periods: periods as f64 / trials.max(1) as f64,
        shard_events,
    };
    sink.emit(&Event {
        time: trials as f64,
        kind: EventKind::RunEnd {
            banked: mc.work.mean(),
            lost: 0.0,
            drained: false,
        },
    });
    (mc, Some(pm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::{GeometricDecreasing, GeometricIncreasing, Polynomial, Uniform};

    fn sched(v: &[f64]) -> Schedule {
        Schedule::new(v.to_vec()).unwrap()
    }

    /// The Monte-Carlo mean must match E(S;p) within ~4 standard errors.
    fn assert_matches_analytic(p: &dyn LifeFunction, s: &Schedule, c: f64) {
        let analytic = s.expected_work(p, c);
        let mc = simulate_expected_work(s, p, c, 60_000, 42);
        let err = (mc.work.mean() - analytic).abs();
        let tol = 4.0 * mc.work.std_error() + 1e-9;
        assert!(
            err <= tol,
            "MC mean {} vs analytic {analytic} (err {err}, tol {tol})",
            mc.work.mean()
        );
    }

    #[test]
    fn validates_uniform() {
        let p = Uniform::new(100.0).unwrap();
        assert_matches_analytic(&p, &sched(&[30.0, 25.0, 20.0]), 5.0);
    }

    #[test]
    fn validates_polynomial() {
        let p = Polynomial::new(3, 50.0).unwrap();
        assert_matches_analytic(&p, &sched(&[20.0, 12.0, 8.0]), 2.0);
    }

    #[test]
    fn validates_geometric_decreasing() {
        let p = GeometricDecreasing::new(2.0).unwrap();
        assert_matches_analytic(&p, &sched(&[2.0; 30]), 0.5);
    }

    #[test]
    fn validates_geometric_increasing() {
        let p = GeometricIncreasing::new(32.0).unwrap();
        assert_matches_analytic(&p, &sched(&[20.0, 5.0, 3.0]), 1.0);
    }

    #[test]
    fn interrupted_fraction_matches_survival() {
        // P(interrupted before schedule end) = 1 - p(T_last).
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[40.0]);
        let mc = simulate_expected_work(&s, &p, 1.0, 50_000, 7);
        assert!((mc.interrupted_fraction - 0.4).abs() < 0.01);
        assert!(mc.mean_periods > 0.55 && mc.mean_periods < 0.65);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let a = simulate_expected_work(&s, &p, 2.0, 5000, 99);
        let b = simulate_expected_work(&s, &p, 2.0, 5000, 99);
        assert_eq!(a.work.mean(), b.work.mean());
    }

    #[test]
    fn parallel_matches_analytic_and_is_deterministic() {
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0, 40.0]);
        let c = 4.0;
        let analytic = s.expected_work(&p, c);
        let a = simulate_expected_work_parallel(&s, &p, c, 80_000, 1234, 4);
        let b = simulate_expected_work_parallel(&s, &p, c, 80_000, 1234, 4);
        assert_eq!(
            a.work.mean(),
            b.work.mean(),
            "parallel run not reproducible"
        );
        let err = (a.work.mean() - analytic).abs();
        assert!(err <= 4.0 * a.work.std_error() + 1e-9);
        assert_eq!(a.work.count(), 80_000);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_any_thread_count() {
        // The load-balancing guarantee: the pooled path replays the serial
        // RNG stream and merge order, so the summary is the same bits no
        // matter how the batches were scheduled.
        let p = Polynomial::new(2, 80.0).unwrap();
        let s = sched(&[25.0, 15.0, 10.0]);
        let serial = simulate_expected_work(&s, &p, 3.0, 30_000, 4242);
        for threads in [2, 3, 4, 8] {
            let par = simulate_expected_work_parallel(&s, &p, 3.0, 30_000, 4242, threads);
            assert_eq!(
                serial.work.mean().to_bits(),
                par.work.mean().to_bits(),
                "{threads} threads"
            );
            assert_eq!(serial.work.min().to_bits(), par.work.min().to_bits());
            assert_eq!(serial.work.max().to_bits(), par.work.max().to_bits());
            assert_eq!(
                serial.work.std_error().to_bits(),
                par.work.std_error().to_bits()
            );
            assert_eq!(serial.interrupted_fraction, par.interrupted_fraction);
            assert_eq!(serial.mean_periods, par.mean_periods);
        }
    }

    #[test]
    fn parallel_single_thread_falls_back() {
        let p = Uniform::new(50.0).unwrap();
        let s = sched(&[10.0]);
        let a = simulate_expected_work_parallel(&s, &p, 1.0, 1000, 5, 1);
        let b = simulate_expected_work(&s, &p, 1.0, 1000, 5);
        assert_eq!(a.work.mean(), b.work.mean());
    }

    #[test]
    fn observed_serial_is_passthrough_and_ticks_progress() {
        use cs_obs::MemorySink;
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let plain = simulate_expected_work(&s, &p, 2.0, 400, 99);
        let mut sink = MemorySink::new();
        let traced = simulate_expected_work_observed(&s, &p, 2.0, 400, 99, &mut sink);
        assert_eq!(plain.work.mean().to_bits(), traced.work.mean().to_bits());
        assert_eq!(plain.work.count(), traced.work.count());
        let progress: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                cs_obs::EventKind::McProgress { done, total } => Some((done, total)),
                _ => None,
            })
            .collect();
        assert_eq!(progress.len(), 20);
        assert_eq!(progress.last(), Some(&(400, 400)));
        assert!(matches!(
            sink.events.last().unwrap().kind,
            cs_obs::EventKind::RunEnd { .. }
        ));
    }

    #[test]
    fn observed_parallel_is_passthrough() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        let plain = simulate_expected_work_parallel(&s, &p, 4.0, 8000, 7, 4);
        let mut sink = MemorySink::new();
        let traced = simulate_expected_work_parallel_observed(&s, &p, 4.0, 8000, 7, 4, &mut sink);
        assert_eq!(plain.work.mean().to_bits(), traced.work.mean().to_bits());
        assert_eq!(plain.work.max().to_bits(), traced.work.max().to_bits());
        // run_start + the serial milestone set (trials/20 stride → 20
        // ticks) + run_end: the parallel trace matches serial cadence.
        assert_eq!(sink.events.len(), 22);
        assert!(matches!(
            sink.events[0].kind,
            cs_obs::EventKind::RunStart { seed: 7, .. }
        ));
        let progress: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e.kind {
                cs_obs::EventKind::McProgress { done, total } => Some((done, total)),
                _ => None,
            })
            .collect();
        assert_eq!(progress.len(), 20);
        assert_eq!(progress.first(), Some(&(400, 8000)));
        assert_eq!(progress.last(), Some(&(8000, 8000)));
    }

    #[test]
    fn profiled_serial_is_passthrough_with_batch_spans() {
        use cs_obs::{EventKind as K, MemorySink};
        let p = Uniform::new(100.0).unwrap();
        let s = sched(&[30.0, 20.0]);
        let plain = simulate_expected_work(&s, &p, 2.0, 400, 99);
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::new();
        let profiled = simulate_expected_work_profiled(&s, &p, 2.0, 400, 99, &mut sink, &mut prof);
        // Pass-through: bit-identical tallies.
        assert_eq!(plain.work.mean().to_bits(), profiled.work.mean().to_bits());
        assert_eq!(plain.work.count(), profiled.work.count());
        assert_eq!(plain.interrupted_fraction, profiled.interrupted_fraction);
        // 20 progress strides → 20 batch spans under one mc.trials root.
        assert_eq!(prof.open_spans(), 0);
        let batches = prof.registry().histogram("span_ns.mc.trial_batch").unwrap();
        assert_eq!(batches.count(), 20);
        assert_eq!(
            prof.registry()
                .histogram("span_ns.mc.trials")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(prof.registry().counter("span.mc.trial_batch.trials"), 400);
        // Trace layout: run_start first, run_end last, spans balanced.
        assert!(matches!(
            sink.events.first().unwrap().kind,
            K::RunStart { .. }
        ));
        assert!(matches!(sink.events.last().unwrap().kind, K::RunEnd { .. }));
        let starts = sink
            .events
            .iter()
            .filter(|e| matches!(e.kind, K::SpanStart { .. }))
            .count();
        let ends = sink
            .events
            .iter()
            .filter(|e| matches!(e.kind, K::SpanEnd { .. }))
            .count();
        assert_eq!(starts, 21);
        assert_eq!(starts, ends);
    }

    #[test]
    fn profiled_parallel_is_passthrough_with_shard_spans() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        let plain = simulate_expected_work_parallel(&s, &p, 4.0, 8000, 7, 4);
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::new();
        let profiled =
            simulate_expected_work_parallel_profiled(&s, &p, 4.0, 8000, 7, 4, &mut sink, &mut prof);
        assert_eq!(plain.work.mean().to_bits(), profiled.work.mean().to_bits());
        assert_eq!(plain.work.max().to_bits(), profiled.work.max().to_bits());
        assert_eq!(prof.open_spans(), 0);
        for span in [
            "span_ns.mc.trials",
            "span_ns.mc.draw",
            "span_ns.mc.pool",
            "span_ns.mc.merge",
        ] {
            assert_eq!(
                prof.registry().histogram(span).unwrap().count(),
                1,
                "{span}"
            );
        }
        // Pool scheduling counters land under the root span.
        assert!(prof.registry().counter("span.mc.trials.pool.tasks") > 0);
        // Every emitted line validates under the v2 schema.
        for e in &sink.events {
            cs_obs::validate_line(&e.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn parallel_counts_shard_events_serial_does_not() {
        use cs_obs::MemorySink;
        let p = Uniform::new(200.0).unwrap();
        let s = sched(&[60.0, 50.0]);
        // Serial: every event reaches the sink, so nothing is shard-only.
        let mut sink = MemorySink::new();
        let serial = simulate_expected_work_observed(&s, &p, 4.0, 2000, 7, &mut sink);
        assert_eq!(serial.shard_events, 0);
        let serial_episode_events = sink
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    cs_obs::EventKind::RunStart { .. }
                        | cs_obs::EventKind::RunEnd { .. }
                        | cs_obs::EventKind::McProgress { .. }
                )
            })
            .count() as u64;
        // Parallel: workers trace nothing into the sink, but their event
        // production is tallied — and because the pooled path replays the
        // exact serial trial stream, the tally EQUALS the serial trace's
        // episode event count, independent of batch boundaries.
        let par = simulate_expected_work_parallel(&s, &p, 4.0, 2000, 7, 4);
        assert_eq!(par.shard_events, serial_episode_events);
        assert!(
            par.shard_events >= 2 * 2000,
            "shard_events {} < 2 per trial",
            par.shard_events
        );
    }
}
