//! One episode of draconian cycle-stealing, simulated exactly per the
//! paper's §2.1 semantics.
//!
//! Workstation A partitions B's availability into periods. Period `k` spans
//! `[τ_k, τ_k + t_k)`: A ships work sized to fill the period (net of the
//! communication overhead `c`), B computes, B ships results back. If the
//! owner reclaims B at time `r ≤ T_k`, the period's work is destroyed and
//! the episode ends; work banked in *earlier* periods survives.

use cs_core::Schedule;
use cs_obs::{Event, EventKind, EventSink};
use cs_tasks::TaskBag;

/// What happened in one simulated episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeOutcome {
    /// Work banked by completed periods (the paper's `Σ (t_i ⊖ c)`).
    pub work: f64,
    /// Number of periods that completed before the reclamation.
    pub periods_completed: usize,
    /// Time at which the episode ended: the reclamation time, or the end of
    /// the schedule if the owner never returned during it.
    pub ended_at: f64,
    /// True when the owner reclaimed B mid-schedule (some work was lost).
    pub interrupted: bool,
    /// Work that was in progress (or committed to the interrupted period)
    /// and destroyed by the reclamation.
    pub lost: f64,
}

/// Simulates one episode in **fluid** mode: each period of length `t`
/// carries exactly `t ⊖ c` work. `reclaim` is the owner's return time
/// (`+∞` for "never during this episode").
///
/// A period ending exactly at the reclamation instant counts as interrupted,
/// matching `p(t) = P(R > t)` in the expectation (2.1).
pub fn run_episode(schedule: &Schedule, c: f64, reclaim: f64) -> EpisodeOutcome {
    // Monomorphized over NoopSink, so the untraced hot path pays nothing.
    run_episode_observed(schedule, c, reclaim, cs_obs::NoopSink)
}

/// [`run_episode`] with episode-lifecycle events (`episode_start`,
/// `period_start`, `period_commit`, `period_interrupt`) emitted to `sink`.
/// Event times are within-episode virtual times (the episode starts at 0);
/// the sink is pass-through, so the outcome is bit-identical to
/// [`run_episode`].
pub fn run_episode_observed<S: EventSink>(
    schedule: &Schedule,
    c: f64,
    reclaim: f64,
    mut sink: S,
) -> EpisodeOutcome {
    sink.emit(&Event {
        time: 0.0,
        kind: EventKind::EpisodeStart { ws: 0 },
    });
    let mut work = 0.0;
    let mut completed = 0usize;
    let mut t_end = 0.0;
    for &t in schedule.periods() {
        let start = t_end;
        t_end = start + t;
        let gain = (t - c).max(0.0);
        sink.emit(&Event {
            time: start,
            kind: EventKind::PeriodStart { ws: 0, len: t },
        });
        if t_end >= reclaim {
            sink.emit(&Event {
                time: reclaim,
                kind: EventKind::PeriodInterrupt { ws: 0, lost: gain },
            });
            return EpisodeOutcome {
                work,
                periods_completed: completed,
                ended_at: reclaim,
                interrupted: true,
                lost: gain,
            };
        }
        sink.emit(&Event {
            time: t_end,
            kind: EventKind::PeriodCommit { ws: 0, work: gain },
        });
        work += gain;
        completed += 1;
    }
    EpisodeOutcome {
        work,
        periods_completed: completed,
        ended_at: t_end,
        interrupted: false,
        lost: 0.0,
    }
}

/// Outcome of a task-level episode (fluid outcome plus task accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEpisodeOutcome {
    /// The fluid-level outcome of the same episode.
    pub fluid: EpisodeOutcome,
    /// Task-time banked (sum of completed chunks' durations).
    pub task_work: f64,
    /// Number of tasks whose results were banked.
    pub tasks_completed: u64,
}

/// Simulates one episode in **task** mode: each period checks a chunk out of
/// `bag` sized to `t − c`; a completed period banks the chunk, an
/// interrupted one abandons it (tasks return to the bag for later retry).
/// Periods whose chunk is empty (bag drained, or grain too coarse) still
/// elapse — A cannot fill them.
pub fn run_episode_tasks(
    schedule: &Schedule,
    c: f64,
    reclaim: f64,
    bag: &mut TaskBag,
) -> TaskEpisodeOutcome {
    let fluid = run_episode(schedule, c, reclaim);
    let mut task_work = 0.0;
    let mut tasks_completed = 0u64;
    let mut t_end = 0.0;
    for &t in schedule.periods() {
        t_end += t;
        if bag.is_drained() {
            break;
        }
        let chunk = cs_tasks::pack_chunk(bag, t, c);
        if t_end >= reclaim {
            bag.abandon(chunk);
            break;
        }
        task_work += chunk.total_duration();
        tasks_completed += chunk.len() as u64;
        bag.complete(chunk);
    }
    TaskEpisodeOutcome {
        fluid,
        task_work,
        tasks_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_tasks::workloads;

    fn sched(v: &[f64]) -> Schedule {
        Schedule::new(v.to_vec()).unwrap()
    }

    #[test]
    fn uninterrupted_banks_everything() {
        let s = sched(&[5.0, 4.0, 3.0]);
        let out = run_episode(&s, 1.0, f64::INFINITY);
        assert_eq!(out.work, 4.0 + 3.0 + 2.0);
        assert_eq!(out.periods_completed, 3);
        assert!(!out.interrupted);
        assert_eq!(out.ended_at, 12.0);
        assert_eq!(out.lost, 0.0);
    }

    #[test]
    fn reclaim_mid_period_loses_that_period() {
        let s = sched(&[5.0, 4.0, 3.0]);
        // Reclaim at 7: period 0 done (T_0 = 5), period 1 in flight.
        let out = run_episode(&s, 1.0, 7.0);
        assert_eq!(out.work, 4.0);
        assert_eq!(out.periods_completed, 1);
        assert!(out.interrupted);
        assert_eq!(out.ended_at, 7.0);
        assert_eq!(out.lost, 3.0);
    }

    #[test]
    fn reclaim_exactly_at_period_end_counts_as_interrupted() {
        let s = sched(&[5.0, 4.0]);
        let out = run_episode(&s, 1.0, 5.0);
        assert_eq!(out.work, 0.0);
        assert_eq!(out.periods_completed, 0);
        assert!(out.interrupted);
    }

    #[test]
    fn reclaim_before_first_period_yields_nothing() {
        let s = sched(&[5.0]);
        let out = run_episode(&s, 1.0, 0.5);
        assert_eq!(out.work, 0.0);
        assert!(out.interrupted);
        assert_eq!(out.ended_at, 0.5);
    }

    #[test]
    fn matches_schedule_work_if_reclaimed_at() {
        let s = sched(&[7.0, 6.0, 2.0, 5.0]);
        let c = 1.5;
        for &r in &[0.0, 3.0, 7.0, 7.1, 13.0, 15.0, 100.0] {
            let out = run_episode(&s, c, r);
            assert_eq!(out.work, s.work_if_reclaimed_at(r, c), "r = {r}");
        }
    }

    #[test]
    fn unproductive_period_banks_zero_but_elapses() {
        let s = sched(&[0.5, 5.0]);
        let out = run_episode(&s, 1.0, f64::INFINITY);
        assert_eq!(out.work, 4.0);
        assert_eq!(out.periods_completed, 2);
    }

    #[test]
    fn task_mode_banks_completed_chunks() {
        let s = sched(&[5.0, 5.0]);
        let mut bag = workloads::uniform(100, 1.0).unwrap();
        let out = run_episode_tasks(&s, 1.0, f64::INFINITY, &mut bag);
        // Each period packs 4 unit tasks.
        assert_eq!(out.tasks_completed, 8);
        assert_eq!(out.task_work, 8.0);
        assert_eq!(bag.completed_count(), 8);
        assert_eq!(out.fluid.work, 8.0);
    }

    #[test]
    fn task_mode_interrupted_chunk_returns_to_bag() {
        let s = sched(&[5.0, 5.0]);
        let mut bag = workloads::uniform(10, 1.0).unwrap();
        // Reclaim during the second period.
        let out = run_episode_tasks(&s, 1.0, 7.0, &mut bag);
        assert_eq!(out.tasks_completed, 4);
        assert_eq!(bag.completed_count(), 4);
        // The second chunk's 4 tasks went back to pending.
        assert_eq!(bag.pending_count(), 6);
        assert_eq!(bag.lost_work(), 4.0);
        assert!(out.fluid.interrupted);
    }

    #[test]
    fn task_mode_drained_bag_stops_packing() {
        let s = sched(&[5.0, 5.0, 5.0]);
        let mut bag = workloads::uniform(5, 1.0).unwrap();
        let out = run_episode_tasks(&s, 1.0, f64::INFINITY, &mut bag);
        assert_eq!(out.tasks_completed, 5);
        assert!(bag.is_drained());
    }

    #[test]
    fn task_mode_coarse_grain_underfills() {
        let s = sched(&[5.0]);
        let mut bag = workloads::uniform(10, 3.0).unwrap();
        let out = run_episode_tasks(&s, 1.0, f64::INFINITY, &mut bag);
        // Budget 4 fits one 3.0 task.
        assert_eq!(out.tasks_completed, 1);
        assert_eq!(out.task_work, 3.0);
        assert!(out.task_work < out.fluid.work);
    }
}
