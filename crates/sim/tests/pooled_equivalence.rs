//! Property test for the pooled Monte-Carlo path (ISSUE 8): for random
//! `(schedule, life, c, trials, seed, threads)`, the work-stealing driver
//! must return results **bit-identical** to the serial path. The pooled
//! path replays the serial RNG stream and merge order, so this property is
//! exact — any deviation means batch decomposition leaked into the
//! numbers, which would invalidate every golden fixture downstream.

use cs_core::Schedule;
use cs_life::{GeometricDecreasing, GeometricIncreasing, LifeFunction, Polynomial, Uniform};
use cs_sim::{simulate_expected_work, simulate_expected_work_parallel};
use proptest::prelude::*;

/// Builds one of the four paper life functions from drawn parameters.
fn life(kind: u8, a: f64, degree: u32) -> Box<dyn LifeFunction> {
    match kind % 4 {
        0 => Box::new(Uniform::new(20.0 + a).unwrap()),
        1 => Box::new(Polynomial::new(1 + degree, 20.0 + a).unwrap()),
        2 => Box::new(GeometricDecreasing::new(1.05 + a / 40.0).unwrap()),
        _ => Box::new(GeometricIncreasing::new(4.0 + a).unwrap()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn pooled_mc_is_bit_identical_to_serial(
        periods in proptest::collection::vec(0.5f64..30.0, 1..10),
        kind in 0u8..4,
        a in 1.0f64..80.0,
        degree in 1u32..4,
        c in 0.0f64..6.0,
        trials in 2u64..3000,
        seed in proptest::num::u64::ANY,
        threads in 2usize..9,
    ) {
        let schedule = Schedule::new(periods).unwrap();
        let p = life(kind, a, degree);
        let serial = simulate_expected_work(&schedule, p.as_ref(), c, trials, seed);
        let pooled =
            simulate_expected_work_parallel(&schedule, p.as_ref(), c, trials, seed, threads);
        prop_assert_eq!(
            serial.work.mean().to_bits(),
            pooled.work.mean().to_bits(),
            "mean differs at {} threads", threads
        );
        prop_assert_eq!(serial.work.count(), pooled.work.count());
        prop_assert_eq!(serial.work.min().to_bits(), pooled.work.min().to_bits());
        prop_assert_eq!(serial.work.max().to_bits(), pooled.work.max().to_bits());
        prop_assert_eq!(
            serial.work.std_error().to_bits(),
            pooled.work.std_error().to_bits()
        );
        prop_assert_eq!(
            serial.interrupted_fraction.to_bits(),
            pooled.interrupted_fraction.to_bits()
        );
        prop_assert_eq!(serial.mean_periods.to_bits(), pooled.mean_periods.to_bits());
    }
}
