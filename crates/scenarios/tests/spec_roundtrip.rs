//! Property tests: every spec type round-trips through its canonical
//! string form (`parse(display(spec)) == spec`), and malformed strings are
//! rejected rather than mis-parsed.
//!
//! Exact equality on the `f64` fields is intentional: Rust's float
//! `Display` emits the shortest string that parses back to the identical
//! bits, so a lossless grammar must round-trip bit-for-bit.
//!
//! Strategies stick to the range/vec subset of the proptest API (the
//! vendored offline stand-in implements exactly that surface); specs are
//! assembled from the drawn numbers inside each test body.

use cs_scenarios::{LifeSpec, PolicySpec, ScenarioSpec};
use proptest::collection::vec;
use proptest::prelude::*;

/// Assembles one spec per family from the drawn parameters.
fn life_spec_from(variant: usize, x: f64, y: f64, d: u32) -> LifeSpec {
    match variant {
        0 => LifeSpec::Uniform { l: x },
        1 => LifeSpec::Poly { d, l: x },
        2 => LifeSpec::Geometric { a: 1.0 + x },
        3 => LifeSpec::Increasing { l: x },
        4 => LifeSpec::Pareto { d: x },
        _ => LifeSpec::Weibull { k: x, lambda: y },
    }
}

/// A scenario name from index draws: letters, digits and the punctuation
/// real registry names use — everything except the reserved `;`.
fn name_from(indices: &[usize]) -> String {
    const ALPHABET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_,()=. -";
    let mut name = String::from("s");
    name.extend(
        indices
            .iter()
            .map(|&i| ALPHABET[i % ALPHABET.len()] as char),
    );
    name
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn life_spec_round_trips(
        variant in 0usize..6,
        x in 1e-6f64..1e9,
        y in 1e-6f64..1e9,
        d in 1u32..64,
    ) {
        let spec = life_spec_from(variant, x, y, d);
        let s = spec.to_string();
        prop_assert_eq!(LifeSpec::parse(&s).unwrap(), spec, "{}", s);
    }

    #[test]
    fn policy_spec_round_trips(variant in 0usize..3, t in 1e-6f64..1e9) {
        let spec = match variant {
            0 => PolicySpec::Guideline,
            1 => PolicySpec::Greedy,
            _ => PolicySpec::FixedSize(t),
        };
        // Both the Display form (`fixed:t`) and the report label
        // (`fixed(t)`) must come back as the same spec.
        prop_assert_eq!(PolicySpec::parse(&spec.to_string()), Ok(spec));
        prop_assert_eq!(PolicySpec::parse(&spec.label()), Ok(spec));
    }

    #[test]
    fn scenario_spec_round_trips(
        name_indices in vec(0usize..1024, 0..24),
        variant in 0usize..6,
        x in 1e-6f64..1e9,
        y in 1e-6f64..1e9,
        d in 1u32..64,
        c in 1e-6f64..1e6,
    ) {
        let spec = ScenarioSpec {
            name: name_from(&name_indices),
            life: life_spec_from(variant, x, y, d),
            c,
        };
        let s = spec.to_string();
        prop_assert_eq!(ScenarioSpec::parse(&s).unwrap(), spec.clone(), "{}", s);
    }

    #[test]
    fn junk_never_panics(bytes in vec(proptest::num::u8::ANY, 0..48)) {
        // Arbitrary (lossily decoded) strings must yield Err, never panic.
        let s = String::from_utf8_lossy(&bytes);
        let _ = LifeSpec::parse(&s);
        let _ = PolicySpec::parse(&s);
        let _ = ScenarioSpec::parse(&s);
    }

    #[test]
    fn life_spec_rejects_trailing_garbage(
        variant in 0usize..6,
        x in 1e-6f64..1e9,
        y in 1e-6f64..1e9,
        d in 1u32..64,
        junk in 0usize..26,
    ) {
        // An extra unknown key=val after a valid spec must not parse.
        let spec = life_spec_from(variant, x, y, d);
        let key = (b'a' + junk as u8) as char;
        let s = format!("{spec},q{key}=1");
        prop_assert!(LifeSpec::parse(&s).is_err(), "{}", s);
    }
}

#[test]
fn malformed_specs_are_rejected() {
    for bad in [
        "",
        "martian",
        "uniform:l=",
        "uniform:l=1e999x",
        "poly:d=-1,l=10",
        "geometric:a=1,a=2",
    ] {
        assert!(LifeSpec::parse(bad).is_err(), "{bad:?}");
    }
    // `weibull:k=1.5` parses (lambda defaults to NaN), but the NaN default
    // must be rejected at build time, like the CLI always did.
    assert!(LifeSpec::parse("weibull:k=1.5").unwrap().build().is_err());
    assert!(PolicySpec::parse("fixed:").is_err());
    assert!(PolicySpec::parse("fixed()").is_err());
    assert!(PolicySpec::parse("Guideline").is_err());
    assert!(ScenarioSpec::parse("x;;c=1").is_err());
    assert!(ScenarioSpec::parse("x;uniform:l=10;d=1").is_err());
}
