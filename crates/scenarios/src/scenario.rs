//! Named scenarios and the canonical registry.

use crate::life::LifeSpec;
use cs_life::ArcLife;
use std::fmt;

/// A named scenario specification: life function + communication overhead.
///
/// Grammar: `<name>;<life-spec>;c=<overhead>` — three `;`-separated fields
/// (the name may not contain `;`), e.g.
/// `uniform(L=1000);uniform:l=1000;c=5`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Short identifier for tables.
    pub name: String,
    /// The life function.
    pub life: LifeSpec,
    /// The communication overhead.
    pub c: f64,
}

/// A realized scenario: the life function is instantiated and ready to use.
pub struct Scenario {
    /// Short identifier for tables.
    pub name: String,
    /// The life function.
    pub life: ArcLife,
    /// The communication overhead.
    pub c: f64,
}

impl ScenarioSpec {
    /// Parses the `<name>;<life-spec>;c=<overhead>` form.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut fields = s.splitn(3, ';');
        let (Some(name), Some(life), Some(c)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "scenario: expected <name>;<life-spec>;c=<overhead>, got {s:?}"
            ));
        };
        if name.is_empty() {
            return Err("scenario: empty name".into());
        }
        let life = LifeSpec::parse(life)?;
        let Some(c) = c.strip_prefix("c=") else {
            return Err(format!(
                "scenario: third field must be c=<overhead>, got {c:?}"
            ));
        };
        let c: f64 = c
            .parse()
            .map_err(|_| format!("scenario: c: bad number {c:?}"))?;
        Ok(Self {
            name: name.to_string(),
            life,
            c,
        })
    }

    /// Instantiates the life function, yielding a runnable [`Scenario`].
    pub fn realize(&self) -> Result<Scenario, String> {
        Ok(Scenario {
            name: self.name.clone(),
            life: self
                .life
                .build()
                .map_err(|e| format!("{}: {e}", self.name))?,
            c: self.c,
        })
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{};{};c={}", self.name, self.life, self.c)
    }
}

impl std::str::FromStr for ScenarioSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// The canonical named scenarios used across DESIGN §5.
pub mod registry {
    use super::{LifeSpec, Scenario, ScenarioSpec};

    /// The canonical trio of \[3\] scenarios (plus a concave polynomial),
    /// at representative parameters — used by the §5/§6 experiments.
    pub fn canonical() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec {
                name: "uniform(L=1000)".into(),
                life: LifeSpec::Uniform { l: 1000.0 },
                c: 5.0,
            },
            ScenarioSpec {
                name: "poly(d=3,L=1000)".into(),
                life: LifeSpec::Poly { d: 3, l: 1000.0 },
                c: 5.0,
            },
            ScenarioSpec {
                name: "geo-dec(a=2)".into(),
                life: LifeSpec::Geometric { a: 2.0 },
                c: 1.0,
            },
            ScenarioSpec {
                name: "geo-inc(L=64)".into(),
                life: LifeSpec::Increasing { l: 64.0 },
                c: 1.0,
            },
        ]
    }

    /// Looks up a canonical scenario by its registered name.
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        canonical().into_iter().find(|s| s.name == name)
    }

    /// The canonical scenarios, realized. Every spec in the registry is
    /// valid by construction, so this cannot fail.
    pub fn canonical_scenarios() -> Vec<Scenario> {
        canonical()
            .iter()
            .map(|s| s.realize().expect("canonical scenario"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_are_valid() {
        let scenarios = registry::canonical_scenarios();
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert_eq!(s.life.survival(0.0), 1.0);
            assert!(s.c > 0.0);
            cs_life::validate::check(s.life.as_ref()).unwrap();
        }
    }

    #[test]
    fn canonical_specs_round_trip() {
        for spec in registry::canonical() {
            let s = spec.to_string();
            assert_eq!(ScenarioSpec::parse(&s).unwrap(), spec, "{s}");
            assert_eq!(registry::by_name(&spec.name), Some(spec));
        }
        assert_eq!(registry::by_name("no-such-scenario"), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "name-only",
            "name;uniform:l=10",
            ";uniform:l=10;c=5",
            "x;martian;c=5",
            "x;uniform:l=10;5",
            "x;uniform:l=10;c=abc",
        ] {
            assert!(ScenarioSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn realize_reports_named_failure() {
        let spec = ScenarioSpec {
            name: "broken".into(),
            life: LifeSpec::Uniform { l: -1.0 },
            c: 1.0,
        };
        let err = spec.realize().map(|s| s.name).unwrap_err();
        assert!(err.starts_with("broken: uniform:"), "{err}");
    }
}
