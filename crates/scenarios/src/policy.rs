//! Typed chunk-policy specifications.
//!
//! [`PolicySpec`] is the single source of truth for which chunk-sizing
//! policies exist, how they are named on the command line (`guideline`,
//! `greedy`, `fixed:<t>`), how they are labelled in reports
//! ([`PolicySpec::label`]), and how they are instantiated against a
//! believed life function ([`PolicySpec::build`]). It replaces the
//! `PolicyKind` enum that used to live in `cs-now::farm`.

use cs_life::{ArcLife, LifeFunction};
use cs_sim::policy::{ChunkPolicy, FixedSizePolicy, GreedyPolicy, GuidelineCache, GuidelinePolicy};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which chunk-sizing policy a workstation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// The paper's guideline scheduler (progressive, conditional).
    Guideline,
    /// Myopic greedy (§6).
    Greedy,
    /// Constant period length.
    FixedSize(f64),
}

/// Why a policy string failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParseError {
    /// Not one of the known policy names.
    Unknown(String),
    /// `fixed:<t>` / `fixed(<t>)` with an unparsable period.
    BadNumber(String),
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyParseError::Unknown(s) => {
                write!(f, "expected guideline | greedy | fixed:<t>, got {s:?}")
            }
            PolicyParseError::BadNumber(t) => write!(f, "fixed: bad number {t:?}"),
        }
    }
}

impl std::error::Error for PolicyParseError {}

impl PolicySpec {
    /// Parses a policy string: `guideline`, `greedy`, `fixed:<t>` (the CLI
    /// form) or `fixed(<t>)` (the report-label form).
    pub fn parse(s: &str) -> Result<Self, PolicyParseError> {
        match s {
            "guideline" => Ok(PolicySpec::Guideline),
            "greedy" => Ok(PolicySpec::Greedy),
            other => {
                let t = other
                    .strip_prefix("fixed:")
                    .or_else(|| {
                        other
                            .strip_prefix("fixed(")
                            .and_then(|rest| rest.strip_suffix(')'))
                    })
                    .ok_or_else(|| PolicyParseError::Unknown(other.to_string()))?;
                let period: f64 = t
                    .parse()
                    .map_err(|_| PolicyParseError::BadNumber(t.to_string()))?;
                Ok(PolicySpec::FixedSize(period))
            }
        }
    }

    /// Label for reports. This is the one string every layer prints for a
    /// policy; [`ChunkPolicy::name`] of the built policy matches it.
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::Guideline => "guideline".into(),
            PolicySpec::Greedy => "greedy".into(),
            PolicySpec::FixedSize(t) => format!("fixed({t})"),
        }
    }

    /// Instantiates the policy against a believed life function and
    /// overhead `c`. A fixed-size policy caps its period at the believed
    /// horizon, like the farm always has.
    pub fn build(&self, life: ArcLife, c: f64) -> Box<dyn ChunkPolicy> {
        match *self {
            PolicySpec::Guideline => Box::new(GuidelinePolicy::new(life, c)),
            PolicySpec::Greedy => Box::new(GreedyPolicy::new(life, c)),
            PolicySpec::FixedSize(t) => {
                let horizon = life.horizon(1e-9);
                Box::new(FixedSizePolicy::new(t, horizon))
            }
        }
    }

    /// Like [`PolicySpec::build`], but guideline policies built from the
    /// same `(life, c)` through the same [`PolicyCaches`] share one
    /// [`GuidelineCache`], so a farm of workstations with a common believed
    /// life function pays each distinct elapsed-time search once per run
    /// instead of once per dispatch. The cache stores exact search results,
    /// so built policies behave bit-identically to [`PolicySpec::build`]'s.
    pub fn build_shared(
        &self,
        life: ArcLife,
        c: f64,
        caches: &mut PolicyCaches,
    ) -> Box<dyn ChunkPolicy> {
        match *self {
            PolicySpec::Guideline => {
                let cache = caches.guideline(&life, c);
                Box::new(GuidelinePolicy::with_cache(life, c, cache))
            }
            _ => self.build(life, c),
        }
    }
}

/// Per-run registry of shared [`GuidelineCache`]s, keyed so a cache is only
/// ever shared between policies whose searches are interchangeable: same
/// believed life function (by `Arc` identity — the farm clones one `Arc`
/// across its workstations) and same overhead `c` (by bit pattern).
#[derive(Default)]
pub struct PolicyCaches {
    guideline: HashMap<(usize, u64), Arc<GuidelineCache>>,
}

impl PolicyCaches {
    /// An empty registry; scope one to a single run.
    pub fn new() -> Self {
        Self::default()
    }

    fn guideline(&mut self, life: &ArcLife, c: f64) -> Arc<GuidelineCache> {
        let key = (Arc::as_ptr(life) as *const () as usize, c.to_bits());
        self.guideline
            .entry(key)
            .or_insert_with(|| Arc::new(GuidelineCache::new()))
            .clone()
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PolicySpec::Guideline => f.write_str("guideline"),
            PolicySpec::Greedy => f.write_str("greedy"),
            PolicySpec::FixedSize(t) => write!(f, "fixed:{t}"),
        }
    }
}

impl std::str::FromStr for PolicySpec {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::Uniform;
    use std::sync::Arc;

    #[test]
    fn parses_and_displays() {
        assert_eq!(PolicySpec::parse("guideline"), Ok(PolicySpec::Guideline));
        assert_eq!(PolicySpec::parse("greedy"), Ok(PolicySpec::Greedy));
        assert_eq!(
            PolicySpec::parse("fixed:12.5"),
            Ok(PolicySpec::FixedSize(12.5))
        );
        assert_eq!(
            PolicySpec::parse("fixed(12.5)"),
            Ok(PolicySpec::FixedSize(12.5))
        );
        assert_eq!(PolicySpec::FixedSize(12.5).to_string(), "fixed:12.5");
        assert_eq!(
            PolicySpec::parse("banana"),
            Err(PolicyParseError::Unknown("banana".into()))
        );
        assert_eq!(
            PolicySpec::parse("fixed:x"),
            Err(PolicyParseError::BadNumber("x".into()))
        );
    }

    #[test]
    fn label_matches_built_policy_name() {
        // The name-drift guard: the spec label and the ChunkPolicy name the
        // farm and experiments print must be the same string.
        let life: ArcLife = Arc::new(Uniform::new(1000.0).unwrap());
        for spec in [
            PolicySpec::Guideline,
            PolicySpec::Greedy,
            PolicySpec::FixedSize(15.0),
            PolicySpec::FixedSize(12.5),
        ] {
            assert_eq!(spec.label(), spec.build(life.clone(), 5.0).name());
        }
    }

    #[test]
    fn build_shared_is_bit_identical_to_build() {
        let life: ArcLife = Arc::new(Uniform::new(1000.0).unwrap());
        let mut caches = PolicyCaches::new();
        for spec in [
            PolicySpec::Guideline,
            PolicySpec::Greedy,
            PolicySpec::FixedSize(15.0),
        ] {
            let mut plain = spec.build(life.clone(), 5.0);
            // Two shared builds against the same registry: the second
            // exercises the cache-hit path populated by the first.
            let mut shared_a = spec.build_shared(life.clone(), 5.0, &mut caches);
            let mut shared_b = spec.build_shared(life.clone(), 5.0, &mut caches);
            for elapsed in [0.0, 250.0, 999.0, 1000.0] {
                let want = plain.next_period(elapsed);
                assert_eq!(shared_a.next_period(elapsed), want, "{spec} @ {elapsed}");
                assert_eq!(shared_b.next_period(elapsed), want, "{spec} @ {elapsed}");
            }
            assert_eq!(shared_a.name(), spec.label());
        }
    }

    #[test]
    fn label_round_trips_through_parse() {
        for spec in [
            PolicySpec::Guideline,
            PolicySpec::Greedy,
            PolicySpec::FixedSize(15.0),
        ] {
            assert_eq!(PolicySpec::parse(&spec.label()), Ok(spec));
            assert_eq!(PolicySpec::parse(&spec.to_string()), Ok(spec));
        }
    }
}
