//! # cs-scenarios
//!
//! The shared scenario/spec layer for the reproduction. The paper's
//! evaluation is a matrix of (life-function scenario × schedule policy ×
//! experiment); this crate owns the typed, round-trippable descriptions of
//! the first two axes so the CLI, the NOW farm and the experiment harness
//! all speak the same language:
//!
//! * [`LifeSpec`] — every CLI-constructible life-function family, with a
//!   compact `family:key=val,…` grammar ([`LifeSpec::parse`] /
//!   [`Display`](std::fmt::Display)) and a builder onto [`cs_life::ArcLife`].
//! * [`PolicySpec`] — the chunk-sizing policies (`guideline`, `greedy`,
//!   `fixed:<t>`), with parsing, display, the canonical report
//!   [`label`](PolicySpec::label) and construction onto
//!   [`cs_sim::policy::ChunkPolicy`].
//! * [`ScenarioSpec`] — a named (life, overhead) pair, plus the
//!   [`registry`] of canonical named scenarios used across DESIGN §5.
//!
//! Every spec satisfies `parse(display(spec)) == spec` (see the proptests
//! under `tests/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod life;
mod policy;
mod scenario;

pub use life::{LifeSpec, LIFE_OPTS};
pub use policy::{PolicyCaches, PolicyParseError, PolicySpec};
pub use scenario::{registry, Scenario, ScenarioSpec};

/// The standard parameter grid the Section-4 experiments sweep.
pub mod grids {
    /// Lifespans for the polynomial/uniform sweeps.
    pub const LIFESPANS: [f64; 4] = [100.0, 1_000.0, 10_000.0, 100_000.0];
    /// Overheads for the polynomial/uniform sweeps.
    pub const OVERHEADS: [f64; 3] = [1.0, 5.0, 20.0];
    /// Degrees for the §4.1 polynomial family.
    pub const DEGREES: [u32; 4] = [1, 2, 3, 4];
    /// Risk factors for the §4.2 geometric family.
    pub const RISK_FACTORS: [f64; 4] = [2.0, std::f64::consts::E, 4.0, 10.0];
    /// Lifespans for the §4.3 geometric-increasing family.
    pub const GEO_INC_LIFESPANS: [f64; 4] = [16.0, 64.0, 256.0, 1024.0];
}
