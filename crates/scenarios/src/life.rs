//! Typed life-function specifications.
//!
//! [`LifeSpec`] covers every life family the command line can construct.
//! Two surfaces feed it:
//!
//! * the compact string grammar `family:key=val,…` ([`LifeSpec::parse`],
//!   round-tripped by the [`Display`](std::fmt::Display) impl), used by scenario strings and
//!   the experiment harness, and
//! * `--key value` option lookups ([`LifeSpec::from_lookup`]), used by the
//!   `cyclesteal` CLI — its defaults and error messages are preserved
//!   verbatim from the original `cs-cli::life_spec` module.

use cs_life::{
    ArcLife, GeometricDecreasing, GeometricIncreasing, Pareto, Polynomial, Uniform, Weibull,
};
use std::fmt;
use std::sync::Arc;

/// Options every life-function spec may carry (the CLI allowlist).
pub const LIFE_OPTS: &[&str] = &["family", "l", "d", "a", "half-life", "k", "lambda"];

/// A parsed life-function specification.
///
/// Grammar (compact form, one `family:key=val,…` token):
///
/// * `uniform:l=<lifespan>`
/// * `poly:d=<degree>,l=<lifespan>`
/// * `geometric:a=<risk factor>` (or `geometric:half-life=<h>`)
/// * `increasing:l=<lifespan>`
/// * `pareto:d=<exponent>`
/// * `weibull:k=<shape>,lambda=<scale>`
///
/// Family aliases accepted on parse: `polynomial` for `poly`, `geo` for
/// `geometric`, `coffee` for `increasing`. [`Display`](std::fmt::Display) always emits the
/// canonical form, and `parse(display(spec)) == spec` for every valid spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifeSpec {
    /// Uniform lifespan on `[0, l]`.
    Uniform {
        /// Lifespan `L`.
        l: f64,
    },
    /// Polynomial survival of degree `d` on `[0, l]`.
    Poly {
        /// Degree `d`.
        d: u32,
        /// Lifespan `L`.
        l: f64,
    },
    /// Geometric-decreasing lifespan `p_a(t) = a^{-t}`.
    Geometric {
        /// Risk factor `a > 1`.
        a: f64,
    },
    /// Geometric-increasing risk ("coffee break") with lifespan `l`.
    Increasing {
        /// Lifespan `L`.
        l: f64,
    },
    /// Pareto (heavy-tailed) survival with exponent `d`.
    Pareto {
        /// Tail exponent `d`.
        d: f64,
    },
    /// Weibull survival with shape `k` and scale `lambda`.
    Weibull {
        /// Shape `k`.
        k: f64,
        /// Scale `λ`.
        lambda: f64,
    },
}

/// One `key=val` parameter bag for [`LifeSpec::parse`], with CLI-grade
/// duplicate/unknown rejection.
struct Params<'a> {
    family: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Params<'a> {
    fn parse(family: &'a str, body: &'a str) -> Result<Self, String> {
        let mut pairs: Vec<(&'a str, &'a str)> = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                let Some((k, v)) = item.split_once('=') else {
                    return Err(format!("{family}: expected key=val, got {item:?}"));
                };
                if pairs.iter().any(|&(seen, _)| seen == k) {
                    return Err(format!("{family}: duplicate parameter {k:?}"));
                }
                pairs.push((k, v));
            }
        }
        Ok(Self { family, pairs })
    }

    fn take(&mut self, key: &str) -> Option<&'a str> {
        let at = self.pairs.iter().position(|&(k, _)| k == key)?;
        Some(self.pairs.remove(at).1)
    }

    fn take_f64(&mut self, key: &str, default: f64) -> Result<f64, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{}: {key}: bad number {v:?}", self.family)),
        }
    }

    fn take_u32(&mut self, key: &str, default: u32) -> Result<u32, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{}: {key}: bad integer {v:?}", self.family)),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.pairs.first() {
            None => Ok(()),
            Some(&(k, _)) => Err(format!("{}: unknown parameter {k:?}", self.family)),
        }
    }
}

impl LifeSpec {
    /// Parses the compact `family:key=val,…` form.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (family, body) = match s.split_once(':') {
            Some((f, b)) => (f, b),
            None => (s, ""),
        };
        let mut p = Params::parse(family, body)?;
        let spec = match family {
            "uniform" => LifeSpec::Uniform {
                l: p.take_f64("l", f64::NAN)?,
            },
            "poly" | "polynomial" => LifeSpec::Poly {
                d: p.take_u32("d", 2)?,
                l: p.take_f64("l", f64::NAN)?,
            },
            "geometric" | "geo" => {
                if let Some(h) = p.take("half-life") {
                    let h: f64 = h
                        .parse()
                        .map_err(|_| format!("geometric: half-life: bad number {h:?}"))?;
                    let g = GeometricDecreasing::from_half_life(h)
                        .map_err(|e| format!("geometric: {e}"))?;
                    LifeSpec::Geometric { a: g.a() }
                } else {
                    LifeSpec::Geometric {
                        a: p.take_f64("a", 2.0)?,
                    }
                }
            }
            "increasing" | "coffee" => LifeSpec::Increasing {
                l: p.take_f64("l", f64::NAN)?,
            },
            "pareto" => LifeSpec::Pareto {
                d: p.take_f64("d", 2.0)?,
            },
            "weibull" => LifeSpec::Weibull {
                k: p.take_f64("k", 1.5)?,
                lambda: p.take_f64("lambda", f64::NAN)?,
            },
            other => {
                return Err(format!(
                    "unknown family {other:?}; expected uniform | poly | geometric | increasing | pareto | weibull"
                ))
            }
        };
        p.finish()?;
        Ok(spec)
    }

    /// Builds a life-function spec from `--key value` option lookups (the
    /// CLI surface). Defaults and error messages match the original
    /// `cyclesteal` behaviour exactly: the family defaults to `uniform`,
    /// `d` to 2, `a` to 2, `k` to 1.5, and lifespans/scales to NaN so the
    /// family constructor rejects their absence in [`LifeSpec::build`].
    pub fn from_lookup<'a, F>(get: F) -> Result<Self, String>
    where
        F: Fn(&str) -> Option<&'a str>,
    {
        let f64_or = |key: &str, default: f64| -> Result<f64, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--{key}: expected a number, got {v:?}")),
            }
        };
        let usize_or = |key: &str, default: usize| -> Result<usize, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--{key}: expected an integer, got {v:?}")),
            }
        };
        match get("family").unwrap_or("uniform") {
            "uniform" => Ok(LifeSpec::Uniform {
                l: f64_or("l", f64::NAN)?,
            }),
            "poly" | "polynomial" => Ok(LifeSpec::Poly {
                d: usize_or("d", 2)? as u32,
                l: f64_or("l", f64::NAN)?,
            }),
            "geometric" | "geo" => {
                if let Some(h) = get("half-life") {
                    let h: f64 = h
                        .parse()
                        .map_err(|_| format!("--half-life: bad number {h:?}"))?;
                    let g = GeometricDecreasing::from_half_life(h)
                        .map_err(|e| format!("geometric: {e}"))?;
                    Ok(LifeSpec::Geometric { a: g.a() })
                } else {
                    Ok(LifeSpec::Geometric {
                        a: f64_or("a", 2.0)?,
                    })
                }
            }
            "increasing" | "coffee" => Ok(LifeSpec::Increasing {
                l: f64_or("l", f64::NAN)?,
            }),
            "pareto" => Ok(LifeSpec::Pareto {
                d: f64_or("d", 2.0)?,
            }),
            "weibull" => Ok(LifeSpec::Weibull {
                k: f64_or("k", 1.5)?,
                lambda: f64_or("lambda", f64::NAN)?,
            }),
            other => Err(format!(
                "unknown family {other:?}; expected uniform | poly | geometric | increasing | pareto | weibull"
            )),
        }
    }

    /// Instantiates the life function, validating parameters. Error
    /// messages carry the family prefix the CLI has always printed
    /// (e.g. `"uniform: …"`).
    pub fn build(&self) -> Result<ArcLife, String> {
        Ok(match *self {
            LifeSpec::Uniform { l } => {
                Arc::new(Uniform::new(l).map_err(|e| format!("uniform: {e}"))?)
            }
            LifeSpec::Poly { d, l } => {
                Arc::new(Polynomial::new(d, l).map_err(|e| format!("poly: {e}"))?)
            }
            LifeSpec::Geometric { a } => {
                Arc::new(GeometricDecreasing::new(a).map_err(|e| format!("geometric: {e}"))?)
            }
            LifeSpec::Increasing { l } => {
                Arc::new(GeometricIncreasing::new(l).map_err(|e| format!("increasing: {e}"))?)
            }
            LifeSpec::Pareto { d } => Arc::new(Pareto::new(d).map_err(|e| format!("pareto: {e}"))?),
            LifeSpec::Weibull { k, lambda } => {
                Arc::new(Weibull::new(k, lambda).map_err(|e| format!("weibull: {e}"))?)
            }
        })
    }

    /// The canonical family name (the one [`Display`](std::fmt::Display) emits).
    pub fn family(&self) -> &'static str {
        match self {
            LifeSpec::Uniform { .. } => "uniform",
            LifeSpec::Poly { .. } => "poly",
            LifeSpec::Geometric { .. } => "geometric",
            LifeSpec::Increasing { .. } => "increasing",
            LifeSpec::Pareto { .. } => "pareto",
            LifeSpec::Weibull { .. } => "weibull",
        }
    }
}

impl fmt::Display for LifeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LifeSpec::Uniform { l } => write!(f, "uniform:l={l}"),
            LifeSpec::Poly { d, l } => write!(f, "poly:d={d},l={l}"),
            LifeSpec::Geometric { a } => write!(f, "geometric:a={a}"),
            LifeSpec::Increasing { l } => write!(f, "increasing:l={l}"),
            LifeSpec::Pareto { d } => write!(f, "pareto:d={d}"),
            LifeSpec::Weibull { k, lambda } => write!(f, "weibull:k={k},lambda={lambda}"),
        }
    }
}

impl std::str::FromStr for LifeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_life::LifeFunction;

    #[test]
    fn parses_all_families_compact() {
        for (s, spec) in [
            ("uniform:l=100", LifeSpec::Uniform { l: 100.0 }),
            ("poly:d=3,l=100", LifeSpec::Poly { d: 3, l: 100.0 }),
            ("geometric:a=2", LifeSpec::Geometric { a: 2.0 }),
            ("increasing:l=64", LifeSpec::Increasing { l: 64.0 }),
            ("pareto:d=2", LifeSpec::Pareto { d: 2.0 }),
            (
                "weibull:k=1.5,lambda=10",
                LifeSpec::Weibull {
                    k: 1.5,
                    lambda: 10.0,
                },
            ),
        ] {
            assert_eq!(LifeSpec::parse(s).unwrap(), spec, "{s}");
            assert_eq!(spec.to_string(), s, "{s}");
            spec.build().unwrap();
        }
    }

    #[test]
    fn parse_accepts_aliases_and_half_life() {
        assert_eq!(
            LifeSpec::parse("polynomial:d=2,l=10").unwrap(),
            LifeSpec::Poly { d: 2, l: 10.0 }
        );
        assert_eq!(
            LifeSpec::parse("coffee:l=16").unwrap(),
            LifeSpec::Increasing { l: 16.0 }
        );
        let g = LifeSpec::parse("geo:half-life=8").unwrap();
        let life = g.build().unwrap();
        assert!((life.survival(8.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "martian",
            "uniform:l=abc",
            "poly:d=1.5,l=10",
            "poly:q=3",
            "uniform:l=1,l=2",
            "uniform:l",
            "geometric:half-life=-1",
        ] {
            assert!(LifeSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn lookup_matches_cli_defaults_and_errors() {
        let get = |pairs: &'static [(&'static str, &'static str)]| {
            move |k: &str| pairs.iter().find(|&&(key, _)| key == k).map(|&(_, v)| v)
        };
        // Default family is uniform; missing --l is deferred to build().
        let spec = LifeSpec::from_lookup(get(&[("l", "50")])).unwrap();
        assert_eq!(spec, LifeSpec::Uniform { l: 50.0 });
        let err = LifeSpec::from_lookup(get(&[("l", "abc")])).unwrap_err();
        assert_eq!(err, "--l: expected a number, got \"abc\"");
        let err = LifeSpec::from_lookup(get(&[("family", "poly"), ("d", "x")])).unwrap_err();
        assert_eq!(err, "--d: expected an integer, got \"x\"");
        let err =
            LifeSpec::from_lookup(get(&[("family", "geometric"), ("half-life", "x")])).unwrap_err();
        assert_eq!(err, "--half-life: bad number \"x\"");
        let err = LifeSpec::from_lookup(get(&[("family", "martian")])).unwrap_err();
        assert!(err.starts_with("unknown family \"martian\""), "{err}");
        // Missing lifespan surfaces the family-prefixed constructor error.
        let err = LifeSpec::from_lookup(get(&[]))
            .unwrap()
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(err.starts_with("uniform: "), "{err}");
    }

    #[test]
    fn half_life_lookup_round_trips() {
        let get = |k: &str| match k {
            "family" => Some("geometric"),
            "half-life" => Some("8"),
            _ => None,
        };
        let life = LifeSpec::from_lookup(get).unwrap().build().unwrap();
        assert!((life.survival(8.0) - 0.5).abs() < 1e-12);
    }
}
