//! # cs-pool
//!
//! The work-stealing execution runtime behind every parallel surface in
//! the workspace: `cs-sim`'s pooled Monte-Carlo driver, the chaos
//! harness's trial sweep and `cyclesteal exp --all`.
//!
//! A [`Pool`] owns a fixed set of persistent worker threads. Each worker
//! has a private steal-half deque (`deque.rs`); callers submit work through
//! a shared injector queue, workers pull refill chunks from it, and idle
//! workers steal **half** a victim's visible backlog in one CAS, picking
//! the most-loaded victim (the latency-optimal heuristic from the
//! steal-half literature — Gast/Khatiri/Trystram's latency analysis and
//! Van Houdt's stealing-vs-sharing comparison both favor batched steals
//! from loaded victims over steal-one). Workers with nothing to run, steal
//! or refill park on a condvar with a 1 ms timed backstop, so an idle pool
//! burns no meaningful CPU and a missed wakeup self-heals.
//!
//! The one entry point is [`Pool::map_indexed`]: run `f(0..n)` across the
//! workers and collect the results *by index*. Scheduling order is
//! nondeterministic; the result vector is not — determinism is the
//! caller's contract (each index computes a pure function) plus this
//! crate's exactly-once guarantee (each index runs exactly once, results
//! land in their own slot).
//!
//! Pool-level counters (tasks, steals, steal batch sizes, parks, injector
//! refills, per-worker task counts) are collected wait-free on the workers
//! and snapshot via [`Pool::metrics`]; [`PoolMetrics::fold_into`] folds
//! them into a [`cs_obs::MetricsRegistry`] so `obs report`-style outputs
//! can show per-worker utilization.
//!
//! This is the only crate in the workspace allowed to use `unsafe`; it is
//! confined to the type-erased job plumbing below (rayon-style lifetime
//! erasure), with the invariants documented at each site. The deque itself
//! is safe code on std atomics.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod deque;

use deque::{Item, StealDeque, CAP};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Parked workers re-check for work at least this often, so a lost condvar
/// notification costs bounded latency instead of a hang.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// `log2` buckets for steal batch sizes (batches are at most `CAP / 2 + 1`,
/// so the top bucket is never reached in practice; it absorbs the rest).
const STEAL_BUCKETS: usize = 12;

/// Wait-free per-worker counters, cache-line-aligned against false sharing.
#[repr(align(64))]
#[derive(Default)]
struct WorkerMetrics {
    tasks: AtomicU64,
    steals: AtomicU64,
    stolen_tasks: AtomicU64,
    parks: AtomicU64,
    refills: AtomicU64,
    /// `steal_batch[i]` counts steals that claimed `~2^i` items.
    steal_batch: [AtomicU64; STEAL_BUCKETS],
}

/// The state shared between the pool handle and its workers.
struct Inner {
    deques: Vec<StealDeque>,
    injector: Mutex<VecDeque<Item>>,
    /// Signaled when the injector gains work, a worker publishes stealable
    /// surplus, or the pool shuts down.
    idle: Condvar,
    /// Pair used only to signal job completion to the blocked caller. The
    /// mutex guards nothing by itself — the predicate is the job's
    /// `remaining` counter — but taking it before notifying closes the
    /// check-then-sleep race on the caller side.
    done_mx: Mutex<()>,
    done: Condvar,
    shutdown: AtomicBool,
    workers: Vec<WorkerMetrics>,
}

/// One in-flight `map_indexed` call, type-erased so deque items stay plain
/// words. Lives on the caller's stack; see the safety argument on
/// [`execute`].
struct JobState {
    /// Runs task `idx` against `ctx`; returns `false` if the closure
    /// panicked (the panic is caught and recorded, never unwound through a
    /// worker).
    run: unsafe fn(*const (), usize) -> bool,
    ctx: *const (),
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

/// The typed half of a job: the closure and the result slots, reached only
/// through `JobState::ctx`.
struct Ctx<T, F> {
    f: *const F,
    slots: *const Mutex<Option<T>>,
    n: usize,
}

/// The type-erased task runner monomorphized per `map_indexed` call.
///
/// # Safety
///
/// `ctx` must point to a live `Ctx<T, F>` whose `f` and `slots` are live,
/// with `idx < n`; `F: Sync` and `T: Send` (enforced by `map_indexed`'s
/// bounds) make the cross-thread sharing of `f` and the slot write sound.
unsafe fn run_one<T: Send, F: Fn(usize) -> T + Sync>(ctx: *const (), idx: usize) -> bool {
    // SAFETY: per the contract above, `ctx` points to a live `Ctx<T, F>`
    // and `idx` is in bounds.
    let ctx = unsafe { &*ctx.cast::<Ctx<T, F>>() };
    debug_assert!(idx < ctx.n);
    let f = unsafe { &*ctx.f };
    match catch_unwind(AssertUnwindSafe(|| f(idx))) {
        Ok(v) => {
            let slot = unsafe { &*ctx.slots.add(idx) };
            *lock(slot) = Some(v);
            true
        }
        Err(_) => false,
    }
}

/// Locks ignoring poison: slot and injector state stay consistent across a
/// caller panic (workers never unwind — task panics are caught).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one claimed item and performs the completion handshake.
fn execute(inner: &Inner, me: usize, item: Item) {
    // SAFETY: every queued item embeds the address of a `JobState` on the
    // stack of a `map_indexed` call that is still blocked: the caller
    // returns only after `remaining` hits zero, `remaining` is decremented
    // strictly after the item is consumed from the queues and executed,
    // and no reference to the job is held past that decrement.
    let job = unsafe { &*(item.0 as *const JobState) };
    // SAFETY: `job.ctx` satisfies `run`'s contract for the lifetime of the
    // job (same argument as above); `item.1` was produced by `map_indexed`
    // as an index `< n`.
    let ok = unsafe { (job.run)(job.ctx, item.1) };
    if !ok {
        job.panicked.store(true, Ordering::Release);
    }
    inner.workers[me].tasks.fetch_add(1, Ordering::Relaxed);
    // Last toucher wakes the caller. Nothing may read `job` after this
    // fetch_sub — the caller is free to return (and pop the job) the
    // moment it observes zero.
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _g = lock(&inner.done_mx);
        inner.done.notify_all();
    }
}

/// Steals half the most-loaded victim's backlog; runs the first stolen
/// item and queues the rest locally. Returns `false` if nothing was taken.
fn try_steal(inner: &Inner, me: usize, buf: &mut Vec<Item>) -> bool {
    let n = inner.deques.len();
    let mut victim = None;
    let mut best_len = 0;
    // Scan from my right neighbor so equally-loaded victims spread across
    // thieves instead of everyone hammering worker 0.
    for off in 1..n {
        let v = (me + off) % n;
        let len = inner.deques[v].len();
        if len > best_len {
            best_len = len;
            victim = Some(v);
        }
    }
    let Some(v) = victim else { return false };
    debug_assert!(buf.is_empty());
    let k = inner.deques[v].steal_half(buf);
    if k == 0 {
        return false;
    }
    let m = &inner.workers[me];
    m.steals.fetch_add(1, Ordering::Relaxed);
    m.stolen_tasks.fetch_add(k as u64, Ordering::Relaxed);
    let bucket = (k.ilog2() as usize).min(STEAL_BUCKETS - 1);
    m.steal_batch[bucket].fetch_add(1, Ordering::Relaxed);
    enqueue_local(inner, me, &buf[1..]);
    let first = buf[0];
    buf.clear();
    execute(inner, me, first);
    true
}

/// Pushes items onto my own deque (overflow spills back to the injector)
/// and advertises the new stealable surplus to one parked peer.
fn enqueue_local(inner: &Inner, me: usize, items: &[Item]) {
    if items.is_empty() {
        return;
    }
    for &item in items {
        if !inner.deques[me].push(item) {
            lock(&inner.injector).push_back(item);
        }
    }
    inner.idle.notify_one();
}

fn worker_loop(inner: &Inner, me: usize) {
    let mut buf: Vec<Item> = Vec::with_capacity(CAP / 2 + 1);
    loop {
        if let Some(item) = inner.deques[me].take_one() {
            execute(inner, me, item);
            continue;
        }
        if try_steal(inner, me, &mut buf) {
            continue;
        }
        // Refill from the injector or park — decided under the injector
        // lock, so a worker can never park while submitted work sits there.
        let mut q = lock(&inner.injector);
        if !q.is_empty() {
            // An even share of the backlog, clamped so the chunk always
            // fits an empty deque with room for a stolen batch on top.
            let chunk = q.len().div_ceil(inner.deques.len()).clamp(1, CAP / 2);
            let chunk = chunk.min(q.len());
            let items: Vec<Item> = q.drain(..chunk).collect();
            drop(q);
            inner.workers[me].refills.fetch_add(1, Ordering::Relaxed);
            enqueue_local(inner, me, &items[1..]);
            execute(inner, me, items[0]);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        inner.workers[me].parks.fetch_add(1, Ordering::Relaxed);
        match inner.idle.wait_timeout(q, PARK_TIMEOUT) {
            Ok((guard, _)) => drop(guard),
            Err(poisoned) => drop(poisoned.into_inner().0),
        }
    }
}

/// A fixed-size work-stealing thread pool (see the crate docs).
pub struct Pool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    /// The calling thread is not a worker: during [`Pool::map_indexed`] it
    /// blocks, so total parallelism is exactly `threads`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            deques: (0..threads).map(|_| StealDeque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            done_mx: Mutex::new(()),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: (0..threads).map(|_| WorkerMetrics::default()).collect(),
        });
        let handles = (0..threads)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cs-pool-{me}"))
                    .spawn(move || worker_loop(&inner, me))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { inner, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.deques.len()
    }

    /// Computes `f(i)` for every `i in 0..n` across the workers and
    /// returns the results indexed by `i`. Blocks until every task has
    /// run. Panics (after all tasks finish) if any task panicked.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ctx = Ctx::<T, F> {
            f: &f,
            slots: slots.as_ptr(),
            n,
        };
        let job = JobState {
            run: run_one::<T, F>,
            ctx: (&ctx as *const Ctx<T, F>).cast(),
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
        };
        let job_addr = std::ptr::addr_of!(job) as usize;
        {
            let mut q = lock(&self.inner.injector);
            q.extend((0..n).map(|i| (job_addr, i)));
            self.inner.idle.notify_all();
        }
        // Block until the last decrement. The predicate is the job's own
        // counter; the mutex/condvar pair only carries the wakeup.
        let mut g = lock(&self.inner.done_mx);
        while job.remaining.load(Ordering::Acquire) != 0 {
            g = match self.inner.done.wait_timeout(g, PARK_TIMEOUT) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        drop(g);
        if job.panicked.load(Ordering::Acquire) {
            panic!("cs-pool: a map_indexed task panicked");
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every task ran exactly once")
            })
            .collect()
    }

    /// Snapshots the pool's counters (cheap; callable mid-run, though the
    /// numbers are only quiescent between jobs).
    pub fn metrics(&self) -> PoolMetrics {
        let w = &self.inner.workers;
        let sum = |f: fn(&WorkerMetrics) -> &AtomicU64| {
            w.iter().map(|m| f(m).load(Ordering::Relaxed)).sum::<u64>()
        };
        let mut steal_batch = [0u64; STEAL_BUCKETS];
        for m in w {
            for (acc, b) in steal_batch.iter_mut().zip(&m.steal_batch) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        PoolMetrics {
            threads: w.len(),
            tasks: sum(|m| &m.tasks),
            steals: sum(|m| &m.steals),
            stolen_tasks: sum(|m| &m.stolen_tasks),
            parks: sum(|m| &m.parks),
            injector_refills: sum(|m| &m.refills),
            per_worker_tasks: w.iter().map(|m| m.tasks.load(Ordering::Relaxed)).collect(),
            steal_batch,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let _q = lock(&self.inner.injector);
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.idle.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A point-in-time snapshot of a pool's counters.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Successful steal operations (each claims a batch).
    pub steals: u64,
    /// Tasks acquired via stealing.
    pub stolen_tasks: u64,
    /// Times a worker parked for lack of work.
    pub parks: u64,
    /// Refill chunks pulled from the injector.
    pub injector_refills: u64,
    /// Tasks executed by each worker, in worker order (per-worker
    /// utilization: even values mean balanced load).
    pub per_worker_tasks: Vec<u64>,
    /// Steal batch sizes, bucketed by `log2`.
    steal_batch: [u64; STEAL_BUCKETS],
}

impl PoolMetrics {
    /// Folds the snapshot into a registry: `pool.*` counters, a
    /// `pool.steal_batch` histogram of batch sizes, and one
    /// `pool.worker<i>.tasks` counter per worker.
    pub fn fold_into(&self, reg: &mut cs_obs::MetricsRegistry) {
        reg.counter_add("pool.tasks", self.tasks);
        reg.counter_add("pool.steals", self.steals);
        reg.counter_add("pool.stolen_tasks", self.stolen_tasks);
        reg.counter_add("pool.parks", self.parks);
        reg.counter_add("pool.injector_refills", self.injector_refills);
        reg.gauge_set("pool.threads", self.threads as f64);
        for (i, &t) in self.per_worker_tasks.iter().enumerate() {
            reg.counter_add(&format!("pool.worker{i}.tasks"), t);
        }
        for (i, &count) in self.steal_batch.iter().enumerate() {
            let representative = (1u64 << i) as f64;
            for _ in 0..count {
                reg.observe("pool.steal_batch", representative);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_returns_results_by_index() {
        let pool = Pool::new(4);
        let out = pool.map_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = Pool::new(2);
        let out: Vec<u64> = pool.map_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_pool_runs_everything() {
        let pool = Pool::new(1);
        let out = pool.map_indexed(100, |i| i + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        assert_eq!(pool.metrics().tasks, 100);
        assert_eq!(pool.metrics().steals, 0, "nobody to steal from");
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = Pool::new(3);
        for round in 0..5u64 {
            let out = pool.map_indexed(37, move |i| round * 100 + i as u64);
            assert_eq!(out[36], round * 100 + 36);
        }
        assert_eq!(pool.metrics().tasks, 5 * 37);
    }

    #[test]
    fn borrows_caller_locals() {
        // The closure may borrow non-'static caller state (the lifetime
        // erasure this crate exists for).
        let pool = Pool::new(2);
        let base: Vec<u64> = (0..50).map(|i| i * 10).collect();
        let out = pool.map_indexed(base.len(), |i| base[i] + 1);
        assert_eq!(out[49], 491);
    }

    #[test]
    fn task_panic_is_reported_after_the_job_drains() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives and remains usable.
        let out = pool.map_indexed(8, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn metrics_fold_into_registry() {
        let pool = Pool::new(2);
        let _ = pool.map_indexed(500, |i| {
            // Enough per-task work for steals to actually happen.
            std::hint::black_box((0..200).fold(i as u64, |a, b| a.wrapping_add(b)))
        });
        let m = pool.metrics();
        assert_eq!(m.tasks, 500);
        assert_eq!(m.per_worker_tasks.iter().sum::<u64>(), 500);
        assert!(m.stolen_tasks >= m.steals);
        let mut reg = cs_obs::MetricsRegistry::new();
        m.fold_into(&mut reg);
        assert_eq!(reg.counter("pool.tasks"), 500);
        assert_eq!(
            reg.counter("pool.worker0.tasks") + reg.counter("pool.worker1.tasks"),
            500
        );
        if m.steals > 0 {
            assert_eq!(reg.histogram("pool.steal_batch").unwrap().count(), m.steals);
        }
    }
}
