//! The steal-half deque: a fixed-capacity SPMC ring on two packed
//! monotone counters.
//!
//! One worker owns each deque and is its only producer ([`StealDeque::push`]);
//! any thread may consume, taking either one item ([`StealDeque::take_one`])
//! or half the visible backlog in a single claim
//! ([`StealDeque::steal_half`]). Chase–Lev's owner-pops-LIFO variant is
//! deliberately *not* used: batched steals and LIFO owner pops cannot share
//! one linearization point (the owner's pop elides the `top` CAS except on
//! the last item, so a steal-half claim can race an owner pop into the same
//! range). Instead both ends consume from the head, FIFO, and every
//! operation linearizes on one CAS of a single `AtomicU64` word packing
//! `(top, bottom)`:
//!
//! * `top` — next index to consume (only ever increases),
//! * `bottom` — next free slot (only ever increases, owner-only).
//!
//! Monotone counters make the word ABA-free in practice: for a stale word
//! to reappear, a counter would have to wrap the full `u32` range between
//! one load and the following CAS.
//!
//! The consume protocol reads slots *before* the claiming CAS and lets CAS
//! success prove the reads were valid: if the word is unchanged, no claim
//! advanced `top` past the read range and no push moved `bottom` (pushes by
//! a full ring are the only writes that could alias a live slot, and those
//! require a `bottom` move). Slot values read while racing a failed claim
//! are discarded; slots are atomics precisely so such racing reads are
//! defined behavior rather than torn reads. The whole crate stays in safe
//! Rust because of this — the unsafe lifetime erasure lives in the pool's
//! job plumbing, not here.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A queued unit of work: `(job address, task index)`. Plain data — the
/// pool layer owns the meaning of the two words.
pub(crate) type Item = (usize, usize);

/// Ring capacity per worker (power of two). Steal-half takes at most
/// `CAP / 2 + 1` items and injector refills are clamped below `CAP`, so an
/// empty deque can always absorb either batch.
pub(crate) const CAP: usize = 256;

/// One ring slot. Two relaxed atomics rather than one plain tuple: a
/// consumer may read a slot while losing a claim race, and those dirty
/// reads must be defined (their values are discarded when the CAS fails).
#[derive(Default)]
struct Slot {
    a: AtomicUsize,
    b: AtomicUsize,
}

/// The fixed-capacity steal-half deque (see module docs for the protocol).
pub(crate) struct StealDeque {
    /// `(top << 32) | bottom`, both monotone `u32` counters.
    word: AtomicU64,
    slots: Box<[Slot]>,
}

fn pack(top: u32, bottom: u32) -> u64 {
    (u64::from(top) << 32) | u64::from(bottom)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl StealDeque {
    pub(crate) fn new() -> Self {
        Self {
            word: AtomicU64::new(0),
            slots: (0..CAP).map(|_| Slot::default()).collect(),
        }
    }

    /// Items currently visible (a racy snapshot — exact only to the owner
    /// between its own operations). Used for victim selection.
    pub(crate) fn len(&self) -> usize {
        let (top, bottom) = unpack(self.word.load(Ordering::Relaxed));
        bottom.wrapping_sub(top) as usize
    }

    /// Owner-only: appends one item. Returns `false` when the ring is full
    /// (the caller overflows to the injector). Only the owner moves
    /// `bottom`, so the slot chosen for the write is stable across CAS
    /// retries — retries only happen because a consumer advanced `top`.
    pub(crate) fn push(&self, item: Item) -> bool {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (top, bottom) = unpack(word);
            if bottom.wrapping_sub(top) as usize >= CAP {
                return false;
            }
            // Writing before the publishing CAS is safe: slot `bottom` is
            // outside every consumer's claimable range `[top, bottom)`, and
            // a concurrent claim reading it through the ring (only possible
            // on a full ring) fails its own CAS and discards the value.
            let slot = &self.slots[bottom as usize % CAP];
            slot.a.store(item.0, Ordering::Relaxed);
            slot.b.store(item.1, Ordering::Relaxed);
            match self.word.compare_exchange_weak(
                word,
                pack(top, bottom.wrapping_add(1)),
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => word = actual,
            }
        }
    }

    /// Claims one item from the head, or `None` when empty.
    pub(crate) fn take_one(&self) -> Option<Item> {
        let mut buf = Vec::with_capacity(1);
        if self.consume(false, &mut buf) == 0 {
            None
        } else {
            Some(buf[0])
        }
    }

    /// Claims `ceil(len / 2)` items from the head in one CAS, appending
    /// them to `buf` in queue order. Returns how many were taken.
    pub(crate) fn steal_half(&self, buf: &mut Vec<Item>) -> usize {
        self.consume(true, buf)
    }

    fn consume(&self, half: bool, buf: &mut Vec<Item>) -> usize {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (top, bottom) = unpack(word);
            let len = bottom.wrapping_sub(top);
            if len == 0 {
                return 0;
            }
            let k = if half { len.div_ceil(2) } else { 1 };
            // Read the claimed range BEFORE claiming it. After a successful
            // CAS a racing owner push may legally wrap the ring onto slots
            // we claimed but had not yet read; before the CAS the range is
            // protected by `bottom`'s capacity check, and any race that
            // does dirty these reads also changes the word, failing the CAS
            // below — which discards them.
            let start = buf.len();
            for i in 0..k {
                let slot = &self.slots[top.wrapping_add(i) as usize % CAP];
                buf.push((
                    slot.a.load(Ordering::Relaxed),
                    slot.b.load(Ordering::Relaxed),
                ));
            }
            match self.word.compare_exchange(
                word,
                pack(top.wrapping_add(k), bottom),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return k as usize,
                Err(actual) => {
                    buf.truncate(start);
                    word = actual;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let d = StealDeque::new();
        for i in 0..10 {
            assert!(d.push((7, i)));
        }
        assert_eq!(d.len(), 10);
        for i in 0..10 {
            assert_eq!(d.take_one(), Some((7, i)));
        }
        assert_eq!(d.take_one(), None);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn push_reports_full_at_capacity() {
        let d = StealDeque::new();
        for i in 0..CAP {
            assert!(d.push((0, i)), "slot {i}");
        }
        assert!(!d.push((0, CAP)));
        // Draining one frees one slot.
        assert_eq!(d.take_one(), Some((0, 0)));
        assert!(d.push((0, CAP)));
    }

    #[test]
    fn steal_half_takes_ceil_half_in_order() {
        let d = StealDeque::new();
        for i in 0..5 {
            d.push((1, i));
        }
        let mut buf = Vec::new();
        assert_eq!(d.steal_half(&mut buf), 3);
        assert_eq!(buf, vec![(1, 0), (1, 1), (1, 2)]);
        assert_eq!(d.len(), 2);
        buf.clear();
        assert_eq!(d.steal_half(&mut buf), 1);
        assert_eq!(buf, vec![(1, 3)]);
        assert_eq!(d.take_one(), Some((1, 4)));
        assert_eq!(d.steal_half(&mut buf), 0);
    }

    #[test]
    fn counters_survive_wraparound() {
        // Start near the u32 boundary: the packed word must keep working
        // across top/bottom wraps.
        let d = StealDeque::new();
        d.word
            .store(pack(u32::MAX - 2, u32::MAX - 2), Ordering::Relaxed);
        for i in 0..6 {
            assert!(d.push((2, i)), "push {i}");
        }
        assert_eq!(d.len(), 6);
        let mut buf = Vec::new();
        assert_eq!(d.steal_half(&mut buf), 3);
        assert_eq!(buf, vec![(2, 0), (2, 1), (2, 2)]);
        for i in 3..6 {
            assert_eq!(d.take_one(), Some((2, i)));
        }
        assert_eq!(d.take_one(), None);
    }
}
