//! Concurrency stress tests: exactly-once delivery under contended
//! push/steal interleavings, exercised through the public `Pool` API.
//!
//! The deque itself is `pub(crate)`, so the multi-thread interleavings are
//! driven the way production drives them — many small tasks through
//! `map_indexed` with workers stealing from each other — and the
//! exactly-once property is checked from the outside: every index's result
//! lands in its slot exactly once, and shared counters see every task once.

use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn contended_map_sees_every_index_exactly_once() {
    let pool = cs_pool::Pool::new(8);
    const N: usize = 20_000;
    let hits: Vec<AtomicU64> = (0..N).map(|_| AtomicU64::new(0)).collect();
    let out = pool.map_indexed(N, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
        i as u64
    });
    assert_eq!(out.len(), N);
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} ran once");
        assert_eq!(out[i], i as u64);
    }
    let m = pool.metrics();
    assert_eq!(m.tasks, N as u64);
    assert_eq!(m.per_worker_tasks.iter().sum::<u64>(), N as u64);
}

#[test]
fn uneven_task_sizes_still_deliver_exactly_once() {
    // Pathologically skewed work so deques drain at very different rates
    // and steal-half races owner takes constantly.
    let pool = cs_pool::Pool::new(6);
    const N: usize = 4_000;
    for round in 0..4u64 {
        let sum = AtomicU64::new(0);
        let out = pool.map_indexed(N, |i| {
            let spin = if i % 97 == 0 { 40_000 } else { 10 };
            let mut acc = round.wrapping_add(i as u64);
            for k in 0..spin {
                acc = std::hint::black_box(acc.rotate_left(1) ^ k);
            }
            sum.fetch_add(1, Ordering::Relaxed);
            acc
        });
        assert_eq!(out.len(), N);
        assert_eq!(sum.load(Ordering::Relaxed), N as u64, "round {round}");
    }
    assert_eq!(pool.metrics().tasks, 4 * N as u64);
}

#[test]
fn rapid_small_jobs_do_not_lose_or_duplicate() {
    // Many tiny jobs back-to-back: stresses the park/unpark handshake and
    // the injector path more than the deques.
    let pool = cs_pool::Pool::new(4);
    let mut total = 0u64;
    for job in 0..300usize {
        let n = 1 + (job % 17);
        let out = pool.map_indexed(n, |i| (job * 1000 + i) as u64);
        assert_eq!(out.len(), n);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (job * 1000 + i) as u64);
        }
        total += n as u64;
    }
    assert_eq!(pool.metrics().tasks, total);
}
