//! # cs-numeric
//!
//! A small, self-contained numerics substrate for the `cycle-steal`
//! workspace.
//!
//! The reproduction deliberately avoids external numerics crates (the paper's
//! mathematics only needs robust scalar routines), so this crate provides:
//!
//! * **Root finding** ([`roots`]) — bracketing, bisection, Brent's method,
//!   and safeguarded Newton iteration.
//! * **1-D maximization** ([`optimize`]) — golden-section search and
//!   grid-scan-plus-refine for multimodal objectives.
//! * **Monotone interpolation** ([`interp`]) — piecewise-linear and
//!   Fritsch–Carlson monotone cubic (PCHIP) interpolants, used to turn
//!   empirical survival samples into smooth life functions.
//! * **Quadrature** ([`quad`]) — trapezoid and adaptive Simpson integration.
//! * **Regression** ([`regress`]) — ordinary least squares for line and
//!   low-degree polynomial fits (trace → parametric life-function fitting).
//! * **Differentiation** ([`diff`]) — central finite differences for
//!   validating analytic derivatives.
//!
//! All routines are allocation-free in their hot loops and operate on `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a < b)`-style comparisons are deliberate throughout: they treat NaN as
// "invalid input" and route it to the error path, which `partial_cmp`
// rewrites would obscure.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod diff;
pub mod interp;
pub mod optimize;
pub mod quad;
pub mod regress;
pub mod roots;

/// Default absolute tolerance used across the workspace when none is given.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Default iteration cap for iterative scalar methods.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Errors produced by the numeric routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// The supplied interval does not bracket a root (no sign change).
    NoBracket {
        /// Left endpoint of the attempted bracket.
        lo: f64,
        /// Right endpoint of the attempted bracket.
        hi: f64,
    },
    /// The iteration failed to converge within the iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Best estimate at the point of failure.
        best: f64,
    },
    /// An argument was invalid (NaN bounds, empty data, inverted interval…).
    InvalidArgument(&'static str),
}

impl std::fmt::Display for NumericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericError::NoBracket { lo, hi } => {
                write!(f, "interval [{lo}, {hi}] does not bracket a root")
            }
            NumericError::NoConvergence { iterations, best } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (best = {best})"
                )
            }
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericError {}

/// Convenience alias for results of numeric routines.
pub type Result<T> = std::result::Result<T, NumericError>;

/// Returns true when `a` and `b` agree to within `tol` absolutely or
/// `tol`-relative to the larger magnitude.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-10));
        assert!(!approx_eq(1e12, 1.01e12, 1e-10));
    }

    #[test]
    fn error_display() {
        let e = NumericError::NoBracket { lo: 0.0, hi: 1.0 };
        assert!(e.to_string().contains("does not bracket"));
        let e = NumericError::NoConvergence {
            iterations: 7,
            best: 0.5,
        };
        assert!(e.to_string().contains("7 iterations"));
        let e = NumericError::InvalidArgument("nope");
        assert!(e.to_string().contains("nope"));
    }
}
