//! 1-D maximization: golden-section search for unimodal objectives and a
//! grid-scan-plus-refine strategy for objectives that may be multimodal
//! (e.g. expected work as a function of the initial period length `t_0`).

use crate::{NumericError, Result, DEFAULT_MAX_ITER};

const INV_PHI: f64 = 0.618_033_988_749_894_9; // (sqrt(5) - 1) / 2

/// Result of a 1-D maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Abscissa of the maximum.
    pub x: f64,
    /// Objective value at [`Maximum::x`].
    pub value: f64,
}

/// Golden-section search for the maximum of a **unimodal** `f` on `[lo, hi]`.
///
/// Terminates when the interval shrinks below `tol` (abscissa accuracy).
/// On non-unimodal objectives it converges to *some* local maximum.
pub fn golden_section_max(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Result<Maximum> {
    if !(lo <= hi) || lo.is_nan() || hi.is_nan() {
        return Err(NumericError::InvalidArgument(
            "golden_section_max: invalid interval",
        ));
    }
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..DEFAULT_MAX_ITER {
        if (b - a).abs() <= tol {
            break;
        }
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    Ok(Maximum { x, value: f(x) })
}

/// Maximizes a possibly **multimodal** `f` on `[lo, hi]`: scans `n` evenly
/// spaced points, then refines around the best sample with golden-section
/// search on the two neighbouring cells.
///
/// With `n` large enough to separate the modes this finds the global maximum
/// to abscissa accuracy `tol`.
pub fn grid_refine_max(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    n: usize,
    tol: f64,
) -> Result<Maximum> {
    if n < 2 {
        return Err(NumericError::InvalidArgument(
            "grid_refine_max: need n >= 2",
        ));
    }
    if !(lo <= hi) || lo.is_nan() || hi.is_nan() {
        return Err(NumericError::InvalidArgument(
            "grid_refine_max: invalid interval",
        ));
    }
    if lo == hi {
        return Ok(Maximum {
            x: lo,
            value: f(lo),
        });
    }
    let step = (hi - lo) / (n - 1) as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..n {
        let x = lo + step * i as f64;
        let v = f(x);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    let refined = golden_section_max(&f, a, b, tol)?;
    // The refinement can only improve on the best grid sample; keep whichever
    // is larger to be safe against plateaus at cell edges.
    if refined.value >= best_v {
        Ok(refined)
    } else {
        Ok(Maximum {
            x: lo + step * best_i as f64,
            value: best_v,
        })
    }
}

/// Returns the maximizer of `f` over the discrete candidate set.
///
/// Useful for comparing a finite family of schedules. Returns an error on an
/// empty candidate slice.
pub fn argmax_discrete(f: impl Fn(f64) -> f64, candidates: &[f64]) -> Result<Maximum> {
    let mut best: Option<Maximum> = None;
    for &x in candidates {
        let value = f(x);
        if best.is_none_or(|b| value > b.value) {
            best = Some(Maximum { x, value });
        }
    }
    best.ok_or(NumericError::InvalidArgument(
        "argmax_discrete: empty candidate set",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn golden_finds_parabola_peak() {
        let m = golden_section_max(|x| -(x - 2.0) * (x - 2.0) + 5.0, 0.0, 4.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.0, 1e-7));
        assert!(approx_eq(m.value, 5.0, 1e-10));
    }

    #[test]
    fn golden_peak_at_boundary() {
        let m = golden_section_max(|x| x, 0.0, 1.0, 1e-10).unwrap();
        assert!(m.x > 0.999);
    }

    #[test]
    fn golden_degenerate_interval() {
        let m = golden_section_max(|x| x * x, 3.0, 3.0, 1e-10).unwrap();
        assert_eq!(m.x, 3.0);
        assert_eq!(m.value, 9.0);
    }

    #[test]
    fn grid_refine_finds_global_max_of_bimodal() {
        // Two peaks: at x=1 (height 1) and x=4 (height 2).
        let f = |x: f64| (-(x - 1.0).powi(2)).exp() + 2.0 * (-(x - 4.0).powi(2)).exp();
        let m = grid_refine_max(f, 0.0, 6.0, 200, 1e-10).unwrap();
        assert!(approx_eq(m.x, 4.0, 1e-4), "x = {}", m.x);
    }

    #[test]
    fn grid_refine_single_point_interval() {
        let m = grid_refine_max(|x| x, 2.0, 2.0, 10, 1e-10).unwrap();
        assert_eq!(m.x, 2.0);
    }

    #[test]
    fn grid_refine_rejects_tiny_n() {
        assert!(grid_refine_max(|x| x, 0.0, 1.0, 1, 1e-10).is_err());
    }

    #[test]
    fn argmax_discrete_picks_best() {
        let m = argmax_discrete(|x| -(x - 3.0).abs(), &[0.0, 1.0, 2.5, 3.5, 10.0]).unwrap();
        assert!(m.x == 2.5 || m.x == 3.5);
    }

    #[test]
    fn argmax_discrete_empty_errors() {
        assert!(argmax_discrete(|x| x, &[]).is_err());
    }

    #[test]
    fn golden_on_expected_work_shape() {
        // (t - c) * (1 - t/L): the one-period expected-work objective for the
        // uniform-risk life function. Peak at t = (L + c) / 2.
        let c = 2.0;
        let l = 100.0;
        let m = golden_section_max(|t| (t - c) * (1.0 - t / l), c, l, 1e-10).unwrap();
        assert!(approx_eq(m.x, (l + c) / 2.0, 1e-6));
    }
}
