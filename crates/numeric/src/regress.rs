//! Ordinary least squares: line fits and low-degree polynomial fits via
//! normal equations with partial-pivot Gaussian elimination.
//!
//! `cs-trace` uses these to fit parametric life-function families to
//! empirical survival data (e.g. `ln p(t) = −t ln a` for the
//! geometric-decreasing family).

use crate::{NumericError, Result};

/// A fitted line `y = slope * x + intercept` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² (1 = perfect fit).
    pub r2: f64,
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LineFit> {
    if xs.len() != ys.len() {
        return Err(NumericError::InvalidArgument("fit_line: length mismatch"));
    }
    let n = xs.len();
    if n < 2 {
        return Err(NumericError::InvalidArgument(
            "fit_line: need at least 2 points",
        ));
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(NumericError::InvalidArgument("fit_line: degenerate x data"));
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LineFit {
        slope,
        intercept,
        r2,
    })
}

/// Fits a degree-`deg` polynomial `y = Σ coeffs[k] x^k` by least squares.
///
/// Returns coefficients in ascending-power order. Solves the normal
/// equations with partial-pivot Gaussian elimination; `deg` is expected to
/// be small (≤ ~8) which is all the trace-fitting code needs.
pub fn fit_polynomial(xs: &[f64], ys: &[f64], deg: usize) -> Result<Vec<f64>> {
    if xs.len() != ys.len() {
        return Err(NumericError::InvalidArgument(
            "fit_polynomial: length mismatch",
        ));
    }
    let m = deg + 1;
    if xs.len() < m {
        return Err(NumericError::InvalidArgument(
            "fit_polynomial: underdetermined",
        ));
    }
    // Normal equations A^T A c = A^T y with A the Vandermonde matrix.
    // power_sums[k] = Σ x^k for k in 0..=2*deg; rhs[k] = Σ y x^k.
    let mut power_sums = vec![0.0f64; 2 * deg + 1];
    let mut rhs = vec![0.0f64; m];
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let mut xp = 1.0;
        for (k, ps) in power_sums.iter_mut().enumerate() {
            *ps += xp;
            if k < m {
                rhs[k] += y * xp;
            }
            xp *= x;
        }
    }
    let mut a = vec![vec![0.0f64; m]; m];
    for (r, row) in a.iter_mut().enumerate() {
        for (cidx, cell) in row.iter_mut().enumerate() {
            *cell = power_sums[r + cidx];
        }
    }
    solve_linear(&mut a, &mut rhs)?;
    Ok(rhs)
}

/// Evaluates a polynomial with ascending-power `coeffs` at `x` (Horner).
pub fn eval_polynomial(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Solves `A x = b` in place by Gaussian elimination with partial pivoting.
/// On success `b` holds the solution.
// Index loops mirror the textbook elimination; iterator rewrites obscure the
// simultaneous row access.
#[allow(clippy::needless_range_loop)]
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<()> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-300 {
            return Err(NumericError::InvalidArgument(
                "solve_linear: singular matrix",
            ));
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for r in col + 1..n {
            let factor = a[r][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[r][k] -= factor * a[col][k];
            }
            b[r] -= factor * b[col];
        }
    }
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * b[k];
        }
        b[col] = acc / a[col][col];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn line_fit_exact() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = fit_line(&xs, &ys).unwrap();
        assert!(approx_eq(f.slope, 2.0, 1e-12));
        assert!(approx_eq(f.intercept, 1.0, 1e-12));
        assert!(approx_eq(f.r2, 1.0, 1e-12));
    }

    #[test]
    fn line_fit_noisy_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = fit_line(&xs, &ys).unwrap();
        assert!(f.r2 > 0.95 && f.r2 < 1.0);
        assert!((f.slope - 1.0).abs() < 0.2);
    }

    #[test]
    fn line_fit_rejects_degenerate() {
        assert!(fit_line(&[1.0, 1.0], &[0.0, 1.0]).is_err());
        assert!(fit_line(&[1.0], &[0.0]).is_err());
        assert!(fit_line(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn poly_fit_recovers_quadratic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 4.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - 0.5 * x + 0.25 * x * x).collect();
        let c = fit_polynomial(&xs, &ys, 2).unwrap();
        assert!(approx_eq(c[0], 2.0, 1e-8));
        assert!(approx_eq(c[1], -0.5, 1e-8));
        assert!(approx_eq(c[2], 0.25, 1e-8));
    }

    #[test]
    fn poly_fit_underdetermined_errors() {
        assert!(fit_polynomial(&[0.0, 1.0], &[0.0, 1.0], 2).is_err());
    }

    #[test]
    fn eval_polynomial_horner() {
        // 1 + 2x + 3x^2 at x = 2 → 17.
        assert!(approx_eq(
            eval_polynomial(&[1.0, 2.0, 3.0], 2.0),
            17.0,
            1e-12
        ));
        assert_eq!(eval_polynomial(&[], 5.0), 0.0);
    }

    #[test]
    fn geometric_family_loglinear_fit() {
        // ln p(t) = -t ln a: fitting log-survival recovers the risk factor.
        let a: f64 = 3.0;
        let xs: Vec<f64> = (1..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&t| (-t * a.ln()).exp().ln()).collect();
        let f = fit_line(&xs, &ys).unwrap();
        assert!(approx_eq((-f.slope).exp(), a, 1e-9));
    }
}
