//! Finite-difference differentiation, used to validate the analytic
//! derivatives of life functions and in tests of the guideline recurrence.

/// Central-difference first derivative with step `h`.
///
/// Error is `O(h²)` for smooth `f`; `h ≈ 1e-6·max(1, |x|)` is a good default.
#[inline]
pub fn central(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// One-sided forward difference, for points on a domain boundary.
#[inline]
pub fn forward(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x)) / h
}

/// One-sided backward difference, for points on a domain boundary.
#[inline]
pub fn backward(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x) - f(x - h)) / h
}

/// Central-difference second derivative; used to probe concavity/convexity
/// of life functions in property tests.
#[inline]
pub fn second_central(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
}

/// A reasonable step size for differentiating near `x`.
#[inline]
pub fn default_step(x: f64) -> f64 {
    1e-6 * x.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn central_on_sin() {
        let d = central(|x| x.sin(), 1.0, 1e-6);
        assert!(approx_eq(d, 1.0_f64.cos(), 1e-8));
    }

    #[test]
    fn forward_backward_on_linear() {
        assert!(approx_eq(forward(|x| 3.0 * x, 0.0, 1e-6), 3.0, 1e-8));
        assert!(approx_eq(backward(|x| 3.0 * x, 1.0, 1e-6), 3.0, 1e-8));
    }

    #[test]
    fn second_derivative_sign_detects_shape() {
        // Concave: -x² has negative second derivative.
        assert!(second_central(|x| -x * x, 1.0, 1e-4) < 0.0);
        // Convex: e^x has positive second derivative.
        assert!(second_central(|x| x.exp(), 1.0, 1e-4) > 0.0);
    }

    #[test]
    fn default_step_scales() {
        assert!(approx_eq(default_step(0.0), 1e-6, 1e-18));
        assert!(approx_eq(default_step(1e6), 1.0, 1e-9));
    }
}
