//! Numerical quadrature: composite trapezoid and adaptive Simpson.
//!
//! Used to compute mean reclamation times (`∫ p(t) dt`) and to cross-check
//! expected-work integrals in the experiment harnesses.

use crate::{NumericError, Result};

/// Composite trapezoid rule with `n` uniform panels.
pub fn trapezoid(f: impl Fn(f64) -> f64, lo: f64, hi: f64, n: usize) -> Result<f64> {
    if n == 0 {
        return Err(NumericError::InvalidArgument("trapezoid: need n >= 1"));
    }
    if !(lo <= hi) {
        return Err(NumericError::InvalidArgument("trapezoid: invalid interval"));
    }
    let h = (hi - lo) / n as f64;
    let mut acc = 0.5 * (f(lo) + f(hi));
    for i in 1..n {
        acc += f(lo + h * i as f64);
    }
    Ok(acc * h)
}

/// Adaptive Simpson quadrature to absolute tolerance `tol`.
///
/// Recursion depth is bounded; on hitting the bound the current Simpson
/// estimate is accepted (graceful degradation rather than stack overflow).
pub fn adaptive_simpson(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    if !(lo <= hi) {
        return Err(NumericError::InvalidArgument(
            "adaptive_simpson: invalid interval",
        ));
    }
    if lo == hi {
        return Ok(0.0);
    }
    fn simpson(f: &impl Fn(f64) -> f64, a: f64, fa: f64, b: f64, fb: f64) -> (f64, f64, f64) {
        let m = 0.5 * (a + b);
        let fm = f(m);
        ((b - a) / 6.0 * (fa + 4.0 * fm + fb), m, fm)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &impl Fn(f64) -> f64,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        whole: f64,
        m: f64,
        fm: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let (left, lm, flm) = simpson(f, a, fa, m, fm);
        let (right, rm, frm) = simpson(f, m, fm, b, fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            return left + right + delta / 15.0;
        }
        recurse(f, a, fa, m, fm, left, lm, flm, 0.5 * tol, depth - 1)
            + recurse(f, m, fm, b, fb, right, rm, frm, 0.5 * tol, depth - 1)
    }
    let fa = f(lo);
    let fb = f(hi);
    let (whole, m, fm) = simpson(&f, lo, fa, hi, fb);
    Ok(recurse(&f, lo, fa, hi, fb, whole, m, fm, tol, 48))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn trapezoid_linear_exact() {
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 4.0, 1).unwrap();
        assert!(approx_eq(v, 20.0, 1e-12));
    }

    #[test]
    fn trapezoid_quadratic_converges() {
        let v = trapezoid(|x| x * x, 0.0, 1.0, 10_000).unwrap();
        assert!(approx_eq(v, 1.0 / 3.0, 1e-7));
    }

    #[test]
    fn trapezoid_rejects_zero_panels() {
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact on cubics.
        let v = adaptive_simpson(|x| x * x * x - x, 0.0, 2.0, 1e-12).unwrap();
        assert!(approx_eq(v, 2.0, 1e-10));
    }

    #[test]
    fn simpson_exponential() {
        let v = adaptive_simpson(|x| (-x).exp(), 0.0, 10.0, 1e-12).unwrap();
        assert!(approx_eq(v, 1.0 - (-10.0f64).exp(), 1e-9));
    }

    #[test]
    fn simpson_empty_interval() {
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn simpson_mean_lifetime_of_uniform_survival() {
        // ∫0^L (1 - t/L) dt = L/2: the mean reclamation time for uniform risk.
        let l = 37.0;
        let v = adaptive_simpson(|t| 1.0 - t / l, 0.0, l, 1e-12).unwrap();
        assert!(approx_eq(v, l / 2.0, 1e-9));
    }
}
