//! Piecewise-linear and monotone-cubic (Fritsch–Carlson / PCHIP)
//! interpolation.
//!
//! Empirical life functions estimated from traces are decreasing step
//! functions; the paper requires differentiable, "well-behaved" curves. The
//! monotone cubic interpolant preserves monotonicity (so the interpolated
//! survival function is still a survival function) while providing a
//! continuous derivative for the guideline recurrence.

use crate::{NumericError, Result};

/// Validates that `xs` is strictly increasing and the two slices match in
/// length (≥ 2 points).
fn validate(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(NumericError::InvalidArgument(
            "interp: xs/ys length mismatch",
        ));
    }
    if xs.len() < 2 {
        return Err(NumericError::InvalidArgument(
            "interp: need at least 2 points",
        ));
    }
    if xs.windows(2).any(|w| !(w[0] < w[1])) {
        return Err(NumericError::InvalidArgument(
            "interp: xs must be strictly increasing",
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericError::InvalidArgument("interp: non-finite data"));
    }
    Ok(())
}

/// Locates the cell index `i` with `xs[i] <= x < xs[i+1]` (clamped to the
/// first/last cell for out-of-range `x`).
fn locate(xs: &[f64], x: f64) -> usize {
    if x <= xs[0] {
        return 0;
    }
    let n = xs.len();
    if x >= xs[n - 1] {
        return n - 2;
    }
    // Binary search for the containing cell.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Piecewise-linear interpolant over `(xs, ys)`.
///
/// Evaluation clamps to the boundary values outside the data range.
#[derive(Debug, Clone)]
pub struct Linear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Linear {
    /// Builds a linear interpolant; `xs` must be strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate(&xs, &ys)?;
        Ok(Self { xs, ys })
    }

    /// Evaluates the interpolant at `x` (clamped outside the range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = locate(&self.xs, x);
        let w = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + w * (self.ys[i + 1] - self.ys[i])
    }

    /// Piecewise-constant derivative (one-sided at knots, zero outside).
    pub fn deriv(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x < self.xs[0] || x > self.xs[n - 1] {
            return 0.0;
        }
        let i = locate(&self.xs, x);
        (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])
    }

    /// The abscissa range covered by the data.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }
}

/// Monotone cubic Hermite interpolant (Fritsch–Carlson, a.k.a. PCHIP).
///
/// If the data is monotone, the interpolant is monotone on every cell and has
/// a continuous first derivative — exactly the smoothness the paper's
/// "well-behaved life function" idealization asks of trace-estimated curves.
#[derive(Debug, Clone)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Knot derivatives after Fritsch–Carlson limiting.
    ms: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant; `xs` must be strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate(&xs, &ys)?;
        let n = xs.len();
        // Secant slopes.
        let mut d = vec![0.0f64; n - 1];
        for i in 0..n - 1 {
            d[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        // Initial knot derivatives: average of adjacent secants.
        let mut ms = vec![0.0f64; n];
        ms[0] = d[0];
        ms[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            ms[i] = if d[i - 1] * d[i] <= 0.0 {
                0.0
            } else {
                0.5 * (d[i - 1] + d[i])
            };
        }
        // Fritsch–Carlson limiting to guarantee monotonicity per cell.
        for i in 0..n - 1 {
            if d[i] == 0.0 {
                ms[i] = 0.0;
                ms[i + 1] = 0.0;
                continue;
            }
            let a = ms[i] / d[i];
            let b = ms[i + 1] / d[i];
            let s = a * a + b * b;
            if s > 9.0 {
                let tau = 3.0 / s.sqrt();
                ms[i] = tau * a * d[i];
                ms[i + 1] = tau * b * d[i];
            }
        }
        Ok(Self { xs, ys, ms })
    }

    /// Evaluates the interpolant at `x` (clamped outside the range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = locate(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ms[i] + h01 * self.ys[i + 1] + h11 * h * self.ms[i + 1]
    }

    /// Derivative of the interpolant at `x` (zero outside the range).
    pub fn deriv(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x < self.xs[0] || x > self.xs[n - 1] {
            return 0.0;
        }
        let i = locate(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = ((x - self.xs[i]) / h).clamp(0.0, 1.0);
        let t2 = t * t;
        let dh00 = (6.0 * t2 - 6.0 * t) / h;
        let dh10 = (3.0 * t2 - 4.0 * t + 1.0) / h;
        let dh01 = (-6.0 * t2 + 6.0 * t) / h;
        let dh11 = (3.0 * t2 - 2.0 * t) / h;
        dh00 * self.ys[i]
            + dh10 * h * self.ms[i]
            + dh01 * self.ys[i + 1]
            + dh11 * h * self.ms[i + 1]
    }

    /// The abscissa range covered by the data.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn linear_interpolates_exactly_at_knots() {
        let li = Linear::new(vec![0.0, 1.0, 3.0], vec![1.0, 0.5, 0.0]).unwrap();
        assert_eq!(li.eval(0.0), 1.0);
        assert_eq!(li.eval(1.0), 0.5);
        assert_eq!(li.eval(3.0), 0.0);
        assert!(approx_eq(li.eval(2.0), 0.25, 1e-12));
    }

    #[test]
    fn linear_clamps_out_of_range() {
        let li = Linear::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert_eq!(li.eval(-5.0), 1.0);
        assert_eq!(li.eval(5.0), 0.0);
    }

    #[test]
    fn linear_derivative_is_secant_slope() {
        let li = Linear::new(vec![0.0, 2.0], vec![1.0, 0.0]).unwrap();
        assert!(approx_eq(li.deriv(1.0), -0.5, 1e-12));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Linear::new(vec![0.0], vec![1.0]).is_err());
        assert!(Linear::new(vec![0.0, 0.0], vec![1.0, 0.0]).is_err());
        assert!(Linear::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(MonotoneCubic::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(MonotoneCubic::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn cubic_reproduces_knots() {
        let xs = vec![0.0, 1.0, 2.0, 4.0];
        let ys = vec![1.0, 0.7, 0.2, 0.0];
        let mc = MonotoneCubic::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!(approx_eq(mc.eval(*x), *y, 1e-12));
        }
    }

    #[test]
    fn cubic_is_monotone_on_decreasing_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mc = MonotoneCubic::new(xs, ys).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..1000 {
            let x = 19.0 * i as f64 / 999.0;
            let v = mc.eval(x);
            assert!(v <= prev + 1e-12, "not monotone at x = {x}");
            prev = v;
        }
    }

    #[test]
    fn cubic_derivative_matches_finite_difference() {
        let xs = vec![0.0, 1.0, 2.0, 3.0, 5.0];
        let ys = vec![1.0, 0.8, 0.5, 0.3, 0.0];
        let mc = MonotoneCubic::new(xs, ys).unwrap();
        for &x in &[0.5, 1.5, 2.5, 4.0] {
            let h = 1e-6;
            let fd = (mc.eval(x + h) - mc.eval(x - h)) / (2.0 * h);
            assert!(approx_eq(mc.deriv(x), fd, 1e-5), "at x = {x}");
        }
    }

    #[test]
    fn cubic_flat_segment_has_zero_derivative() {
        let mc = MonotoneCubic::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 0.5, 0.5, 0.0]).unwrap();
        assert!(mc.eval(1.5) <= 0.5 + 1e-12);
        assert!(mc.eval(1.5) >= 0.5 - 1e-12);
    }

    proptest! {
        #[test]
        fn prop_cubic_monotone_preserving(ys in proptest::collection::vec(0.0f64..1.0, 3..12)) {
            // Sort descending to build a decreasing dataset.
            let mut ys = ys;
            ys.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let hi = *xs.last().unwrap();
            let mc = MonotoneCubic::new(xs, ys).unwrap();
            let mut prev = f64::INFINITY;
            for i in 0..200 {
                let x = hi * i as f64 / 199.0;
                let v = mc.eval(x);
                prop_assert!(v <= prev + 1e-9);
                prev = v;
            }
        }

        #[test]
        fn prop_linear_between_knot_values(x in 0.0f64..10.0) {
            let li = Linear::new(vec![0.0, 10.0], vec![1.0, 0.0]).unwrap();
            let v = li.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
