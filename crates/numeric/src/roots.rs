//! Scalar root finding: bracketing, bisection, Brent's method, and
//! safeguarded Newton iteration.
//!
//! The guideline machinery in `cs-core` repeatedly inverts decreasing life
//! functions (`p(T) = v`) and solves implicit `t_0` inequalities, so these
//! routines are written to be robust on monotone but possibly very flat or
//! very steep functions.

use crate::{NumericError, Result, DEFAULT_MAX_ITER, DEFAULT_TOL};

/// Expands `[lo, hi]` geometrically to the right until `f` changes sign or
/// `hi` exceeds `limit`. Returns the bracketing interval.
///
/// `f(lo)` is evaluated once; the interval grows by doubling its width. Use
/// this to bracket the inverse of an unbounded-support survival function.
pub fn expand_bracket_right(
    f: impl Fn(f64) -> f64,
    lo: f64,
    mut hi: f64,
    limit: f64,
) -> Result<(f64, f64)> {
    if !(lo < hi) {
        return Err(NumericError::InvalidArgument(
            "expand_bracket_right: lo must be < hi",
        ));
    }
    let flo = f(lo);
    if flo == 0.0 {
        return Ok((lo, lo));
    }
    let mut width = hi - lo;
    for _ in 0..128 {
        let fhi = f(hi);
        if fhi == 0.0 || (flo < 0.0) != (fhi < 0.0) {
            return Ok((lo, hi));
        }
        if hi >= limit {
            break;
        }
        width *= 2.0;
        hi = (lo + width).min(limit);
    }
    Err(NumericError::NoBracket { lo, hi })
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires a sign change over the interval (endpoints with `f == 0` are
/// returned immediately). Converges unconditionally; accuracy `tol` on the
/// abscissa.
pub fn bisect(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return Err(NumericError::InvalidArgument("bisect: invalid interval"));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    if fa == 0.0 {
        return Ok(a);
    }
    let fb = f(b);
    if fb == 0.0 {
        return Ok(b);
    }
    if (fa < 0.0) == (fb < 0.0) {
        return Err(NumericError::NoBracket { lo, hi });
    }
    // f64 has 52 mantissa bits; ~200 halvings always reaches machine epsilon.
    for _ in 0..256 {
        let mid = 0.5 * (a + b);
        if (b - a) <= tol || mid == a || mid == b {
            return Ok(mid);
        }
        let fm = f(mid);
        if fm == 0.0 {
            return Ok(mid);
        }
        if (fm < 0.0) == (fa < 0.0) {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// Finds a root of `f` in `[lo, hi]` using Brent's method
/// (inverse-quadratic / secant steps with a bisection safeguard).
///
/// Typically converges superlinearly; falls back to bisection behaviour on
/// pathological functions. Requires a sign change over `[lo, hi]`.
pub fn brent(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if (fa < 0.0) == (fb < 0.0) {
        return Err(NumericError::NoBracket { lo, hi });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..DEFAULT_MAX_ITER {
        if fb == 0.0 || (b - a).abs() <= tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let lo34 = (3.0 * a + b) / 4.0;
        let cond_outside = !((lo34.min(b) < s) && (s < lo34.max(b)));
        let cond_flag = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0 || (b - c).abs() < tol
        } else {
            (s - b).abs() >= d.abs() / 2.0 || d.abs() < tol
        };
        if cond_outside || cond_flag {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = b - c;
        c = b;
        fc = fb;
        if (fa < 0.0) != (fs < 0.0) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericError::NoConvergence {
        iterations: DEFAULT_MAX_ITER,
        best: b,
    })
}

/// Newton's method with a bisection safeguard.
///
/// Iterates `x ← x − f(x)/f'(x)` starting from `x0`, clamped to the bracket
/// `[lo, hi]` (which must exhibit a sign change). Whenever a Newton step
/// leaves the current bracket or the derivative vanishes, a bisection step is
/// taken instead, so convergence is guaranteed.
pub fn newton_safeguarded(
    f: impl Fn(f64) -> f64,
    df: impl Fn(f64) -> f64,
    x0: f64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64> {
    let mut a = lo;
    let mut b = hi;
    let fa = f(a);
    if fa == 0.0 {
        return Ok(a);
    }
    let fb = f(b);
    if fb == 0.0 {
        return Ok(b);
    }
    if (fa < 0.0) == (fb < 0.0) {
        return Err(NumericError::NoBracket { lo, hi });
    }
    let mut x = x0.clamp(lo, hi);
    for _ in 0..DEFAULT_MAX_ITER {
        let fx = f(x);
        if fx == 0.0 || (b - a).abs() <= tol {
            return Ok(x);
        }
        // Shrink the bracket using the sign of f(x).
        if (fx < 0.0) == (fa < 0.0) {
            a = x;
        } else {
            b = x;
        }
        let dfx = df(x);
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        x = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        if (b - a).abs() <= tol {
            return Ok(x);
        }
    }
    Err(NumericError::NoConvergence {
        iterations: DEFAULT_MAX_ITER,
        best: x,
    })
}

/// Inverts a **strictly decreasing** function: finds `x ∈ [lo, hi]` with
/// `g(x) = target`.
///
/// This is the workhorse for life-function inversion (`p(T) = v`). Uses
/// Brent's method on `g(x) − target`, falling back to bisection if Brent's
/// bookkeeping stalls. Returns `lo`/`hi` when `target` is outside the range
/// attained on the interval (clamped inversion), which is the behaviour the
/// schedule generators want at the lifespan boundary.
pub fn invert_decreasing(g: impl Fn(f64) -> f64, target: f64, lo: f64, hi: f64) -> Result<f64> {
    let glo = g(lo);
    let ghi = g(hi);
    if !(glo >= ghi) {
        return Err(NumericError::InvalidArgument(
            "invert_decreasing: function is not decreasing on the interval",
        ));
    }
    if target >= glo {
        return Ok(lo);
    }
    if target <= ghi {
        return Ok(hi);
    }
    let h = |x: f64| g(x) - target;
    match brent(h, lo, hi, DEFAULT_TOL) {
        Ok(x) => Ok(x),
        Err(_) => bisect(h, lo, hi, DEFAULT_TOL),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10));
    }

    #[test]
    fn bisect_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_no_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(NumericError::NoBracket { .. })
        ));
    }

    #[test]
    fn bisect_rejects_inverted_interval() {
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12).is_err());
    }

    #[test]
    fn brent_finds_cubic_root() {
        let r = brent(|x| x * x * x - x - 2.0, 1.0, 2.0, 1e-13).unwrap();
        assert!((r.powi(3) - r - 2.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn brent_matches_bisect_on_transcendental() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = brent(f, 0.0, 2.0, 1e-13).unwrap();
        let ri = bisect(f, 0.0, 2.0, 1e-13).unwrap();
        assert!(approx_eq(rb, ri, 1e-9));
        assert!(approx_eq(rb, 3.0_f64.ln(), 1e-9));
    }

    #[test]
    fn brent_handles_steep_flat() {
        // Very flat near the root.
        let f = |x: f64| (x - 1.0).powi(7);
        let r = brent(f, 0.0, 3.0, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-2);
    }

    #[test]
    fn newton_converges_quadratically() {
        let r = newton_safeguarded(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 0.0, 2.0, 1e-14).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10));
    }

    #[test]
    fn newton_safeguard_on_bad_derivative() {
        // Derivative deliberately wrong; bisection safeguard must still converge.
        let r = newton_safeguarded(|x| x - 0.7, |_| 0.0, 0.5, 0.0, 1.0, 1e-12).unwrap();
        assert!(approx_eq(r, 0.7, 1e-9));
    }

    #[test]
    fn invert_decreasing_basic() {
        // g(x) = 1 - x on [0, 1]; g(x) = 0.25 at x = 0.75.
        let x = invert_decreasing(|x| 1.0 - x, 0.25, 0.0, 1.0).unwrap();
        assert!(approx_eq(x, 0.75, 1e-9));
    }

    #[test]
    fn invert_decreasing_clamps() {
        assert_eq!(invert_decreasing(|x| 1.0 - x, 2.0, 0.0, 1.0).unwrap(), 0.0);
        assert_eq!(invert_decreasing(|x| 1.0 - x, -1.0, 0.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn invert_decreasing_rejects_increasing() {
        assert!(invert_decreasing(|x| x, 0.5, 0.0, 1.0).is_err());
    }

    #[test]
    fn expand_bracket_right_exponential() {
        // Root of e^{-x} - 0.001 is ~6.9; start with a tiny interval.
        let f = |x: f64| (-x).exp() - 0.001;
        let (lo, hi) = expand_bracket_right(f, 0.0, 0.5, 1e9).unwrap();
        assert!(f(lo) > 0.0 && f(hi) < 0.0);
        let r = brent(f, lo, hi, 1e-12).unwrap();
        assert!(approx_eq(r, (1000.0_f64).ln(), 1e-8));
    }

    #[test]
    fn expand_bracket_right_fails_when_no_sign_change() {
        let f = |x: f64| x * x + 1.0;
        assert!(expand_bracket_right(f, 0.0, 1.0, 100.0).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Brent and bisection agree on random monotone cubics with a
            /// root in the interval.
            #[test]
            fn prop_brent_matches_bisect(root in -5.0f64..5.0, scale in 0.1f64..10.0) {
                let f = move |x: f64| scale * (x - root) * ((x - root).powi(2) + 1.0);
                let rb = brent(f, -10.0, 10.0, 1e-12).unwrap();
                let ri = bisect(f, -10.0, 10.0, 1e-12).unwrap();
                prop_assert!((rb - root).abs() < 1e-7, "brent {rb} vs root {root}");
                prop_assert!((ri - root).abs() < 1e-7, "bisect {ri} vs root {root}");
            }

            /// invert_decreasing round-trips random exponentials.
            #[test]
            fn prop_invert_round_trip(rate in 0.05f64..4.0, q in 0.01f64..0.99) {
                let g = move |x: f64| (-rate * x).exp();
                let hi = 200.0 / rate;
                let x = invert_decreasing(g, q, 0.0, hi).unwrap();
                prop_assert!((g(x) - q).abs() < 1e-6, "g({x}) = {} vs q = {q}", g(x));
            }

            /// Newton with the true derivative never leaves the bracket and
            /// lands on the root.
            #[test]
            fn prop_newton_safeguarded(root in 0.5f64..9.5) {
                let f = move |x: f64| x * x - root * root;
                let df = |x: f64| 2.0 * x;
                let r = newton_safeguarded(f, df, 5.0, 0.0, 10.0, 1e-12).unwrap();
                prop_assert!((r - root).abs() < 1e-6);
            }
        }
    }
}
