//! Empirical life functions built from observed reclamation times.
//!
//! The paper (§1, §2.1) notes that in practice the life function is
//! "garnered possibly from trace data that exposes B's owner's computer
//! usage patterns" and then "encapsulated by some well-behaved curve".
//! [`Empirical`] implements exactly that pipeline: an empirical survival
//! function from samples, smoothed with a monotone cubic interpolant so that
//! the result is continuous, monotone and differentiable — ready for the
//! guideline machinery.

use crate::{LifeFunction, Shape};
use cs_numeric::interp::MonotoneCubic;
use cs_numeric::NumericError;

/// A smoothed empirical survival curve.
///
/// Construction reduces the sample to `knots` evenly spaced quantile knots
/// (plus the endpoints) and fits a Fritsch–Carlson monotone cubic through
/// them; the curve is clamped to 0 beyond the largest observation.
#[derive(Debug, Clone)]
pub struct Empirical {
    curve: MonotoneCubic,
    /// Largest observed reclamation time = effective lifespan.
    t_max: f64,
    n_samples: usize,
}

impl Empirical {
    /// Builds an empirical life function from reclamation-time samples.
    ///
    /// `knots` controls the smoothing granularity (clamped to
    /// `[4, samples.len()]`). Samples must be positive and finite; at least
    /// 4 are required.
    pub fn from_samples(samples: &[f64], knots: usize) -> Result<Self, NumericError> {
        if samples.len() < 4 {
            return Err(NumericError::InvalidArgument(
                "Empirical: need at least 4 samples",
            ));
        }
        if samples.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(NumericError::InvalidArgument(
                "Empirical: samples must be positive and finite",
            ));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let t_max = sorted[n - 1];
        let knots = knots.clamp(4, n);

        // Knot abscissae: quantiles of the sample, which adapts resolution
        // to where the data actually is. Survival at x = fraction of samples
        // strictly greater than x.
        let mut xs: Vec<f64> = Vec::with_capacity(knots + 2);
        let mut ys: Vec<f64> = Vec::with_capacity(knots + 2);
        xs.push(0.0);
        ys.push(1.0);
        for k in 1..=knots {
            // Quantile position within the sorted sample.
            let idx = ((k as f64 / (knots + 1) as f64) * n as f64).floor() as usize;
            let x = sorted[idx.min(n - 1)];
            if x <= *xs.last().unwrap() {
                continue; // skip duplicate abscissae
            }
            let greater = sorted.iter().filter(|&&s| s > x).count();
            xs.push(x);
            ys.push(greater as f64 / n as f64);
        }
        if *xs.last().unwrap() < t_max {
            xs.push(t_max);
            ys.push(0.0);
        } else {
            *ys.last_mut().unwrap() = 0.0;
        }
        let curve = MonotoneCubic::new(xs, ys)?;
        Ok(Self {
            curve,
            t_max,
            n_samples: n,
        })
    }

    /// Number of samples the curve was estimated from.
    pub fn sample_count(&self) -> usize {
        self.n_samples
    }
}

impl LifeFunction for Empirical {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else if t >= self.t_max {
            0.0
        } else {
            self.curve.eval(t).clamp(0.0, 1.0)
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if !(0.0..=self.t_max).contains(&t) {
            0.0
        } else {
            self.curve.deriv(t).min(0.0)
        }
    }

    fn lifespan(&self) -> Option<f64> {
        Some(self.t_max)
    }

    fn shape(&self) -> Shape {
        Shape::Neither
    }

    fn describe(&self) -> String {
        format!(
            "empirical survival from {} samples, L = {:.4}",
            self.n_samples, self.t_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometricDecreasing, Uniform};

    /// Deterministic quasi-random stream in (0, 1) (golden-ratio rotation).
    fn unit_stream(n: usize) -> impl Iterator<Item = f64> {
        (1..=n).map(|i| {
            let v = (i as f64 * 0.618_033_988_749_895) % 1.0;
            v.clamp(1e-9, 1.0 - 1e-9)
        })
    }

    #[test]
    fn rejects_bad_samples() {
        assert!(Empirical::from_samples(&[1.0, 2.0, 3.0], 8).is_err());
        assert!(Empirical::from_samples(&[1.0, -2.0, 3.0, 4.0], 8).is_err());
        assert!(Empirical::from_samples(&[1.0, f64::NAN, 3.0, 4.0], 8).is_err());
        assert!(Empirical::from_samples(&[0.0, 1.0, 2.0, 3.0], 8).is_err());
    }

    #[test]
    fn boundary_behaviour() {
        let e = Empirical::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 4).unwrap();
        assert_eq!(e.survival(0.0), 1.0);
        assert_eq!(e.survival(5.0), 0.0);
        assert_eq!(e.survival(6.0), 0.0);
        assert_eq!(e.lifespan(), Some(5.0));
        assert_eq!(e.sample_count(), 5);
    }

    #[test]
    fn recovers_uniform_survival() {
        // Samples from uniform risk: R = L(1 - U) with U uniform in (0,1).
        let l = 10.0;
        let u = Uniform::new(l).unwrap();
        let samples: Vec<f64> = unit_stream(5000).map(|q| u.inverse_survival(q)).collect();
        let e = Empirical::from_samples(&samples, 24).unwrap();
        for i in 1..10 {
            let t = i as f64;
            let err = (e.survival(t) - u.survival(t)).abs();
            assert!(
                err < 0.03,
                "t = {t}: empirical {} vs true {}",
                e.survival(t),
                u.survival(t)
            );
        }
    }

    #[test]
    fn recovers_geometric_survival() {
        let g = GeometricDecreasing::new(2.0).unwrap();
        let samples: Vec<f64> = unit_stream(5000).map(|q| g.inverse_survival(q)).collect();
        let e = Empirical::from_samples(&samples, 24).unwrap();
        for &t in &[0.5, 1.0, 2.0, 4.0] {
            let err = (e.survival(t) - g.survival(t)).abs();
            assert!(err < 0.03, "t = {t}");
        }
    }

    #[test]
    fn monotone_and_in_range() {
        let samples: Vec<f64> = unit_stream(500).map(|q| 1.0 + 9.0 * q).collect();
        let e = Empirical::from_samples(&samples, 12).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let t = 10.0 * i as f64 / 100.0;
            let v = e.survival(t);
            assert!((0.0..=1.0).contains(&v));
            assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn derivative_nonpositive() {
        let samples: Vec<f64> = unit_stream(200).map(|q| 0.5 + 4.5 * q).collect();
        let e = Empirical::from_samples(&samples, 10).unwrap();
        for i in 0..=50 {
            let t = 5.0 * i as f64 / 50.0;
            assert!(e.deriv(t) <= 0.0);
        }
    }

    #[test]
    fn validation_passes() {
        let u = Uniform::new(8.0).unwrap();
        let samples: Vec<f64> = unit_stream(2000).map(|q| u.inverse_survival(q)).collect();
        let e = Empirical::from_samples(&samples, 20).unwrap();
        // The derivative of the smoothed curve may deviate from finite
        // differences only at knots; validate::check tolerates that.
        crate::validate::check(&e).unwrap();
    }
}
