//! Weibull life function `p(t) = exp(−(t/λ)^k)`.
//!
//! Not studied in the paper, but the natural parametric target when fitting
//! owner-absence traces (`cs-trace`): `k = 1` recovers the geometric
//! (exponential) scenario, `k < 1` models heavy-tailed absences (long
//! absences get longer), `k > 1` models "scheduled return" behaviour.

use crate::{LifeFunction, Shape};
use cs_numeric::NumericError;

/// Weibull survival `p(t) = exp(−(t/λ)^k)` with shape `k` and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    k: f64,
    lambda: f64,
}

impl Weibull {
    /// Creates the function; requires finite `k > 0` and `lambda > 0`.
    pub fn new(k: f64, lambda: f64) -> Result<Self, NumericError> {
        if !(k.is_finite() && k > 0.0) {
            return Err(NumericError::InvalidArgument(
                "Weibull: shape must be positive",
            ));
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(NumericError::InvalidArgument(
                "Weibull: scale must be positive",
            ));
        }
        Ok(Self { k, lambda })
    }

    /// The shape parameter `k`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The scale parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl LifeFunction for Weibull {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-(t / self.lambda).powf(self.k)).exp()
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if t <= 0.0 {
            // For k < 1 the derivative blows up at 0+; report the limit for
            // k >= 1 (0 for k > 1, -1/λ for k = 1) via the t→0⁺ expression
            // evaluated at a tiny offset to stay finite.
            if self.k >= 1.0 {
                return if self.k > 1.0 {
                    0.0
                } else {
                    -1.0 / self.lambda
                };
            }
            return f64::NEG_INFINITY;
        }
        let z = t / self.lambda;
        -(self.k / self.lambda) * z.powf(self.k - 1.0) * (-z.powf(self.k)).exp()
    }

    fn lifespan(&self) -> Option<f64> {
        None
    }

    fn shape(&self) -> Shape {
        // Survival is convex for k ≤ 1 (p'' ≥ 0 everywhere); for k > 1 the
        // survival has an inflection point, so no global curvature holds.
        if self.k <= 1.0 {
            Shape::Convex
        } else {
            Shape::Neither
        }
    }

    fn describe(&self) -> String {
        format!("weibull, k = {}, lambda = {}", self.k, self.lambda)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            0.0
        } else if q <= 0.0 {
            f64::INFINITY
        } else {
            self.lambda * (-q.ln()).powf(1.0 / self.k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use cs_numeric::{approx_eq, diff};

    #[test]
    fn construction_guards() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Weibull::new(1.5, 2.0).is_ok());
    }

    #[test]
    fn k1_matches_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        // exp(-t/2) = a^{-t} with a = e^{1/2}.
        let g = crate::GeometricDecreasing::new((0.5f64).exp()).unwrap();
        for &t in &[0.0, 0.5, 1.0, 5.0] {
            assert!(approx_eq(w.survival(t), g.survival(t), 1e-12), "t = {t}");
        }
        assert_eq!(w.shape(), Shape::Convex);
    }

    #[test]
    fn k_gt_one_shape_neither() {
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().shape(), Shape::Neither);
    }

    #[test]
    fn deriv_matches_fd() {
        let w = Weibull::new(1.7, 3.0).unwrap();
        for &t in &[0.5, 2.0, 6.0] {
            let fd = diff::central(|x| w.survival(x), t, 1e-7);
            assert!(approx_eq(w.deriv(t), fd, 1e-5), "t = {t}");
        }
    }

    #[test]
    fn inverse_round_trip() {
        let w = Weibull::new(0.8, 5.0).unwrap();
        for &q in &[0.9, 0.5, 0.05] {
            assert!(approx_eq(w.survival(w.inverse_survival(q)), q, 1e-10));
        }
    }

    #[test]
    fn passes_validation() {
        validate::check(&Weibull::new(1.3, 4.0).unwrap()).unwrap();
    }
}
