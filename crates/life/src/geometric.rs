//! The two geometric scenarios of \[3\] / paper §§4.2–4.3.
//!
//! * [`GeometricDecreasing`]: `p_a(t) = a^{−t}` with risk factor `a > 1` —
//!   the episode has a "half-life"; convex, unbounded support. The unique
//!   optimal schedule is infinite with all period-lengths equal (\[3\]).
//! * [`GeometricIncreasing`]: `p(t) = (2^L − 2^t)/(2^L − 1)` — a coffee-break
//!   opportunity whose interruption risk doubles at every step; concave,
//!   lifespan `L`.

use crate::{LifeFunction, Shape};
use cs_numeric::NumericError;

/// Geometric-decreasing-lifespan life function `p_a(t) = a^{−t}`, `a > 1`.
///
/// The conditional risk is time-invariant (constant hazard `ln a`), which is
/// why the optimal schedule has all periods equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricDecreasing {
    a: f64,
    ln_a: f64,
}

impl GeometricDecreasing {
    /// # Examples
    ///
    /// ```
    /// use cs_life::{GeometricDecreasing, LifeFunction};
    /// let p = GeometricDecreasing::new(2.0).unwrap();
    /// // Risk factor 2 means a one-unit half-life.
    /// assert!((p.survival(1.0) - 0.5).abs() < 1e-12);
    /// assert_eq!(p.lifespan(), None); // unbounded support
    /// ```
    /// Creates `p_a`; requires finite `a > 1`.
    pub fn new(a: f64) -> Result<Self, NumericError> {
        if !(a.is_finite() && a > 1.0) {
            return Err(NumericError::InvalidArgument(
                "GeometricDecreasing: risk factor must be > 1",
            ));
        }
        Ok(Self { a, ln_a: a.ln() })
    }

    /// Creates the function with the given half-life `h` (`p(h) = 1/2`),
    /// i.e. `a = 2^{1/h}`.
    pub fn from_half_life(h: f64) -> Result<Self, NumericError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(NumericError::InvalidArgument(
                "GeometricDecreasing: half-life must be positive",
            ));
        }
        Self::new(2.0f64.powf(1.0 / h))
    }

    /// The risk factor `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// `ln a`, the constant hazard rate.
    pub fn ln_a(&self) -> f64 {
        self.ln_a
    }

    /// The half-life `h = 1/log₂ a`.
    pub fn half_life(&self) -> f64 {
        std::f64::consts::LN_2 / self.ln_a
    }
}

impl LifeFunction for GeometricDecreasing {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-t * self.ln_a).exp()
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            -self.ln_a * (-t * self.ln_a).exp()
        }
    }

    fn lifespan(&self) -> Option<f64> {
        None
    }

    fn shape(&self) -> Shape {
        Shape::Convex
    }

    fn describe(&self) -> String {
        format!("geometric decreasing lifespan, a = {}", self.a)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            0.0
        } else if q <= 0.0 {
            f64::INFINITY
        } else {
            -q.ln() / self.ln_a
        }
    }
}

/// Geometric-increasing-risk life function
/// `p(t) = (2^L − 2^t)/(2^L − 1)` on `[0, L]`.
///
/// Computed in a numerically stable form,
/// `p(t) = (1 − 2^{t−L})/(1 − 2^{−L})`, so large `L` does not overflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricIncreasing {
    l: f64,
    /// `1 − 2^{−L}`, the denominator of the stable form.
    denom: f64,
}

impl GeometricIncreasing {
    /// Creates the function; requires finite `l > 0`.
    pub fn new(l: f64) -> Result<Self, NumericError> {
        if !(l.is_finite() && l > 0.0) {
            return Err(NumericError::InvalidArgument(
                "GeometricIncreasing: lifespan must be positive",
            ));
        }
        Ok(Self {
            l,
            denom: 1.0 - 2.0f64.powf(-l),
        })
    }

    /// The potential lifespan `L`.
    pub fn l(&self) -> f64 {
        self.l
    }
}

impl LifeFunction for GeometricIncreasing {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else if t >= self.l {
            0.0
        } else {
            // (2^L - 2^t)/(2^L - 1) = (1 - 2^{t-L}) / (1 - 2^{-L})
            (1.0 - 2.0f64.powf(t - self.l)) / self.denom
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if !(0.0..=self.l).contains(&t) {
            return 0.0;
        }
        // d/dt [-(2^{t-L})/(1-2^{-L})] = -ln2 · 2^{t-L} / (1 - 2^{-L})
        -std::f64::consts::LN_2 * 2.0f64.powf(t - self.l) / self.denom
    }

    fn lifespan(&self) -> Option<f64> {
        Some(self.l)
    }

    fn shape(&self) -> Shape {
        // p'' = -(ln2)² 2^{t-L}/(1-2^{-L}) < 0: concave.
        Shape::Concave
    }

    fn describe(&self) -> String {
        format!("geometric increasing risk, L = {}", self.l)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        // q = (1 - 2^{t-L})/(1 - 2^{-L}) ⇒ t = L + log2(1 - q(1 - 2^{-L})).
        let inner = 1.0 - q * self.denom;
        if inner <= 0.0 {
            return 0.0;
        }
        let t = self.l + inner.log2();
        t.clamp(0.0, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use cs_numeric::{approx_eq, diff};
    use proptest::prelude::*;

    #[test]
    fn decreasing_construction_guards() {
        assert!(GeometricDecreasing::new(1.0).is_err());
        assert!(GeometricDecreasing::new(0.5).is_err());
        assert!(GeometricDecreasing::new(f64::NAN).is_err());
        assert!(GeometricDecreasing::new(2.0).is_ok());
        assert!(GeometricDecreasing::from_half_life(0.0).is_err());
    }

    #[test]
    fn decreasing_half_life_round_trip() {
        let p = GeometricDecreasing::from_half_life(5.0).unwrap();
        assert!(approx_eq(p.survival(5.0), 0.5, 1e-12));
        assert!(approx_eq(p.half_life(), 5.0, 1e-12));
    }

    #[test]
    fn decreasing_constant_hazard() {
        let p = GeometricDecreasing::new(3.0).unwrap();
        for &t in &[0.1, 1.0, 10.0, 30.0] {
            assert!(approx_eq(p.hazard(t), 3.0f64.ln(), 1e-9), "t = {t}");
        }
    }

    #[test]
    fn decreasing_deriv_matches_fd() {
        let p = GeometricDecreasing::new(std::f64::consts::E).unwrap();
        for &t in &[0.5, 2.0, 7.0] {
            let fd = diff::central(|x| p.survival(x), t, 1e-7);
            assert!(approx_eq(p.deriv(t), fd, 1e-6));
        }
    }

    #[test]
    fn decreasing_inverse_closed_form() {
        let p = GeometricDecreasing::new(2.0).unwrap();
        assert!(approx_eq(p.inverse_survival(0.25), 2.0, 1e-12));
        assert_eq!(p.inverse_survival(1.0), 0.0);
        assert!(p.inverse_survival(0.0).is_infinite());
    }

    #[test]
    fn decreasing_mean_lifetime_is_one_over_hazard() {
        let p = GeometricDecreasing::new(2.0).unwrap();
        assert!(approx_eq(p.mean_lifetime(), 1.0 / 2.0f64.ln(), 1e-6));
    }

    #[test]
    fn decreasing_passes_validation() {
        validate::check(&GeometricDecreasing::new(4.0).unwrap()).unwrap();
    }

    #[test]
    fn increasing_construction_guards() {
        assert!(GeometricIncreasing::new(0.0).is_err());
        assert!(GeometricIncreasing::new(-2.0).is_err());
        assert!(GeometricIncreasing::new(32.0).is_ok());
    }

    #[test]
    fn increasing_boundaries() {
        let p = GeometricIncreasing::new(10.0).unwrap();
        assert_eq!(p.survival(0.0), 1.0);
        assert!(p.survival(10.0).abs() < 1e-12);
        assert_eq!(p.survival(12.0), 0.0);
    }

    #[test]
    fn increasing_matches_unstable_form_small_l() {
        let l = 12.0;
        let p = GeometricIncreasing::new(l).unwrap();
        for i in 1..12 {
            let t = i as f64;
            let direct = (2.0f64.powf(l) - 2.0f64.powf(t)) / (2.0f64.powf(l) - 1.0);
            assert!(approx_eq(p.survival(t), direct, 1e-10), "t = {t}");
        }
    }

    #[test]
    fn increasing_stable_for_large_l() {
        // 2^2000 overflows f64; the stable form must still work.
        let p = GeometricIncreasing::new(2000.0).unwrap();
        let v = p.survival(1000.0);
        assert!(v.is_finite() && v > 0.999);
        assert!(p.survival(1999.0) < 0.8);
    }

    #[test]
    fn increasing_deriv_matches_fd() {
        let p = GeometricIncreasing::new(20.0).unwrap();
        for &t in &[1.0, 10.0, 19.0] {
            let fd = diff::central(|x| p.survival(x), t, 1e-6);
            assert!(approx_eq(p.deriv(t), fd, 1e-5), "t = {t}");
        }
    }

    #[test]
    fn increasing_inverse_round_trip() {
        let p = GeometricIncreasing::new(16.0).unwrap();
        for &q in &[0.99, 0.5, 0.1, 0.001] {
            let t = p.inverse_survival(q);
            assert!(approx_eq(p.survival(t), q, 1e-9), "q = {q}");
        }
    }

    #[test]
    fn increasing_risk_doubles() {
        // Hazard of the increasing scenario grows with t (risk doubles each
        // unit near the end).
        let p = GeometricIncreasing::new(30.0).unwrap();
        assert!(p.hazard(20.0) > p.hazard(10.0));
        assert!(p.hazard(29.0) > p.hazard(20.0));
    }

    #[test]
    fn increasing_passes_validation() {
        validate::check(&GeometricIncreasing::new(24.0).unwrap()).unwrap();
    }

    proptest! {
        #[test]
        fn prop_decreasing_monotone(a in 1.01f64..20.0, t in 0.0f64..50.0, dt in 0.0f64..5.0) {
            let p = GeometricDecreasing::new(a).unwrap();
            prop_assert!(p.survival(t + dt) <= p.survival(t) + 1e-15);
        }

        #[test]
        fn prop_increasing_in_unit_interval(l in 1.0f64..500.0, t in 0.0f64..1000.0) {
            let p = GeometricIncreasing::new(l).unwrap();
            let v = p.survival(t);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn prop_increasing_inverse_round_trip(l in 2.0f64..200.0, q in 0.001f64..0.999) {
            let p = GeometricIncreasing::new(l).unwrap();
            let t = p.inverse_survival(q);
            prop_assert!((p.survival(t) - q).abs() < 1e-6);
        }
    }
}
