//! The uniform-risk life function `p(t) = 1 − t/L` (\[3\], §4.1 with `d = 1`).
//!
//! The risk of reclamation is uniform over the potential lifespan `L`. This
//! is the only member of the paper's families that is simultaneously concave
//! and convex (affine), and the scenario for which the paper's guideline
//! recurrence reproduces the provably optimal recurrence `t_k = t_{k−1} − c`
//! of \[3\] exactly (eq 4.1).

use crate::{LifeFunction, Shape};
use cs_numeric::NumericError;

/// Uniform-risk life function with potential lifespan `L`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    l: f64,
}

impl Uniform {
    /// # Examples
    ///
    /// ```
    /// use cs_life::{LifeFunction, Uniform};
    /// let p = Uniform::new(10.0).unwrap();
    /// assert_eq!(p.survival(5.0), 0.5);
    /// assert_eq!(p.lifespan(), Some(10.0));
    /// ```
    /// Creates the uniform-risk life function; `l` must be finite and > 0.
    pub fn new(l: f64) -> Result<Self, NumericError> {
        if !(l.is_finite() && l > 0.0) {
            return Err(NumericError::InvalidArgument(
                "Uniform: lifespan must be positive",
            ));
        }
        Ok(Self { l })
    }

    /// The potential lifespan `L`.
    pub fn l(&self) -> f64 {
        self.l
    }
}

impl LifeFunction for Uniform {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else if t >= self.l {
            0.0
        } else {
            1.0 - t / self.l
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if (0.0..=self.l).contains(&t) {
            -1.0 / self.l
        } else {
            0.0
        }
    }

    fn lifespan(&self) -> Option<f64> {
        Some(self.l)
    }

    fn shape(&self) -> Shape {
        Shape::Linear
    }

    fn describe(&self) -> String {
        format!("uniform risk, L = {}", self.l)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        self.l * (1.0 - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn construction_guards() {
        assert!(Uniform::new(0.0).is_err());
        assert!(Uniform::new(-1.0).is_err());
        assert!(Uniform::new(f64::NAN).is_err());
        assert!(Uniform::new(f64::INFINITY).is_err());
        assert!(Uniform::new(5.0).is_ok());
    }

    #[test]
    fn survival_values() {
        let p = Uniform::new(10.0).unwrap();
        assert_eq!(p.survival(-1.0), 1.0);
        assert_eq!(p.survival(0.0), 1.0);
        assert_eq!(p.survival(5.0), 0.5);
        assert_eq!(p.survival(10.0), 0.0);
        assert_eq!(p.survival(11.0), 0.0);
    }

    #[test]
    fn derivative_is_constant_inside() {
        let p = Uniform::new(4.0).unwrap();
        assert_eq!(p.deriv(1.0), -0.25);
        assert_eq!(p.deriv(3.9), -0.25);
        assert_eq!(p.deriv(4.5), 0.0);
        assert_eq!(p.deriv(-0.5), 0.0);
    }

    #[test]
    fn inverse_survival_closed_form() {
        let p = Uniform::new(8.0).unwrap();
        assert_eq!(p.inverse_survival(1.0), 0.0);
        assert_eq!(p.inverse_survival(0.0), 8.0);
        assert_eq!(p.inverse_survival(0.25), 6.0);
        // Clamp out-of-range quantiles.
        assert_eq!(p.inverse_survival(2.0), 0.0);
        assert_eq!(p.inverse_survival(-0.5), 8.0);
    }

    #[test]
    fn passes_validation() {
        validate::check(&Uniform::new(17.0).unwrap()).unwrap();
    }
}
