//! Conditional (re-rooted) life functions for progressive scheduling.
//!
//! §6 of the paper observes that the "progressive" character of the
//! guideline recurrence lets one schedule period-by-period with
//! **conditional** probabilities: having survived to time `τ`, the remaining
//! episode is governed by `q(t) = p(τ + t) / p(τ)`. [`Conditional`] wraps
//! any life function with that transformation; it is again a valid life
//! function (`q(0) = 1`, decreasing), preserves curvature class (scaling by
//! a positive constant and shifting the argument preserve the sign of the
//! second derivative), and so all the guidelines apply to it verbatim.

use crate::{ArcLife, LifeFunction, Shape};
use cs_numeric::NumericError;

/// `q(t) = p(τ + t)/p(τ)`: the life function conditioned on survival to `τ`.
#[derive(Clone)]
pub struct Conditional {
    base: ArcLife,
    tau: f64,
    /// `p(τ)`, cached: the normalizing survival mass.
    p_tau: f64,
}

impl Conditional {
    /// # Examples
    ///
    /// ```
    /// use cs_life::{Conditional, LifeFunction, Uniform};
    /// use std::sync::Arc;
    /// // Uniform risk over 10 units, given 4 units already survived:
    /// let q = Conditional::new(Arc::new(Uniform::new(10.0).unwrap()), 4.0).unwrap();
    /// assert_eq!(q.survival(0.0), 1.0);
    /// assert_eq!(q.lifespan(), Some(6.0));
    /// ```
    /// Conditions `base` on survival to `tau ≥ 0`. Fails when `p(τ) = 0`
    /// (conditioning on a null event) or `tau` is not finite.
    pub fn new(base: ArcLife, tau: f64) -> Result<Self, NumericError> {
        if !(tau.is_finite() && tau >= 0.0) {
            return Err(NumericError::InvalidArgument(
                "Conditional: tau must be >= 0",
            ));
        }
        let p_tau = base.survival(tau);
        if p_tau <= 0.0 {
            return Err(NumericError::InvalidArgument(
                "Conditional: survival at tau is zero (null conditioning event)",
            ));
        }
        Ok(Self { base, tau, p_tau })
    }

    /// The conditioning time `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Re-roots further: conditioning on an additional `dt` of survival.
    pub fn advance(&self, dt: f64) -> Result<Self, NumericError> {
        Self::new(self.base.clone(), self.tau + dt)
    }
}

impl LifeFunction for Conditional {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (self.base.survival(self.tau + t) / self.p_tau).clamp(0.0, 1.0)
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            self.base.deriv(self.tau + t) / self.p_tau
        }
    }

    fn lifespan(&self) -> Option<f64> {
        self.base.lifespan().map(|l| (l - self.tau).max(0.0))
    }

    fn shape(&self) -> Shape {
        self.base.shape()
    }

    fn describe(&self) -> String {
        format!("{} | survived to {:.4}", self.base.describe(), self.tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometricDecreasing, Uniform};
    use cs_numeric::approx_eq;
    use std::sync::Arc;

    #[test]
    fn construction_guards() {
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        assert!(Conditional::new(base.clone(), -1.0).is_err());
        assert!(Conditional::new(base.clone(), f64::NAN).is_err());
        // Conditioning at the lifespan is a null event.
        assert!(Conditional::new(base.clone(), 10.0).is_err());
        assert!(Conditional::new(base, 3.0).is_ok());
    }

    #[test]
    fn uniform_conditional_is_uniform_on_remainder() {
        // Uniform risk conditioned on surviving to τ is uniform on L − τ.
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        let q = Conditional::new(base, 4.0).unwrap();
        let expect = Uniform::new(6.0).unwrap();
        for i in 0..=12 {
            let t = i as f64 * 0.5;
            assert!(
                approx_eq(q.survival(t), expect.survival(t), 1e-12),
                "t = {t}"
            );
        }
        assert_eq!(q.lifespan(), Some(6.0));
    }

    #[test]
    fn geometric_is_memoryless() {
        // a^{-t} conditioned on any τ is itself: the defining property of the
        // half-life scenario ("the conditional risk looks the same at every
        // time instant", §4.2).
        let base: ArcLife = Arc::new(GeometricDecreasing::new(3.0).unwrap());
        let q = Conditional::new(base.clone(), 7.5).unwrap();
        for &t in &[0.1, 1.0, 5.0] {
            assert!(approx_eq(q.survival(t), base.survival(t), 1e-12), "t = {t}");
        }
    }

    #[test]
    fn q_is_one_at_zero_and_decreasing() {
        let base: ArcLife = Arc::new(Uniform::new(5.0).unwrap());
        let q = Conditional::new(base, 2.0).unwrap();
        assert_eq!(q.survival(0.0), 1.0);
        crate::validate::check(&q).unwrap();
    }

    #[test]
    fn advance_composes() {
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        let q1 = Conditional::new(base.clone(), 2.0).unwrap();
        let q2 = q1.advance(3.0).unwrap();
        let direct = Conditional::new(base, 5.0).unwrap();
        for &t in &[0.5, 1.0, 4.0] {
            assert!(approx_eq(q2.survival(t), direct.survival(t), 1e-12));
        }
        assert!(approx_eq(q2.tau(), 5.0, 1e-15));
    }

    #[test]
    fn shape_preserved() {
        let base: ArcLife = Arc::new(GeometricDecreasing::new(2.0).unwrap());
        let q = Conditional::new(base, 1.0).unwrap();
        assert_eq!(q.shape(), Shape::Convex);
    }

    #[test]
    fn deriv_scaled() {
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        let q = Conditional::new(base, 5.0).unwrap();
        // p(5) = 0.5; q'(t) = p'(5 + t)/0.5 = -0.1/0.5 = -0.2 = -1/(L - τ).
        assert!(approx_eq(q.deriv(1.0), -0.2, 1e-12));
    }
}
