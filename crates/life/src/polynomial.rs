//! The concave polynomial family `p_{d,L}(t) = 1 − t^d/L^d`, `d = 1, 2, …`
//! (paper §4.1).
//!
//! `d = 1` is the uniform-risk scenario; larger `d` defers the bulk of the
//! reclamation risk toward the end of the lifespan. All members are concave
//! (`p'' = −d(d−1)t^{d−2}/L^d ≤ 0`), so the concave `t_0` upper bound
//! (eq 3.14) and the §5 structure results apply.

use crate::{LifeFunction, Shape};
use cs_numeric::NumericError;

/// Polynomial life function `p_{d,L}(t) = 1 − (t/L)^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polynomial {
    d: u32,
    l: f64,
}

impl Polynomial {
    /// Creates `p_{d,L}`; requires `d ≥ 1` and finite `l > 0`.
    pub fn new(d: u32, l: f64) -> Result<Self, NumericError> {
        if d == 0 {
            return Err(NumericError::InvalidArgument(
                "Polynomial: degree must be >= 1",
            ));
        }
        if !(l.is_finite() && l > 0.0) {
            return Err(NumericError::InvalidArgument(
                "Polynomial: lifespan must be positive",
            ));
        }
        Ok(Self { d, l })
    }

    /// The degree `d`.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The potential lifespan `L`.
    pub fn l(&self) -> f64 {
        self.l
    }
}

impl LifeFunction for Polynomial {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else if t >= self.l {
            0.0
        } else {
            1.0 - (t / self.l).powi(self.d as i32)
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if !(0.0..=self.l).contains(&t) {
            return 0.0;
        }
        let d = self.d as f64;
        -d * (t / self.l).powi(self.d as i32 - 1) / self.l
    }

    fn lifespan(&self) -> Option<f64> {
        Some(self.l)
    }

    fn shape(&self) -> Shape {
        if self.d == 1 {
            Shape::Linear
        } else {
            Shape::Concave
        }
    }

    fn describe(&self) -> String {
        format!("polynomial p_{{d,L}}, d = {}, L = {}", self.d, self.l)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        // 1 - (t/L)^d = q  ⇒  t = L (1 - q)^{1/d}.
        self.l * (1.0 - q).powf(1.0 / self.d as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use cs_numeric::{approx_eq, diff};
    use proptest::prelude::*;

    #[test]
    fn construction_guards() {
        assert!(Polynomial::new(0, 10.0).is_err());
        assert!(Polynomial::new(2, 0.0).is_err());
        assert!(Polynomial::new(2, f64::NAN).is_err());
        assert!(Polynomial::new(3, 100.0).is_ok());
    }

    #[test]
    fn degree_one_equals_uniform() {
        let p = Polynomial::new(1, 10.0).unwrap();
        let u = crate::Uniform::new(10.0).unwrap();
        for i in 0..=20 {
            let t = i as f64 * 0.5;
            assert!(approx_eq(p.survival(t), u.survival(t), 1e-12));
            assert!(approx_eq(p.deriv(t), u.deriv(t), 1e-12));
        }
        assert_eq!(p.shape(), Shape::Linear);
    }

    #[test]
    fn higher_degree_is_concave_shape() {
        assert_eq!(Polynomial::new(2, 5.0).unwrap().shape(), Shape::Concave);
        assert_eq!(Polynomial::new(7, 5.0).unwrap().shape(), Shape::Concave);
    }

    #[test]
    fn survival_boundaries() {
        let p = Polynomial::new(3, 2.0).unwrap();
        assert_eq!(p.survival(0.0), 1.0);
        assert_eq!(p.survival(2.0), 0.0);
        assert_eq!(p.survival(3.0), 0.0);
        assert!(approx_eq(p.survival(1.0), 1.0 - 0.125, 1e-12));
    }

    #[test]
    fn deriv_matches_finite_difference() {
        for d in [1u32, 2, 3, 5] {
            let p = Polynomial::new(d, 50.0).unwrap();
            for &t in &[1.0, 10.0, 25.0, 49.0] {
                let fd = diff::central(|x| p.survival(x), t, 1e-6);
                assert!(approx_eq(p.deriv(t), fd, 1e-5), "d={d}, t={t}");
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let p = Polynomial::new(4, 12.0).unwrap();
        for &q in &[0.9, 0.5, 0.1, 0.01] {
            let t = p.inverse_survival(q);
            assert!(approx_eq(p.survival(t), q, 1e-10), "q={q}");
        }
    }

    #[test]
    fn passes_validation() {
        for d in [1u32, 2, 4] {
            validate::check(&Polynomial::new(d, 33.0).unwrap()).unwrap();
        }
    }

    #[test]
    fn second_difference_nonpositive_concave() {
        let p = Polynomial::new(3, 10.0).unwrap();
        for i in 1..19 {
            let t = i as f64 * 0.5;
            assert!(diff::second_central(|x| p.survival(x), t, 1e-4) <= 1e-6);
        }
    }

    proptest! {
        #[test]
        fn prop_survival_in_unit_interval(d in 1u32..8, l in 0.5f64..1e4, t in 0.0f64..2e4) {
            let p = Polynomial::new(d, l).unwrap();
            let v = p.survival(t);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn prop_monotone_decreasing(d in 1u32..8, l in 0.5f64..1e3, t in 0.0f64..1e3, dt in 0.0f64..10.0) {
            let p = Polynomial::new(d, l).unwrap();
            prop_assert!(p.survival(t + dt) <= p.survival(t) + 1e-12);
        }
    }
}
