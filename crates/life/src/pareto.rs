//! The heavy-tailed life function `p(t) = 1/(t+1)^d`.
//!
//! The paper uses this family (with `d > 1`) after Corollary 3.2 as a
//! witness that **not every life function admits an optimal schedule**: the
//! existence test `∃ t > c : p(t) > −(t − c)p'(t)` fails for all `c ≥` some
//! threshold. `cs-core::existence` reproduces that claim; this module only
//! supplies the function itself.

use crate::{LifeFunction, Shape};
use cs_numeric::NumericError;

/// Pareto-tail life function `p(t) = (t + 1)^{−d}`, `d > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    d: f64,
}

impl Pareto {
    /// Creates the function; requires finite `d > 0`. The paper's
    /// no-optimal-schedule discussion concerns `d > 1` (finite mean);
    /// `d ≤ 1` is allowed here for exploration but has infinite mean
    /// lifetime.
    pub fn new(d: f64) -> Result<Self, NumericError> {
        if !(d.is_finite() && d > 0.0) {
            return Err(NumericError::InvalidArgument(
                "Pareto: exponent must be positive",
            ));
        }
        Ok(Self { d })
    }

    /// The tail exponent `d`.
    pub fn d(&self) -> f64 {
        self.d
    }
}

impl LifeFunction for Pareto {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (t + 1.0).powf(-self.d)
        }
    }

    fn deriv(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            -self.d * (t + 1.0).powf(-self.d - 1.0)
        }
    }

    fn lifespan(&self) -> Option<f64> {
        None
    }

    fn shape(&self) -> Shape {
        // p'' = d(d+1)(t+1)^{-d-2} > 0: convex.
        Shape::Convex
    }

    fn describe(&self) -> String {
        format!("pareto tail 1/(t+1)^d, d = {}", self.d)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            0.0
        } else if q <= 0.0 {
            f64::INFINITY
        } else {
            q.powf(-1.0 / self.d) - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use cs_numeric::{approx_eq, diff};

    #[test]
    fn construction_guards() {
        assert!(Pareto::new(0.0).is_err());
        assert!(Pareto::new(-1.0).is_err());
        assert!(Pareto::new(f64::INFINITY).is_err());
        assert!(Pareto::new(2.0).is_ok());
    }

    #[test]
    fn survival_values() {
        let p = Pareto::new(2.0).unwrap();
        assert_eq!(p.survival(0.0), 1.0);
        assert!(approx_eq(p.survival(1.0), 0.25, 1e-12));
        assert!(approx_eq(p.survival(3.0), 1.0 / 16.0, 1e-12));
    }

    #[test]
    fn deriv_matches_fd() {
        let p = Pareto::new(1.5);
        let p = p.unwrap();
        for &t in &[0.5, 2.0, 10.0] {
            let fd = diff::central(|x| p.survival(x), t, 1e-7);
            assert!(approx_eq(p.deriv(t), fd, 1e-6), "t = {t}");
        }
    }

    #[test]
    fn inverse_round_trip() {
        let p = Pareto::new(3.0).unwrap();
        for &q in &[0.9, 0.5, 0.01] {
            assert!(approx_eq(p.survival(p.inverse_survival(q)), q, 1e-10));
        }
        assert!(p.inverse_survival(0.0).is_infinite());
    }

    #[test]
    fn convex_shape_and_hazard_decreasing() {
        let p = Pareto::new(2.0).unwrap();
        assert_eq!(p.shape(), Shape::Convex);
        // Heavy tails have decreasing hazard d/(t+1).
        assert!(p.hazard(0.0) > p.hazard(1.0));
        assert!(approx_eq(p.hazard(0.0), 2.0, 1e-12));
    }

    #[test]
    fn mean_lifetime_finite_iff_d_gt_one() {
        // d = 2: mean = ∫ (t+1)^{-2} = 1.
        let p = Pareto::new(2.0).unwrap();
        assert!((p.mean_lifetime() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn passes_validation() {
        validate::check(&Pareto::new(2.5).unwrap()).unwrap();
    }
}
