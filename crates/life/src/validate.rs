//! Numerical validation of [`LifeFunction`] implementations.
//!
//! The paper's derivations assume `p(0) = 1`, monotone decrease,
//! differentiability, and (for the shape-dependent results) global concavity
//! or convexity. [`check`] verifies all of these on a sample grid so every
//! family's test suite — and any user-supplied life function — can be
//! sanity-checked against the model's preconditions.

use crate::{LifeFunction, Shape};
use cs_numeric::diff;

/// A violated life-function precondition, with the offending abscissa.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// `p(0)` differs from 1.
    NotOneAtZero {
        /// The observed `p(0)`.
        value: f64,
    },
    /// Survival leaves `[0, 1]`.
    OutOfRange {
        /// Where the violation occurred.
        t: f64,
        /// The offending value.
        value: f64,
    },
    /// Survival increased between consecutive grid points.
    NotDecreasing {
        /// Left sample point.
        t0: f64,
        /// Right sample point.
        t1: f64,
    },
    /// Analytic derivative disagrees with the central finite difference.
    DerivativeMismatch {
        /// Where the mismatch occurred.
        t: f64,
        /// Analytic `p'(t)`.
        analytic: f64,
        /// Finite-difference estimate.
        numeric: f64,
    },
    /// Claimed shape contradicts sampled second differences.
    ShapeMismatch {
        /// Where the contradiction occurred.
        t: f64,
        /// Claimed shape.
        claimed: Shape,
        /// Sampled second derivative.
        second_derivative: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotOneAtZero { value } => write!(f, "p(0) = {value}, expected 1"),
            Violation::OutOfRange { t, value } => write!(f, "p({t}) = {value} outside [0,1]"),
            Violation::NotDecreasing { t0, t1 } => {
                write!(f, "p increases between t = {t0} and t = {t1}")
            }
            Violation::DerivativeMismatch {
                t,
                analytic,
                numeric,
            } => {
                write!(
                    f,
                    "p'({t}) = {analytic} but finite difference gives {numeric}"
                )
            }
            Violation::ShapeMismatch {
                t,
                claimed,
                second_derivative,
            } => {
                write!(
                    f,
                    "shape {claimed:?} contradicted at t = {t} (p'' ≈ {second_derivative})"
                )
            }
        }
    }
}

/// Number of grid samples used by [`check`].
const SAMPLES: usize = 257;

/// Relative tolerance for the derivative cross-check.
const DERIV_TOL: f64 = 1e-3;

/// Verifies the model preconditions for `p` on a sample grid over its
/// effective horizon. Returns the first violation found, or `Ok(())`.
pub fn check(p: &dyn LifeFunction) -> Result<(), Violation> {
    let p0 = p.survival(0.0);
    if (p0 - 1.0).abs() > 1e-9 {
        return Err(Violation::NotOneAtZero { value: p0 });
    }
    let hi = p.horizon(1e-6).max(1e-6);
    let step = hi / (SAMPLES - 1) as f64;
    let mut prev = p0;
    for i in 1..SAMPLES {
        let t = step * i as f64;
        let v = p.survival(t);
        if !(-1e-12..=1.0 + 1e-12).contains(&v) {
            return Err(Violation::OutOfRange { t, value: v });
        }
        if v > prev + 1e-9 {
            return Err(Violation::NotDecreasing {
                t0: t - step,
                t1: t,
            });
        }
        prev = v;
    }
    // Derivative cross-check on interior points away from kinks (skip the
    // outer 2% of the horizon, where finite-lifespan families clamp).
    for i in 1..SAMPLES - 1 {
        let t = step * i as f64;
        if t < 0.02 * hi || t > 0.98 * hi {
            continue;
        }
        let analytic = p.deriv(t);
        if !analytic.is_finite() {
            continue;
        }
        let h = (step * 0.25).min(diff::default_step(t) * 100.0);
        let numeric = diff::central(|x| p.survival(x), t, h);
        let scale = analytic.abs().max(numeric.abs()).max(1e-9);
        if (analytic - numeric).abs() > DERIV_TOL * scale + 1e-9 {
            return Err(Violation::DerivativeMismatch {
                t,
                analytic,
                numeric,
            });
        }
    }
    // Shape cross-check via sign of sampled second differences.
    let shape = p.shape();
    if matches!(shape, Shape::Concave | Shape::Convex | Shape::Linear) {
        for i in 2..SAMPLES - 2 {
            let t = step * i as f64;
            if t < 0.05 * hi || t > 0.95 * hi {
                continue;
            }
            let h = step * 0.5;
            let d2 = diff::second_central(|x| p.survival(x), t, h);
            let tol = 1e-6 * (1.0 / (hi * hi)).max(1.0);
            let bad = match shape {
                Shape::Concave => d2 > tol,
                Shape::Convex => d2 < -tol,
                Shape::Linear => d2.abs() > tol,
                Shape::Neither => false,
            };
            if bad {
                return Err(Violation::ShapeMismatch {
                    t,
                    claimed: shape,
                    second_derivative: d2,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uniform;

    /// A deliberately broken life function for exercising the validator.
    struct Broken {
        mode: u8,
    }

    impl LifeFunction for Broken {
        fn survival(&self, t: f64) -> f64 {
            match self.mode {
                0 => 0.9, // p(0) != 1
                1 => {
                    // increases after t = 1
                    if t <= 0.0 {
                        1.0
                    } else if t < 1.0 {
                        1.0 - 0.5 * t
                    } else {
                        (0.5 + 0.1 * (t - 1.0)).min(1.0)
                    }
                }
                2 => 1.5 - t * 0.1, // out of range at t=0... actually p(0)=1.5
                _ => (1.0 - t / 10.0).clamp(0.0, 1.0),
            }
        }
        fn deriv(&self, _t: f64) -> f64 {
            match self.mode {
                3 => -5.0, // wrong derivative (true is -0.1)
                _ => 0.0,
            }
        }
        fn lifespan(&self) -> Option<f64> {
            Some(10.0)
        }
        fn shape(&self) -> Shape {
            Shape::Neither
        }
        fn describe(&self) -> String {
            "broken".into()
        }
    }

    #[test]
    fn detects_not_one_at_zero() {
        assert!(matches!(
            check(&Broken { mode: 0 }),
            Err(Violation::NotOneAtZero { .. })
        ));
    }

    #[test]
    fn detects_increase() {
        assert!(matches!(
            check(&Broken { mode: 1 }),
            Err(Violation::NotDecreasing { .. })
        ));
    }

    #[test]
    fn detects_out_of_range() {
        // mode 2 has p(0) = 1.5, caught as NotOneAtZero first — that's fine,
        // any violation is a failure.
        assert!(check(&Broken { mode: 2 }).is_err());
    }

    #[test]
    fn detects_derivative_mismatch() {
        assert!(matches!(
            check(&Broken { mode: 3 }),
            Err(Violation::DerivativeMismatch { .. })
        ));
    }

    #[test]
    fn accepts_valid_function() {
        check(&Uniform::new(5.0).unwrap()).unwrap();
    }

    #[test]
    fn violation_display() {
        let v = Violation::NotOneAtZero { value: 0.5 };
        assert!(v.to_string().contains("expected 1"));
        let v = Violation::ShapeMismatch {
            t: 1.0,
            claimed: Shape::Concave,
            second_derivative: 0.5,
        };
        assert!(v.to_string().contains("Concave"));
    }
}
