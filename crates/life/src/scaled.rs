//! Time-rescaled life functions: `q(t) = p(t/σ)`.
//!
//! Lets one library of life functions serve any time unit (the paper's
//! model is unit-agnostic; `c` must simply be expressed in the same unit).
//! Rescaling preserves monotonicity and curvature class, multiplies the
//! lifespan by `σ`, and divides the derivative by `σ`.

use crate::{ArcLife, LifeFunction, Shape};
use cs_numeric::NumericError;

/// `q(t) = p(t/σ)`: the base life function with time stretched by `σ`.
#[derive(Clone)]
pub struct TimeScaled {
    base: ArcLife,
    sigma: f64,
}

impl TimeScaled {
    /// Stretches `base`'s time axis by `sigma > 0` (e.g. `sigma = 3600`
    /// converts a curve fitted in hours to seconds).
    pub fn new(base: ArcLife, sigma: f64) -> Result<Self, NumericError> {
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(NumericError::InvalidArgument(
                "TimeScaled: sigma must be positive",
            ));
        }
        Ok(Self { base, sigma })
    }

    /// The scale factor `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl LifeFunction for TimeScaled {
    fn survival(&self, t: f64) -> f64 {
        self.base.survival(t / self.sigma)
    }

    fn deriv(&self, t: f64) -> f64 {
        self.base.deriv(t / self.sigma) / self.sigma
    }

    fn lifespan(&self) -> Option<f64> {
        self.base.lifespan().map(|l| l * self.sigma)
    }

    fn shape(&self) -> Shape {
        // q'' = p''(t/σ)/σ²: same sign everywhere.
        self.base.shape()
    }

    fn describe(&self) -> String {
        format!("{} (time x{})", self.base.describe(), self.sigma)
    }

    fn inverse_survival(&self, q: f64) -> f64 {
        self.base.inverse_survival(q) * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, GeometricDecreasing, Uniform};
    use cs_numeric::approx_eq;
    use std::sync::Arc;

    #[test]
    fn construction_guards() {
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        assert!(TimeScaled::new(base.clone(), 0.0).is_err());
        assert!(TimeScaled::new(base.clone(), -2.0).is_err());
        assert!(TimeScaled::new(base.clone(), f64::NAN).is_err());
        assert!(TimeScaled::new(base, 3600.0).is_ok());
    }

    #[test]
    fn uniform_hours_to_seconds() {
        // Uniform over 10 hours, scaled to seconds: uniform over 36000 s.
        let base: ArcLife = Arc::new(Uniform::new(10.0).unwrap());
        let q = TimeScaled::new(base, 3600.0).unwrap();
        assert_eq!(q.lifespan(), Some(36_000.0));
        assert!(approx_eq(q.survival(18_000.0), 0.5, 1e-12));
        assert!(approx_eq(q.deriv(100.0), -1.0 / 36_000.0, 1e-15));
        assert_eq!(q.shape(), Shape::Linear);
        assert!(approx_eq(q.inverse_survival(0.25), 27_000.0, 1e-9));
        assert!(q.describe().contains("x3600"));
    }

    #[test]
    fn scaling_is_equivalent_to_reparametrized_family() {
        // Scaling a^{-t} by sigma gives (a^{1/sigma})^{-t}.
        let a: f64 = 8.0;
        let sigma = 4.0;
        let base: ArcLife = Arc::new(GeometricDecreasing::new(a).unwrap());
        let scaled = TimeScaled::new(base, sigma).unwrap();
        let direct = GeometricDecreasing::new(a.powf(1.0 / sigma)).unwrap();
        for &t in &[0.5, 2.0, 10.0] {
            assert!(
                approx_eq(scaled.survival(t), direct.survival(t), 1e-12),
                "t = {t}"
            );
            assert!(
                approx_eq(scaled.deriv(t), direct.deriv(t), 1e-12),
                "t = {t}"
            );
        }
    }

    #[test]
    fn passes_validation() {
        let base: ArcLife = Arc::new(Uniform::new(5.0).unwrap());
        let q = TimeScaled::new(base, 12.0).unwrap();
        validate::check(&q).unwrap();
    }

    #[test]
    fn scheduling_is_scale_equivariant() {
        // Optimal schedules scale with time: plan on (p, c) and on
        // (scaled p, scaled c) should match after unit conversion.
        let l = 200.0;
        let c = 2.0;
        let sigma = 60.0;
        let base = Uniform::new(l).unwrap();
        let plan = cs_core_free_check(&base, c);
        let scaled = TimeScaled::new(Arc::new(base), sigma).unwrap();
        let plan_scaled = cs_core_free_check(&scaled, c * sigma);
        assert!(approx_eq(plan_scaled / sigma, plan, 1e-6));
    }

    /// Local helper computing the greedy-style one-period optimum, to avoid
    /// a dev-dependency cycle on cs-core: argmax (t - c) p(t).
    fn cs_core_free_check(p: &dyn LifeFunction, c: f64) -> f64 {
        let hi = p.horizon(1e-9);
        let mut best = (0.0, f64::NEG_INFINITY);
        for i in 1..4000 {
            let t = hi * i as f64 / 4000.0;
            let v = (t - c).max(0.0) * p.survival(t);
            if v > best.1 {
                best = (t, v);
            }
        }
        best.0
    }
}
