//! # cs-life
//!
//! Life functions for cycle-stealing episodes, after Rosenberg (TR 98-15,
//! IPPS'98) and Bhatt–Chung–Leighton–Rosenberg (IEEE ToC 46, 1997).
//!
//! A *life function* `p` gives, for each time `t ≥ 0`, the probability that
//! the borrowed workstation has **not** been reclaimed by time `t`:
//!
//! * `p(0) = 1`;
//! * `p` decreases monotonically;
//! * with a known episode bound `L` ("potential lifespan"), `p` reaches 0 at
//!   `L`; with no bound, `p(t) → 0` as `t → ∞`.
//!
//! The paper's guidelines need `p` to be differentiable and, for the `t_0`
//! bounds, either *concave* (`p'` nonincreasing) or *convex* (`p'`
//! nondecreasing). This crate provides:
//!
//! * the [`LifeFunction`] trait with derivative, lifespan, [`Shape`],
//!   numeric inversion and conditional re-rooting;
//! * the three families studied in the paper — [`Uniform`], [`Polynomial`]
//!   (`p_{d,L}(t) = 1 − t^d/L^d`, §4.1), [`GeometricDecreasing`]
//!   (`p_a(t) = a^{−t}`, §4.2), [`GeometricIncreasing`]
//!   (`(2^L − 2^t)/(2^L − 1)`, §4.3);
//! * [`Pareto`] (`1/(t+1)^d`), the paper's witness for life functions that
//!   admit **no** optimal schedule (Corollary 3.2);
//! * [`Weibull`], a convenient target family when fitting trace data;
//! * [`Empirical`], a monotone-cubic smoothed survival curve built from
//!   reclamation-time samples (the paper's "trace data encapsulated by a
//!   well-behaved curve");
//! * [`Conditional`], the re-rooted life function
//!   `q(t) = p(τ + t)/p(τ)` used by progressive (period-by-period)
//!   scheduling (§6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditional;
mod empirical;
mod geometric;
mod mixture;
mod pareto;
mod polynomial;
mod scaled;
mod uniform;
pub mod validate;
mod weibull;

pub use conditional::Conditional;
pub use empirical::Empirical;
pub use geometric::{GeometricDecreasing, GeometricIncreasing};
pub use mixture::Mixture;
pub use pareto::Pareto;
pub use polynomial::Polynomial;
pub use scaled::TimeScaled;
pub use uniform::Uniform;
pub use weibull::Weibull;

use cs_numeric::roots;

/// Curvature classification of a life function (the paper's "shape").
///
/// *Concave* means `p'` is everywhere nonincreasing; *convex* means `p'` is
/// everywhere nondecreasing. The uniform-risk function is linear, hence both;
/// [`Shape::Linear`] records that. [`Shape::Neither`] is for functions with
/// inflection points (e.g. fitted or empirical curves), for which only the
/// shape-free results (Thm 3.1/3.2, Cor 3.1) apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `p'` nonincreasing (e.g. `p_{d,L}`, geometric-increasing risk).
    Concave,
    /// `p'` nondecreasing (e.g. `a^{−t}`, Pareto).
    Convex,
    /// Affine `p`: simultaneously concave and convex (uniform risk).
    Linear,
    /// No global curvature guarantee.
    Neither,
}

impl Shape {
    /// True when the concave-side results (Thm 3.3 eq (3.14), Thm 5.2(a),
    /// Cor 5.1–5.5) apply.
    pub fn is_concave(self) -> bool {
        matches!(self, Shape::Concave | Shape::Linear)
    }

    /// True when the convex-side results (Thm 3.3 eq (3.13), Thm 5.2(b))
    /// apply.
    pub fn is_convex(self) -> bool {
        matches!(self, Shape::Convex | Shape::Linear)
    }
}

/// Probability that the borrowed workstation survives (is not reclaimed)
/// through time `t`, together with the analytic machinery the scheduling
/// guidelines need.
///
/// Implementations must guarantee `survival(0) = 1`, monotone nonincreasing
/// `survival`, and `deriv` equal to the derivative of `survival` wherever it
/// exists. [`validate::check`] verifies these numerically and is run by every
/// family's test suite.
pub trait LifeFunction: Send + Sync {
    /// `p(t)`: probability of not being reclaimed by time `t`. Must be 1 at
    /// `t ≤ 0` and clamp to 0 beyond the lifespan.
    fn survival(&self, t: f64) -> f64;

    /// `p'(t)`: derivative of the survival function (≤ 0). At kinks, a
    /// one-sided derivative is acceptable.
    fn deriv(&self, t: f64) -> f64;

    /// Potential lifespan `L` (`p(L) = 0`), or `None` when the support is
    /// unbounded.
    fn lifespan(&self) -> Option<f64>;

    /// Curvature classification.
    fn shape(&self) -> Shape;

    /// Human-readable description, used in experiment tables.
    fn describe(&self) -> String;

    /// Inverse survival: smallest `t` with `p(t) ≤ q`, for `q ∈ [0, 1]`.
    ///
    /// Used both to invert the guideline recurrence and to sample
    /// reclamation times by inverse transform (`R = p⁻¹(U)`, `U ~ U(0,1)`).
    /// The default implementation brackets and bisects; families override it
    /// with closed forms.
    fn inverse_survival(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return 0.0;
        }
        let hi = match self.lifespan() {
            Some(l) => l,
            None => {
                // Expand until the survival drops below q.
                let mut hi = 1.0;
                for _ in 0..1024 {
                    if self.survival(hi) <= q {
                        break;
                    }
                    hi *= 2.0;
                }
                hi
            }
        };
        roots::invert_decreasing(|t| self.survival(t), q, 0.0, hi)
            .expect("life function survival must be decreasing")
    }

    /// Effective horizon: the lifespan if finite, else the time by which the
    /// survival probability has fallen to `eps`.
    fn horizon(&self, eps: f64) -> f64 {
        match self.lifespan() {
            Some(l) => l,
            None => self.inverse_survival(eps),
        }
    }

    /// Hazard rate `−p'(t)/p(t)` (instantaneous reclamation risk given
    /// survival to `t`). Returns `+∞` where `p(t) = 0`.
    fn hazard(&self, t: f64) -> f64 {
        let p = self.survival(t);
        if p <= 0.0 {
            f64::INFINITY
        } else {
            -self.deriv(t) / p
        }
    }

    /// Mean reclamation time `E[R] = ∫₀^∞ p(t) dt`, computed by quadrature
    /// over the effective horizon.
    fn mean_lifetime(&self) -> f64 {
        let hi = self.horizon(1e-12);
        cs_numeric::quad::adaptive_simpson(|t| self.survival(t), 0.0, hi, 1e-10).unwrap_or(f64::NAN)
    }
}

impl<T: LifeFunction + ?Sized> LifeFunction for &T {
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn deriv(&self, t: f64) -> f64 {
        (**self).deriv(t)
    }
    fn lifespan(&self) -> Option<f64> {
        (**self).lifespan()
    }
    fn shape(&self) -> Shape {
        (**self).shape()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn inverse_survival(&self, q: f64) -> f64 {
        (**self).inverse_survival(q)
    }
}

impl LifeFunction for std::sync::Arc<dyn LifeFunction> {
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn deriv(&self, t: f64) -> f64 {
        (**self).deriv(t)
    }
    fn lifespan(&self) -> Option<f64> {
        (**self).lifespan()
    }
    fn shape(&self) -> Shape {
        (**self).shape()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn inverse_survival(&self, q: f64) -> f64 {
        (**self).inverse_survival(q)
    }
}

/// Shared-ownership trait object for heterogeneous collections of life
/// functions (e.g. one per workstation in a NOW).
pub type ArcLife = std::sync::Arc<dyn LifeFunction>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_predicates() {
        assert!(Shape::Concave.is_concave());
        assert!(!Shape::Concave.is_convex());
        assert!(Shape::Convex.is_convex());
        assert!(!Shape::Convex.is_concave());
        assert!(Shape::Linear.is_concave() && Shape::Linear.is_convex());
        assert!(!Shape::Neither.is_concave() && !Shape::Neither.is_convex());
    }

    #[test]
    fn arc_life_delegates() {
        let p: ArcLife = std::sync::Arc::new(Uniform::new(10.0).unwrap());
        assert_eq!(p.survival(0.0), 1.0);
        assert_eq!(p.lifespan(), Some(10.0));
        assert_eq!(p.shape(), Shape::Linear);
        assert!(p.describe().contains("uniform"));
        assert!((p.inverse_survival(0.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn reference_delegates() {
        let u = Uniform::new(4.0).unwrap();
        let r: &dyn LifeFunction = &u;
        assert_eq!((&r).survival(2.0), 0.5);
        assert_eq!((&r).deriv(2.0), -0.25);
    }

    #[test]
    fn default_horizon_finite_vs_infinite() {
        let u = Uniform::new(7.0).unwrap();
        assert_eq!(u.horizon(1e-9), 7.0);
        let g = GeometricDecreasing::new(2.0).unwrap();
        let h = g.horizon(1e-3);
        assert!((g.survival(h) - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn mean_lifetime_uniform_is_half_l() {
        let u = Uniform::new(20.0).unwrap();
        assert!((u.mean_lifetime() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn hazard_uniform_grows() {
        // Uniform risk has hazard 1/(L - t): increasing, infinite at L.
        let u = Uniform::new(10.0).unwrap();
        assert!((u.hazard(0.0) - 0.1).abs() < 1e-12);
        assert!(u.hazard(5.0) > u.hazard(1.0));
        assert!(u.hazard(10.0).is_infinite());
    }
}
