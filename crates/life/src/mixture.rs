//! Mixture life functions: `p(t) = Σ w_i · p_i(t)` with `Σ w_i = 1`.
//!
//! Mixtures model heterogeneous owner behaviour — e.g. the diurnal trace of
//! `cs-trace` is (short coffee breaks) + (meetings) + (overnights), each
//! with its own survival law. A mixture of valid life functions is again a
//! valid life function (`p(0) = 1`, decreasing, differentiable wherever the
//! components are).
//!
//! Curvature: a weighted sum of convex functions is convex, so an
//! all-convex mixture is [`Shape::Convex`]. An all-concave mixture is
//! concave **only if every finite lifespan coincides**: at a component's
//! lifespan the mixture's derivative jumps *up* (a negative term drops
//! out), which breaks concavity. [`Mixture::shape`] implements exactly that
//! rule and reports [`Shape::Neither`] otherwise.

use crate::{ArcLife, LifeFunction, Shape};
use cs_numeric::NumericError;

/// A finite mixture of life functions.
#[derive(Clone)]
pub struct Mixture {
    components: Vec<(f64, ArcLife)>,
    lifespan: Option<f64>,
    shape: Shape,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights must be
    /// positive and are normalized to sum to 1; at least one component is
    /// required.
    pub fn new(components: Vec<(f64, ArcLife)>) -> Result<Self, NumericError> {
        if components.is_empty() {
            return Err(NumericError::InvalidArgument(
                "Mixture: need at least one component",
            ));
        }
        if components.iter().any(|(w, _)| !(w.is_finite() && *w > 0.0)) {
            return Err(NumericError::InvalidArgument(
                "Mixture: weights must be positive",
            ));
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        let components: Vec<(f64, ArcLife)> = components
            .into_iter()
            .map(|(w, p)| (w / total, p))
            .collect();

        // Lifespan: the max of component lifespans; unbounded if any
        // component is unbounded.
        let mut lifespan = Some(0.0f64);
        for (_, p) in &components {
            match (lifespan, p.lifespan()) {
                (Some(acc), Some(l)) => lifespan = Some(acc.max(l)),
                _ => lifespan = None,
            }
        }

        // Shape per the module-level rule.
        let all_convex = components.iter().all(|(_, p)| p.shape().is_convex());
        let all_concave = components.iter().all(|(_, p)| p.shape().is_concave());
        let lifespans: Vec<Option<f64>> = components.iter().map(|(_, p)| p.lifespan()).collect();
        let lifespans_equal = lifespans.windows(2).all(|w| match (w[0], w[1]) {
            (Some(a), Some(b)) => (a - b).abs() < 1e-12,
            (None, None) => true,
            _ => false,
        });
        let shape = if all_convex && all_concave && lifespans_equal {
            Shape::Linear
        } else if all_convex {
            // Convexity survives the clamp-at-lifespan kink (derivative
            // steps up to 0).
            Shape::Convex
        } else if all_concave && lifespans_equal {
            Shape::Concave
        } else {
            Shape::Neither
        };

        Ok(Self {
            components,
            lifespan,
            shape,
        })
    }

    /// The normalized `(weight, component)` pairs.
    pub fn components(&self) -> &[(f64, ArcLife)] {
        &self.components
    }
}

impl LifeFunction for Mixture {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        self.components.iter().map(|(w, p)| w * p.survival(t)).sum()
    }

    fn deriv(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.components.iter().map(|(w, p)| w * p.deriv(t)).sum()
    }

    fn lifespan(&self) -> Option<f64> {
        self.lifespan
    }

    fn shape(&self) -> Shape {
        self.shape
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, p)| format!("{w:.3}*({})", p.describe()))
            .collect();
        format!("mixture[{}]", parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, GeometricDecreasing, Pareto, Uniform};
    use cs_numeric::approx_eq;
    use std::sync::Arc;

    fn arc(p: impl LifeFunction + 'static) -> ArcLife {
        Arc::new(p)
    }

    #[test]
    fn construction_guards() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(0.0, arc(Uniform::new(5.0).unwrap()))]).is_err());
        assert!(Mixture::new(vec![(-1.0, arc(Uniform::new(5.0).unwrap()))]).is_err());
        assert!(Mixture::new(vec![(f64::NAN, arc(Uniform::new(5.0).unwrap()))]).is_err());
    }

    #[test]
    fn weights_normalized() {
        let m = Mixture::new(vec![
            (2.0, arc(Uniform::new(10.0).unwrap())),
            (6.0, arc(Uniform::new(20.0).unwrap())),
        ])
        .unwrap();
        let ws: Vec<f64> = m.components().iter().map(|(w, _)| *w).collect();
        assert!(approx_eq(ws[0], 0.25, 1e-12));
        assert!(approx_eq(ws[1], 0.75, 1e-12));
        assert_eq!(m.survival(0.0), 1.0);
    }

    #[test]
    fn survival_is_weighted_sum() {
        let m = Mixture::new(vec![
            (1.0, arc(Uniform::new(10.0).unwrap())),
            (1.0, arc(Uniform::new(20.0).unwrap())),
        ])
        .unwrap();
        // At t = 5: 0.5·0.5 + 0.5·0.75 = 0.625.
        assert!(approx_eq(m.survival(5.0), 0.625, 1e-12));
        // Beyond the short component's lifespan only the long one remains.
        assert!(approx_eq(m.survival(15.0), 0.5 * 0.25, 1e-12));
        assert_eq!(m.survival(25.0), 0.0);
    }

    #[test]
    fn lifespan_is_max_or_unbounded() {
        let bounded = Mixture::new(vec![
            (1.0, arc(Uniform::new(10.0).unwrap())),
            (1.0, arc(Uniform::new(30.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(bounded.lifespan(), Some(30.0));
        let unbounded = Mixture::new(vec![
            (1.0, arc(Uniform::new(10.0).unwrap())),
            (1.0, arc(GeometricDecreasing::new(2.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(unbounded.lifespan(), None);
    }

    #[test]
    fn shape_rules() {
        // All convex -> convex.
        let convex = Mixture::new(vec![
            (1.0, arc(GeometricDecreasing::new(2.0).unwrap())),
            (1.0, arc(Pareto::new(2.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(convex.shape(), Shape::Convex);
        // Concave with differing lifespans -> Neither (derivative jump).
        let kinked = Mixture::new(vec![
            (1.0, arc(crate::Polynomial::new(2, 10.0).unwrap())),
            (1.0, arc(crate::Polynomial::new(2, 20.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(kinked.shape(), Shape::Neither);
        // Concave with equal lifespans -> Concave.
        let concave = Mixture::new(vec![
            (1.0, arc(crate::Polynomial::new(2, 15.0).unwrap())),
            (1.0, arc(crate::Polynomial::new(3, 15.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(concave.shape(), Shape::Concave);
        // Two uniforms with the same L: linear.
        let linear = Mixture::new(vec![
            (1.0, arc(Uniform::new(15.0).unwrap())),
            (2.0, arc(Uniform::new(15.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(linear.shape(), Shape::Linear);
    }

    #[test]
    fn passes_validation() {
        let m = Mixture::new(vec![
            (0.6, arc(GeometricDecreasing::new(4.0).unwrap())),
            (0.4, arc(Uniform::new(12.0).unwrap())),
        ])
        .unwrap();
        validate::check(&m).unwrap();
    }

    #[test]
    fn describe_lists_components() {
        let m = Mixture::new(vec![
            (1.0, arc(Uniform::new(10.0).unwrap())),
            (3.0, arc(GeometricDecreasing::new(2.0).unwrap())),
        ])
        .unwrap();
        let d = m.describe();
        assert!(d.contains("mixture"));
        assert!(d.contains("uniform"));
        assert!(d.contains("geometric"));
    }

    #[test]
    fn diurnal_like_mixture_schedules() {
        // Short breaks (exp, mean 0.25h) + meetings (exp, mean 1.5h) +
        // overnight-ish (uniform 15h): usable by the guideline machinery via
        // inverse_survival and conditional re-rooting.
        let m = Mixture::new(vec![
            (
                0.70,
                arc(GeometricDecreasing::new((1.0f64 / 0.25).exp()).unwrap()),
            ),
            (
                0.20,
                arc(GeometricDecreasing::new((1.0f64 / 1.5).exp()).unwrap()),
            ),
            (0.10, arc(Uniform::new(15.0).unwrap())),
        ])
        .unwrap();
        // Exponentials are convex and the clamped uniform is convex on
        // [0, ∞) (derivative steps from −1/L up to 0), so the mixture is
        // convex and even the Thm 3.3 convex bound applies to it.
        assert_eq!(m.shape(), Shape::Convex);
        // Survival decreasing and inverse round-trips.
        for &q in &[0.9, 0.5, 0.1] {
            let t = m.inverse_survival(q);
            assert!(approx_eq(m.survival(t), q, 1e-8), "q = {q}");
        }
    }
}
