//! # cs-saves
//!
//! Scheduling saves (checkpoints) in a fault-prone computation — the
//! application the paper's Remark singles out:
//!
//! > *"One important example is scheduling saves in a fault-prone computing
//! > system, as studied in \[7\]. This problem admits an abstract formulation
//! > that is formally similar to our model for cycle-stealing … it is clear
//! > that our results can be adapted to apply in that setting also."*
//!
//! ## The model
//!
//! A job of total duration `w` runs on a machine whose faults arrive as a
//! Poisson process of rate `λ`. The schedule partitions the job into save
//! intervals `s_1, s_2, …` (`Σ s_i = w`); completing an interval costs an
//! additional save overhead `c`, after which the work is durable. A fault
//! anywhere in the current interval-plus-save window destroys the
//! in-progress work and the interval restarts. The objective is the
//! expected makespan.
//!
//! ## The formal correspondence with cycle-stealing
//!
//! Between consecutive saves the situation is exactly one cycle-stealing
//! period against the memoryless life function `p(t) = e^{−λt}` (the §4.2
//! geometric-decreasing scenario with `a = e^λ`): work-in-progress is lost
//! on interruption, a completed window banks its work, and the cost `c`
//! brackets every window. Memorylessness means every interval faces the
//! same sub-problem, which is why both \[3\]'s optimal cycle-stealing
//! schedule and the classic checkpointing solution use **equal intervals**.
//! [`guideline_interval`] exposes the cycle-stealing optimum as a save
//! interval; [`optimal_interval`] minimizes the exact expected makespan;
//! the `exp_saves` experiment measures how close the transplanted guideline
//! lands (and where the two objectives part ways).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cs_numeric::{optimize, NumericError};
use rand::Rng;

/// Errors from the saves model.
#[derive(Debug, Clone, PartialEq)]
pub enum SavesError {
    /// A parameter was out of range.
    BadParameter(&'static str),
    /// An underlying numeric routine failed.
    Numeric(NumericError),
}

impl std::fmt::Display for SavesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SavesError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            SavesError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for SavesError {}

impl From<NumericError> for SavesError {
    fn from(e: NumericError) -> Self {
        SavesError::Numeric(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SavesError>;

fn check(w: f64, c: f64, lambda: f64) -> Result<()> {
    if !(w.is_finite() && w > 0.0) {
        return Err(SavesError::BadParameter("work w must be positive"));
    }
    if !(c.is_finite() && c >= 0.0) {
        return Err(SavesError::BadParameter("save cost c must be >= 0"));
    }
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(SavesError::BadParameter(
            "fault rate lambda must be positive",
        ));
    }
    Ok(())
}

/// Expected time to *durably complete* one interval of work `s` with save
/// cost `c` under Poisson faults of rate `λ`, restarting the interval on
/// every fault.
///
/// Classic first-passage result: the vulnerable window is `v = s + c`, and
/// `E[T] = (e^{λv} − 1)/λ` (each failed attempt costs an `Exp(λ)` time
/// truncated at `v`; summing the geometric number of attempts telescopes to
/// the closed form).
pub fn expected_interval_time(s: f64, c: f64, lambda: f64) -> f64 {
    let v = s + c;
    ((lambda * v).exp() - 1.0) / lambda
}

/// Expected makespan of a full schedule of save intervals (`Σ s_i` must
/// cover the job; intervals are completed in order, each per
/// [`expected_interval_time`] — faults are memoryless so intervals are
/// independent).
pub fn expected_makespan(intervals: &[f64], c: f64, lambda: f64) -> Result<f64> {
    if intervals.is_empty() {
        return Err(SavesError::BadParameter("need at least one interval"));
    }
    if intervals.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
        return Err(SavesError::BadParameter("intervals must be positive"));
    }
    check(intervals.iter().sum(), c, lambda)?;
    Ok(intervals
        .iter()
        .map(|&s| expected_interval_time(s, c, lambda))
        .sum())
}

/// Expected makespan of the *uniform* schedule: `n` equal intervals
/// covering work `w`.
pub fn uniform_makespan(w: f64, n: usize, c: f64, lambda: f64) -> Result<f64> {
    check(w, c, lambda)?;
    if n == 0 {
        return Err(SavesError::BadParameter("need n >= 1 intervals"));
    }
    let s = w / n as f64;
    Ok(n as f64 * expected_interval_time(s, c, lambda))
}

/// The makespan-optimal save interval for a long job: minimizes the
/// per-unit-work cost `E[T(s)]/s` over `s > 0`.
///
/// Equivalently the `n → ∞` continuous relaxation of [`optimal_schedule`];
/// the classic first-order condition is `e^{−λ(s+c)} = 1 − λs`.
/// # Examples
///
/// ```
/// use cs_saves::{optimal_interval, young_interval};
/// // Low-risk regime: the exact optimum matches Young's sqrt(2c/lambda).
/// let exact = optimal_interval(0.01, 0.001).unwrap();
/// assert!((exact - young_interval(0.01, 0.001)).abs() / exact < 0.15);
/// ```
pub fn optimal_interval(c: f64, lambda: f64) -> Result<f64> {
    check(1.0, c, lambda)?;
    // Unimodal in s: golden-section on the rate. Bracket: the optimum is
    // below the Young-style estimate by at most ~4x and above ~s/10.
    let guess = young_interval(c, lambda).max(1e-9);
    let m = optimize::golden_section_max(
        |s| -expected_interval_time(s, c, lambda) / s,
        guess * 1e-3,
        guess * 100.0,
        1e-12,
    )?;
    Ok(m.x)
}

/// Young's classical approximation for the optimal save interval:
/// `s ≈ √(2c/λ)` (valid for `λ·(s + c) ≪ 1`).
pub fn young_interval(c: f64, lambda: f64) -> f64 {
    (2.0 * c / lambda).sqrt()
}

/// The save interval obtained by transplanting the **cycle-stealing
/// guideline** (the paper's Remark): the optimal period for the
/// geometric-decreasing life function `p(t) = e^{−λt}` (risk factor
/// `a = e^λ`), i.e. the root of `t + e^{−λt}/λ = c + 1/λ`.
///
/// This maximizes expected *banked work per episode* rather than minimizing
/// makespan; `exp_saves` measures how close it lands.
pub fn guideline_interval(c: f64, lambda: f64) -> Result<f64> {
    check(1.0, c, lambda)?;
    let a = lambda.exp();
    cs_core::optimal::geometric_decreasing_optimal_period(a, c)
        .map_err(|_| SavesError::BadParameter("guideline period solve failed"))
}

/// The optimal uniform schedule for a finite job of work `w`: chooses the
/// integer interval count `n` minimizing [`uniform_makespan`].
pub fn optimal_schedule(w: f64, c: f64, lambda: f64) -> Result<(usize, f64)> {
    check(w, c, lambda)?;
    // The continuous optimum suggests n ≈ w / s*; scan a window around it.
    let s_star = optimal_interval(c, lambda)?;
    let n_guess = (w / s_star).round().max(1.0) as usize;
    let lo = n_guess.saturating_sub(3).max(1);
    let hi = n_guess + 3;
    let mut best: Option<(usize, f64)> = None;
    for n in lo..=hi {
        let mk = uniform_makespan(w, n, c, lambda)?;
        if best.as_ref().is_none_or(|(_, b)| mk < *b) {
            best = Some((n, mk));
        }
    }
    Ok(best.expect("nonempty scan"))
}

/// Simulates the fault-prone execution of a save schedule; returns the
/// realized makespan. Faults are sampled from `Exp(λ)` per attempt
/// (memorylessness makes per-attempt sampling exact).
pub fn simulate_makespan(
    intervals: &[f64],
    c: f64,
    lambda: f64,
    rng: &mut impl Rng,
) -> Result<f64> {
    if intervals.is_empty() {
        return Err(SavesError::BadParameter("need at least one interval"));
    }
    check(intervals.iter().sum(), c, lambda)?;
    let mut clock = 0.0f64;
    for &s in intervals {
        let v = s + c;
        loop {
            let u = rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15);
            let fault_in = -u.ln() / lambda;
            if fault_in >= v {
                // Window survived: work durable.
                clock += v;
                break;
            }
            // Fault mid-window: lose the attempt.
            clock += fault_in;
        }
    }
    Ok(clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_numeric::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_guards() {
        assert!(expected_makespan(&[], 1.0, 0.1).is_err());
        assert!(expected_makespan(&[0.0], 1.0, 0.1).is_err());
        assert!(expected_makespan(&[1.0], -1.0, 0.1).is_err());
        assert!(expected_makespan(&[1.0], 1.0, 0.0).is_err());
        assert!(uniform_makespan(10.0, 0, 1.0, 0.1).is_err());
        assert!(optimal_interval(1.0, -0.5).is_err());
        assert!(guideline_interval(1.0, f64::NAN).is_err());
    }

    #[test]
    fn interval_time_limits() {
        // λv -> 0: E ≈ v (almost never faults).
        let e = expected_interval_time(1.0, 0.1, 1e-6);
        assert!(approx_eq(e, 1.1, 1e-4), "e = {e}");
        // Larger windows cost superlinearly more.
        let e1 = expected_interval_time(5.0, 1.0, 0.2);
        let e2 = expected_interval_time(10.0, 1.0, 0.2);
        assert!(e2 > 2.0 * e1);
    }

    #[test]
    fn young_matches_exact_for_small_rates() {
        // λc << 1: Young's sqrt(2c/λ) approximates the exact optimum.
        let c = 0.01;
        let lambda = 0.001;
        let exact = optimal_interval(c, lambda).unwrap();
        let young = young_interval(c, lambda);
        assert!(
            (exact - young).abs() / young < 0.15,
            "exact {exact} vs young {young}"
        );
    }

    #[test]
    fn young_overestimates_for_large_rates() {
        // Outside its validity regime Young's formula is noticeably off;
        // the exact optimum is smaller.
        let c = 1.0;
        let lambda = 0.5;
        let exact = optimal_interval(c, lambda).unwrap();
        let young = young_interval(c, lambda);
        assert!(exact < young, "exact {exact} vs young {young}");
    }

    #[test]
    fn optimal_interval_is_stationary() {
        let c = 0.5;
        let lambda = 0.1;
        let s = optimal_interval(c, lambda).unwrap();
        let rate = |x: f64| expected_interval_time(x, c, lambda) / x;
        assert!(rate(s) <= rate(s * 0.9) + 1e-12);
        assert!(rate(s) <= rate(s * 1.1) + 1e-12);
        // First-order condition e^{-λ(s+c)} = 1 - λs.
        let resid = (-lambda * (s + c)).exp() - (1.0 - lambda * s);
        assert!(resid.abs() < 1e-6, "FOC residual {resid}");
    }

    #[test]
    fn guideline_interval_close_to_makespan_optimal() {
        // The transplanted cycle-stealing period optimizes a different
        // functional but lands in the same neighbourhood: within ~35% of
        // the makespan optimum across regimes, and the makespan penalty is
        // small (measured precisely in exp_saves).
        for &(c, lambda) in &[(0.5, 0.1), (1.0, 0.05), (0.1, 0.5)] {
            let g = guideline_interval(c, lambda).unwrap();
            let o = optimal_interval(c, lambda).unwrap();
            assert!(
                (g - o).abs() / o < 0.6,
                "c={c}, λ={lambda}: guideline {g} vs optimal {o}"
            );
            // Makespan penalty of using the guideline interval.
            let rate_g = expected_interval_time(g, c, lambda) / g;
            let rate_o = expected_interval_time(o, c, lambda) / o;
            assert!(rate_g / rate_o < 1.10, "penalty {}", rate_g / rate_o);
        }
    }

    #[test]
    fn optimal_schedule_beats_neighbours() {
        let w = 100.0;
        let c = 0.5;
        let lambda = 0.05;
        let (n, mk) = optimal_schedule(w, c, lambda).unwrap();
        assert!(n >= 1);
        for m in [n.saturating_sub(1).max(1), n + 1] {
            if m != n {
                assert!(mk <= uniform_makespan(w, m, c, lambda).unwrap() + 1e-9);
            }
        }
        // And beats no-checkpointing for a long job.
        assert!(mk < uniform_makespan(w, 1, c, lambda).unwrap());
    }

    #[test]
    fn simulation_matches_expectation() {
        let intervals = vec![4.0; 10];
        let c = 0.5;
        let lambda = 0.08;
        let analytic = expected_makespan(&intervals, c, lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 20_000;
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        for _ in 0..trials {
            let mk = simulate_makespan(&intervals, c, lambda, &mut rng).unwrap();
            acc += mk;
            acc2 += mk * mk;
        }
        let mean = acc / trials as f64;
        let var = acc2 / trials as f64 - mean * mean;
        let se = (var / trials as f64).sqrt();
        assert!(
            (mean - analytic).abs() < 4.0 * se + 1e-9,
            "sim {mean} vs analytic {analytic} (se {se})"
        );
    }

    #[test]
    fn makespan_monotone_in_fault_rate() {
        let intervals = vec![5.0; 4];
        let a = expected_makespan(&intervals, 0.5, 0.01).unwrap();
        let b = expected_makespan(&intervals, 0.5, 0.1).unwrap();
        assert!(b > a);
    }
}
