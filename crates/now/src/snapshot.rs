//! Periodic state snapshots: O(snapshot-interval) crash recovery and
//! time-travel forking for journaled farm runs.
//!
//! PR 5's recovery is *redo replay*: re-run the seeded engine from virtual
//! time zero and verify every regenerated event against the journal —
//! O(run length). This module captures the farm's **complete** mid-run
//! state between two queue events, so [`crate::journal`]'s resume can skip
//! straight to the last snapshot and replay only the tail: the re-execution
//! cost becomes O(snapshot interval), independent of how long the run had
//! been going (ROADMAP item 5's blocker for mega-scale farms).
//!
//! # What a snapshot holds
//!
//! Everything the steppable farm engine (`FarmRun`) owns that is not
//! derivable from the
//! configuration: the master RNG stream and every per-workstation fault
//! stream (raw xoshiro256** state words), the pending-event queue, the
//! task bag's raw parts, the lease table, the banked-id set, and each
//! workstation's episode/lease/quarantine/backoff/crash cursors and stats.
//! Policies are rebuilt from the [`FarmConfig`] and re-hydrated through
//! [`cs_sim::policy::ChunkPolicy::save_state`] (the paper's three policies
//! are stateless; the hook covers stateful ones like replayed schedules).
//! Floats are serialized as `f64::to_bits` hex, so restore is bitwise — a
//! resumed run continues the exact event/RNG trajectory of the original.
//!
//! # Format, versioning, integrity
//!
//! The sidecar (`<journal>.snap`, see [`default_snapshot_path`]) is a
//! line-oriented text file opening with the version banner
//! `cs-now-snapshot v1` and closing with an FNV-1a 64 checksum of the
//! preceding bytes. A `journal` line binds the snapshot to a committed
//! journal prefix: record count plus a running FNV-1a hash of those
//! records' bytes, verified at load so a snapshot can never be applied to
//! a journal it does not describe. Any failure — unknown version, parse
//! error, checksum or binding mismatch, foreign farm — is a typed
//! [`SnapshotError`], and resume degrades gracefully to full redo replay
//! (reported as [`SnapshotOutcome::Fallback`], never a wrong answer).
//!
//! Snapshots are written atomically (temp file + rename) on the same
//! `cs_saves::guideline_interval` cadence as the fsync policy — the paper's
//! §4.2 Remark prices state saves exactly like cycle-stealing chunks, and
//! both durability knobs take its answer.
//!
//! # Time travel
//!
//! A snapshot is also a fork point: [`Farm::fork_from_snapshot`] restores
//! the state under a *perturbed* configuration (typically a different
//! [`crate::FaultPlan`]) and plays the rest of the run as a what-if, while
//! [`Farm::replay_to`] in [`crate::journal`] reconstructs the state at any
//! record for inspection.

use crate::equeue::EventQueue;
use crate::farm::{
    BankedSet, Engine, Event, EventKind, Farm, FarmConfig, FarmReport, FarmRun, Lease, LeaseTable,
    WorkstationState, WorkstationStats, WsTable,
};
use cs_obs::vfs::{StdVfs, Vfs};
use cs_obs::{NoopSink, SpanId, SpanProfiler};
use cs_tasks::{Chunk, Task, TaskBag, TaskBagState};
use rand::rngs::StdRng;
use std::fmt;
use std::path::{Path, PathBuf};

/// Version banner every snapshot opens with; restore refuses others.
pub const SNAPSHOT_VERSION: &str = "cs-now-snapshot v1";

/// FNV-1a 64 offset basis — the hash of the empty byte string.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends a running FNV-1a 64 hash with `bytes`. Seed with
/// [`FNV_OFFSET`].
pub(crate) fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The sidecar path for a journal: `<journal>.snap` next to the journal
/// file.
pub fn default_snapshot_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_os_string();
    name.push(".snap");
    PathBuf::from(name)
}

/// The sidecar path of ring generation `g`: `<journal>.snap.<g>`. A
/// snapshot ring of size N cycles generations `0..N`; ring size 1 uses
/// the legacy un-numbered [`default_snapshot_path`].
pub fn ring_snapshot_path(journal: &Path, generation: u32) -> PathBuf {
    let mut name = journal.as_os_str().to_os_string();
    name.push(format!(".snap.{generation}"));
    PathBuf::from(name)
}

/// The segment-metadata path for a journal: `<journal>.seg`. Present only
/// after journal-prefix GC has rotated the journal into a segment; records
/// how many records were truncated and the running hash at the cut.
pub fn segment_meta_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_os_string();
    name.push(".seg");
    PathBuf::from(name)
}

/// The temp path a given sidecar/segment file is staged at before its
/// atomic rename (`<path>.tmp`).
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Why a snapshot could not be written, read or applied. Resume treats
/// every variant as a *soft* failure: it logs the typed reason and falls
/// back to full redo replay (see [`SnapshotOutcome::Fallback`]).
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the sidecar failed.
    Io(std::io::Error),
    /// The file does not open with [`SNAPSHOT_VERSION`].
    Version {
        /// The banner actually found (truncated for display).
        found: String,
    },
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        reason: String,
    },
    /// The trailing FNV-1a checksum does not match the body.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The snapshot describes a different farm (seed, workstation count or
    /// task count disagree with the resuming configuration).
    FarmMismatch {
        /// Which field disagreed.
        reason: String,
    },
    /// The snapshot binds to more journal records than the journal holds —
    /// the journal was truncated behind the snapshot's back (e.g. a crash
    /// discarded fsync-pending records the snapshot had already seen).
    JournalAhead {
        /// Records the snapshot binds to.
        snapshot_records: u64,
        /// Committed records actually in the journal.
        journal_records: u64,
    },
    /// The journal prefix the snapshot binds to hashes differently — the
    /// sidecar belongs to some other journal with the same length.
    JournalMismatch {
        /// Length of the mismatching prefix.
        records: u64,
    },
}

/// [`SnapshotError`] collapsed to a `Copy` discriminant, carried in
/// [`SnapshotOutcome::Fallback`] so [`crate::RecoveryInfo`] stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotErrorKind {
    /// Sidecar I/O failed.
    Io,
    /// Unknown version banner.
    Version,
    /// Parse failure.
    Malformed,
    /// Body checksum mismatch.
    Checksum,
    /// Snapshot belongs to a different farm.
    FarmMismatch,
    /// Snapshot ahead of the (truncated) journal.
    JournalAhead,
    /// Journal-prefix hash mismatch.
    JournalMismatch,
}

impl SnapshotError {
    /// The `Copy` discriminant of this error.
    pub fn kind(&self) -> SnapshotErrorKind {
        match self {
            SnapshotError::Io(_) => SnapshotErrorKind::Io,
            SnapshotError::Version { .. } => SnapshotErrorKind::Version,
            SnapshotError::Malformed { .. } => SnapshotErrorKind::Malformed,
            SnapshotError::Checksum { .. } => SnapshotErrorKind::Checksum,
            SnapshotError::FarmMismatch { .. } => SnapshotErrorKind::FarmMismatch,
            SnapshotError::JournalAhead { .. } => SnapshotErrorKind::JournalAhead,
            SnapshotError::JournalMismatch { .. } => SnapshotErrorKind::JournalMismatch,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Version { found } => write!(
                f,
                "unknown snapshot version: expected {SNAPSHOT_VERSION:?}, found {found:?}"
            ),
            SnapshotError::Malformed { line, reason } => {
                write!(f, "malformed snapshot at line {line}: {reason}")
            }
            SnapshotError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch: recorded {expected:016x}, body hashes to {found:016x}"
            ),
            SnapshotError::FarmMismatch { reason } => {
                write!(f, "snapshot belongs to a different farm: {reason}")
            }
            SnapshotError::JournalAhead {
                snapshot_records,
                journal_records,
            } => write!(
                f,
                "snapshot binds to {snapshot_records} journal records but the journal holds only \
                 {journal_records}"
            ),
            SnapshotError::JournalMismatch { records } => write!(
                f,
                "snapshot does not bind to this journal: the {records}-record prefix hashes \
                 differently"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl fmt::Display for SnapshotErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SnapshotErrorKind::Io => "io",
            SnapshotErrorKind::Version => "version",
            SnapshotErrorKind::Malformed => "malformed",
            SnapshotErrorKind::Checksum => "checksum",
            SnapshotErrorKind::FarmMismatch => "farm-mismatch",
            SnapshotErrorKind::JournalAhead => "journal-ahead",
            SnapshotErrorKind::JournalMismatch => "journal-mismatch",
        };
        f.write_str(s)
    }
}

/// How [`Farm::resume`] used (or failed to use) the snapshot sidecar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SnapshotOutcome {
    /// No sidecar was present: recovery was full redo replay.
    #[default]
    None,
    /// The snapshot restored cleanly; this many committed records were
    /// skipped instead of re-executed.
    Used {
        /// Journal records covered by the snapshot (not replayed).
        records_skipped: u64,
    },
    /// A sidecar was present but rejected for the given reason; recovery
    /// fell back to full redo replay. The run still finishes bitwise-exact.
    Fallback(SnapshotErrorKind),
}

/// Summary of a snapshot sidecar: the farm it belongs to and where in the
/// run it was taken. Returned by [`inspect_snapshot`] and
/// [`Farm::fork_from_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    /// Seed of the snapshotted run.
    pub seed: u64,
    /// Workstation count.
    pub workstations: u64,
    /// Initial task count.
    pub tasks: u64,
    /// Committed journal records the snapshot covers.
    pub journal_records: u64,
    /// Virtual time of the last event handled before the snapshot.
    pub virtual_time: f64,
}

/// Reads and validates (version, parse, checksum) a sidecar, returning its
/// metadata without restoring anything.
pub fn inspect_snapshot(path: impl AsRef<Path>) -> Result<SnapshotMeta, SnapshotError> {
    let text = std::fs::read_to_string(path)?;
    let snap = FarmSnapshot::decode(&text)?;
    Ok(snap.meta())
}

// ---------------------------------------------------------------------------
// The structured snapshot
// ---------------------------------------------------------------------------

/// One serialized queue event.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: f64,
    /// 0 = Arrival(id), 1 = LeaseExpiry(id), 2 = Dispatch(ws) — the same
    /// ranks the queue's tie-break uses.
    tag: u8,
    id: u64,
}

/// One serialized lease-table entry.
#[derive(Debug, Clone)]
struct LeaseSnap {
    lease: u64,
    ws: u64,
    expiry: f64,
    arrives: bool,
    expired: bool,
    replicas: u32,
    tasks: Vec<Task>,
}

/// One serialized workstation: cursors, fault stream, policy state, stats.
#[derive(Debug, Clone)]
struct WsSnap {
    episode_start: f64,
    reclaim_at: f64,
    crash_at: f64,
    quarantined_until: f64,
    fault_rng: [u64; 4],
    crashed: bool,
    fail_streak: u32,
    backoff_pending: bool,
    policy_state: Vec<u8>,
    stats: WorkstationStats,
}

/// The complete captured state of a [`FarmRun`] between two queue events,
/// in the [aero `virtual_time`] `save_state`/`restore_state` shape: a plain
/// data struct the engine can be rebuilt from.
///
/// [aero `virtual_time`]: https://github.com/wilsonzlin/aero
#[derive(Debug, Clone)]
pub(crate) struct FarmSnapshot {
    pub(crate) seed: u64,
    pub(crate) workstations: u64,
    pub(crate) tasks: u64,
    /// Committed journal records this snapshot covers.
    pub(crate) journal_records: u64,
    /// FNV-1a 64 over those records' bytes (each line plus `\n`).
    pub(crate) journal_hash: u64,
    /// Virtual time of the last handled event.
    pub(crate) now: f64,
    rng: [u64; 4],
    makespan: f64,
    next_lease: u64,
    bag: TaskBagState,
    banked: Vec<u64>,
    queue: Vec<QueuedEvent>,
    leases: Vec<LeaseSnap>,
    ws: Vec<WsSnap>,
}

impl FarmSnapshot {
    pub(crate) fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            seed: self.seed,
            workstations: self.workstations,
            tasks: self.tasks,
            journal_records: self.journal_records,
            virtual_time: self.now,
        }
    }
}

impl FarmRun {
    /// Captures the run's complete state, bound to the journal prefix of
    /// `journal_records` records hashing to `journal_hash`.
    pub(crate) fn save_state(&self, journal_records: u64, journal_hash: u64) -> FarmSnapshot {
        // The heap serializes as its ascending pop order. The event order
        // is total and ties are content-identical, so rebuilding a heap
        // from this list pops the exact same event sequence.
        let mut queue: Vec<QueuedEvent> = self
            .eng
            .queue
            .iter()
            .map(|e| {
                let (tag, id) = e.kind.rank();
                QueuedEvent {
                    time: e.time,
                    tag,
                    id,
                }
            })
            .collect();
        queue.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then_with(|| (a.tag, a.id).cmp(&(b.tag, b.id)))
        });
        // The banked set iterates ascending already, which keeps identical
        // states producing identical bytes (it is only ever
        // membership-tested at runtime).
        let banked: Vec<u64> = self.eng.banked.iter().collect();
        let leases = self
            .eng
            .in_flight
            .iter()
            .map(|(lease, l)| LeaseSnap {
                lease,
                ws: l.ws as u64,
                expiry: l.expiry,
                arrives: l.arrives,
                expired: l.expired,
                replicas: l.replicas,
                tasks: l.chunk.tasks().to_vec(),
            })
            .collect();
        let ws = (0..self.states.len())
            .map(|i| WsSnap {
                episode_start: self.states.episode_start[i],
                reclaim_at: self.states.reclaim_at[i],
                crash_at: self.states.crash_at[i],
                quarantined_until: self.states.quarantined_until[i],
                fault_rng: self.states.fault_rng[i].state(),
                crashed: self.states.crashed[i],
                fail_streak: self.states.fail_streak[i],
                backoff_pending: self.states.backoff_pending[i],
                policy_state: self.states.policy[i].save_state(),
                stats: self.states.stats[i],
            })
            .collect();
        FarmSnapshot {
            seed: self.config.seed,
            workstations: self.config.workstations.len() as u64,
            tasks: self.initial_tasks as u64,
            journal_records,
            journal_hash,
            now: self.now,
            rng: self.eng.rng.state(),
            makespan: self.eng.makespan,
            next_lease: self.eng.in_flight.next_id(),
            bag: self.eng.bag.save_state(),
            banked,
            queue,
            leases,
            ws,
        }
    }
}

impl FarmSnapshot {
    /// Rebuilds a paused [`FarmRun`] under `config`. The configuration must
    /// describe the same farm *shape* (workstation count); everything else
    /// — including the fault plans, for what-if forking — is taken from
    /// `config`, while all captured state comes from the snapshot.
    pub(crate) fn restore(self, config: FarmConfig) -> Result<FarmRun, SnapshotError> {
        config.validate().map_err(|e| SnapshotError::FarmMismatch {
            reason: format!("restore configuration is invalid: {e}"),
        })?;
        if config.workstations.len() as u64 != self.workstations {
            return Err(SnapshotError::FarmMismatch {
                reason: format!(
                    "snapshot has {} workstations, configuration has {}",
                    self.workstations,
                    config.workstations.len()
                ),
            });
        }
        let mut storms = config.storms.clone();
        storms.sort_by(f64::total_cmp);
        let queue: EventQueue = self
            .queue
            .into_iter()
            .map(|q| {
                let kind = match q.tag {
                    0 => EventKind::Arrival(q.id),
                    1 => EventKind::LeaseExpiry(q.id),
                    _ => EventKind::Dispatch(q.id as usize),
                };
                Event { time: q.time, kind }
            })
            .collect();
        // Tombstones first so already-retired lease ids stay retired, then
        // place each live lease back at its captured id.
        let mut in_flight = LeaseTable::with_tombstones(self.next_lease);
        for l in self.leases {
            in_flight.place(
                l.lease,
                Lease {
                    ws: l.ws as usize,
                    chunk: Chunk::from_tasks(l.tasks),
                    expiry: l.expiry,
                    arrives: l.arrives,
                    expired: l.expired,
                    replicas: l.replicas,
                },
            );
        }
        let mut banked = BankedSet::with_bits(self.tasks);
        for id in self.banked {
            banked.insert(id);
        }
        let eng = Engine {
            bag: TaskBag::restore_state(self.bag),
            queue,
            rng: StdRng::from_state(self.rng),
            storms,
            in_flight,
            banked,
            makespan: self.makespan,
            free_bufs: Vec::new(),
        };
        let mut caches = cs_scenarios::PolicyCaches::new();
        let mut states = WsTable::with_capacity(self.ws.len());
        for (w, wc) in self.ws.into_iter().zip(&config.workstations) {
            let mut policy = wc
                .policy
                .build_shared(wc.believed.clone(), wc.c, &mut caches);
            policy.restore_state(&w.policy_state);
            states.push(WorkstationState {
                policy,
                episode_start: w.episode_start,
                reclaim_at: w.reclaim_at,
                fault_rng: StdRng::from_state(w.fault_rng),
                crash_at: w.crash_at,
                crashed: w.crashed,
                fail_streak: w.fail_streak,
                backoff_pending: w.backoff_pending,
                quarantined_until: w.quarantined_until,
                stats: w.stats,
            });
        }
        Ok(FarmRun {
            initial_tasks: self.tasks as usize,
            config,
            eng,
            states,
            now: self.now,
            root_span: SpanId::NONE,
        })
    }

    // -- text encoding ------------------------------------------------------

    /// Serializes to the versioned, checksummed line format.
    pub(crate) fn encode(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(SNAPSHOT_VERSION);
        s.push('\n');
        s.push_str(&format!(
            "meta seed {} workstations {} tasks {}\n",
            self.seed, self.workstations, self.tasks
        ));
        s.push_str(&format!(
            "journal records {} hash {:016x}\n",
            self.journal_records, self.journal_hash
        ));
        s.push_str(&format!(
            "clock now {} makespan {}\n",
            fx(self.now),
            fx(self.makespan)
        ));
        let r = self.rng;
        s.push_str(&format!(
            "rng {:016x} {:016x} {:016x} {:016x}\n",
            r[0], r[1], r[2], r[3]
        ));
        s.push_str(&format!(
            "bag next_id {} completed_tasks {} completed_work {} lost_work {} pending {}\n",
            self.bag.next_id,
            self.bag.completed_tasks,
            fx(self.bag.completed_work),
            fx(self.bag.lost_work),
            self.bag.pending.len()
        ));
        for t in &self.bag.pending {
            s.push_str(&format!("task {} {}\n", t.id, fx(t.duration)));
        }
        s.push_str(&format!("banked {}\n", self.banked.len()));
        for chunk in self.banked.chunks(64) {
            s.push_str("ids");
            for id in chunk {
                s.push_str(&format!(" {id}"));
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "queue {} next_lease {}\n",
            self.queue.len(),
            self.next_lease
        ));
        for q in &self.queue {
            s.push_str(&format!("event {} {} {}\n", fx(q.time), q.tag, q.id));
        }
        s.push_str(&format!("leases {}\n", self.leases.len()));
        for l in &self.leases {
            s.push_str(&format!(
                "lease {} ws {} expiry {} arrives {} expired {} replicas {} tasks {}",
                l.lease,
                l.ws,
                fx(l.expiry),
                u8::from(l.arrives),
                u8::from(l.expired),
                l.replicas,
                l.tasks.len()
            ));
            for t in &l.tasks {
                s.push_str(&format!(" {}:{}", t.id, fx(t.duration)));
            }
            s.push('\n');
        }
        for (i, w) in self.ws.iter().enumerate() {
            let f = w.fault_rng;
            s.push_str(&format!(
                "ws {i} episode_start {} reclaim_at {} crash_at {} quarantined_until {} \
                 crashed {} fail_streak {} backoff {} frng {:016x} {:016x} {:016x} {:016x} \
                 policy {}\n",
                fx(w.episode_start),
                fx(w.reclaim_at),
                fx(w.crash_at),
                fx(w.quarantined_until),
                u8::from(w.crashed),
                w.fail_streak,
                u8::from(w.backoff_pending),
                f[0],
                f[1],
                f[2],
                f[3],
                hex(&w.policy_state)
            ));
            let st = &w.stats;
            s.push_str(&format!(
                "stats {i} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                fx(st.completed_work),
                fx(st.lost_work),
                fx(st.duplicate_work),
                st.chunks_completed,
                st.chunks_lost,
                st.episodes,
                st.idle_periods,
                st.messages_lost,
                st.straggled_chunks,
                st.crashes,
                st.storm_kills,
                st.lease_timeouts,
                st.backoff_delays,
                st.quarantines,
                st.replicas_dispatched,
                st.late_banks
            ));
        }
        let checksum = fnv1a64(FNV_OFFSET, s.as_bytes());
        s.push_str(&format!("checksum {checksum:016x}\n"));
        s
    }

    /// Parses and integrity-checks the line format.
    pub(crate) fn decode(text: &str) -> Result<Self, SnapshotError> {
        // Verify the trailing checksum over everything before its line.
        let body_end = match text.rfind("\nchecksum ") {
            Some(i) => i + 1,
            None => {
                return Err(SnapshotError::Malformed {
                    line: text.lines().count() as u64,
                    reason: "missing trailing checksum line".into(),
                })
            }
        };
        let checksum_line = text[body_end..].trim_end();
        let expected = checksum_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Malformed {
                line: text.lines().count() as u64,
                reason: "unparsable checksum line".into(),
            })?;
        let found = fnv1a64(FNV_OFFSET, &text.as_bytes()[..body_end]);
        if expected != found {
            return Err(SnapshotError::Checksum { expected, found });
        }

        let mut cur = Cursor::new(&text[..body_end]);
        let banner = cur.next()?;
        if banner != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: banner.chars().take(40).collect(),
            });
        }
        let mut meta = cur.fields(&["meta seed", "workstations", "tasks"])?;
        let (seed, workstations, tasks) = (p_u64(&mut meta)?, p_u64(&mut meta)?, p_u64(&mut meta)?);
        let mut j = cur.fields(&["journal records", "hash"])?;
        let (journal_records, journal_hash) = (p_u64(&mut j)?, p_hex(&mut j)?);
        let mut clock = cur.fields(&["clock now", "makespan"])?;
        let (now, makespan) = (p_f64(&mut clock)?, p_f64(&mut clock)?);
        let rng = cur.rng_line("rng")?;
        let mut b = cur.fields(&[
            "bag next_id",
            "completed_tasks",
            "completed_work",
            "lost_work",
            "pending",
        ])?;
        let next_id = p_u64(&mut b)?;
        let completed_tasks = p_u64(&mut b)?;
        let completed_work = p_f64(&mut b)?;
        let lost_work = p_f64(&mut b)?;
        let n_pending = p_u64(&mut b)? as usize;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let mut t = cur.fields(&["task"])?;
            let id = p_u64(&mut t)?;
            let duration = p_f64(&mut t)?;
            pending.push(Task { id, duration });
        }
        let mut bk = cur.fields(&["banked"])?;
        let n_banked = p_u64(&mut bk)? as usize;
        let mut banked = Vec::with_capacity(n_banked);
        while banked.len() < n_banked {
            let line = cur.next()?;
            let rest = line
                .strip_prefix("ids")
                .ok_or_else(|| cur.malformed("expected ids line"))?;
            for tok in rest.split_ascii_whitespace() {
                banked.push(
                    tok.parse::<u64>()
                        .map_err(|_| cur.malformed("bad banked id"))?,
                );
            }
        }
        if banked.len() != n_banked {
            return Err(cur.malformed("banked id count mismatch"));
        }
        let mut q = cur.fields(&["queue", "next_lease"])?;
        let n_queue = p_u64(&mut q)? as usize;
        let next_lease = p_u64(&mut q)?;
        let mut queue = Vec::with_capacity(n_queue);
        for _ in 0..n_queue {
            let mut e = cur.fields(&["event"])?;
            let time = p_f64(&mut e)?;
            let tag = p_u64(&mut e)? as u8;
            let id = p_u64(&mut e)?;
            if tag > 2 {
                return Err(cur.malformed("event tag out of range"));
            }
            queue.push(QueuedEvent { time, tag, id });
        }
        let mut ls = cur.fields(&["leases"])?;
        let n_leases = p_u64(&mut ls)? as usize;
        let mut leases = Vec::with_capacity(n_leases);
        for _ in 0..n_leases {
            let mut l = cur.fields(&[
                "lease", "ws", "expiry", "arrives", "expired", "replicas", "tasks",
            ])?;
            let lease = p_u64(&mut l)?;
            let ws = p_u64(&mut l)?;
            let expiry = p_f64(&mut l)?;
            let arrives = p_bool(&mut l)?;
            let expired = p_bool(&mut l)?;
            let replicas = p_u64(&mut l)? as u32;
            let n_tasks = p_u64(&mut l)? as usize;
            let mut tasks = Vec::with_capacity(n_tasks);
            for _ in 0..n_tasks {
                let pair = l.next().ok_or_else(|| SnapshotError::Malformed {
                    line: 0,
                    reason: "lease task list shorter than its count".into(),
                })?;
                let (id, dur) = pair
                    .split_once(':')
                    .ok_or_else(|| SnapshotError::Malformed {
                        line: 0,
                        reason: "lease task not id:duration".into(),
                    })?;
                tasks.push(Task {
                    id: id.parse().map_err(|_| SnapshotError::Malformed {
                        line: 0,
                        reason: "bad lease task id".into(),
                    })?,
                    duration: parse_fx(dur).ok_or_else(|| SnapshotError::Malformed {
                        line: 0,
                        reason: "bad lease task duration".into(),
                    })?,
                });
            }
            leases.push(LeaseSnap {
                lease,
                ws,
                expiry,
                arrives,
                expired,
                replicas,
                tasks,
            });
        }
        let mut ws = Vec::with_capacity(workstations as usize);
        for i in 0..workstations {
            let mut w = cur.fields(&[
                "ws",
                "episode_start",
                "reclaim_at",
                "crash_at",
                "quarantined_until",
                "crashed",
                "fail_streak",
                "backoff",
                "frng",
            ])?;
            let idx = p_u64(&mut w)?;
            if idx != i {
                return Err(cur.malformed("workstation lines out of order"));
            }
            let episode_start = p_f64(&mut w)?;
            let reclaim_at = p_f64(&mut w)?;
            let crash_at = p_f64(&mut w)?;
            let quarantined_until = p_f64(&mut w)?;
            let crashed = p_bool(&mut w)?;
            let fail_streak = p_u64(&mut w)? as u32;
            let backoff_pending = p_bool(&mut w)?;
            let fault_rng = [
                p_hex(&mut w)?,
                p_hex(&mut w)?,
                p_hex(&mut w)?,
                p_hex(&mut w)?,
            ];
            let policy_tok = match w.next() {
                Some("policy") => w.next().unwrap_or("-"),
                _ => return Err(cur.malformed("missing policy field")),
            };
            let policy_state = unhex(policy_tok).ok_or_else(|| cur.malformed("bad policy hex"))?;
            let mut st = cur.fields(&["stats"])?;
            let sidx = p_u64(&mut st)?;
            if sidx != i {
                return Err(cur.malformed("stats lines out of order"));
            }
            let stats = WorkstationStats {
                completed_work: p_f64(&mut st)?,
                lost_work: p_f64(&mut st)?,
                duplicate_work: p_f64(&mut st)?,
                chunks_completed: p_u64(&mut st)?,
                chunks_lost: p_u64(&mut st)?,
                episodes: p_u64(&mut st)?,
                idle_periods: p_u64(&mut st)?,
                messages_lost: p_u64(&mut st)?,
                straggled_chunks: p_u64(&mut st)?,
                crashes: p_u64(&mut st)?,
                storm_kills: p_u64(&mut st)?,
                lease_timeouts: p_u64(&mut st)?,
                backoff_delays: p_u64(&mut st)?,
                quarantines: p_u64(&mut st)?,
                replicas_dispatched: p_u64(&mut st)?,
                late_banks: p_u64(&mut st)?,
            };
            ws.push(WsSnap {
                episode_start,
                reclaim_at,
                crash_at,
                quarantined_until,
                fault_rng,
                crashed,
                fail_streak,
                backoff_pending,
                policy_state,
                stats,
            });
        }
        Ok(FarmSnapshot {
            seed,
            workstations,
            tasks,
            journal_records,
            journal_hash,
            now,
            rng,
            makespan,
            next_lease,
            bag: TaskBagState {
                pending,
                next_id,
                completed_tasks,
                completed_work,
                lost_work,
            },
            banked,
            queue,
            leases,
            ws,
        })
    }

    /// Writes the snapshot atomically: temp file in the same directory,
    /// fsync, rename over the destination. A crash mid-write leaves either
    /// the old snapshot or the new one, never a torn file.
    #[cfg(test)]
    pub(crate) fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        self.write_atomic_with(&StdVfs, path)
    }

    /// Writes the snapshot atomically (temp file, fsync, rename) through
    /// an injectable [`Vfs`]; every write, fsync and rename error surfaces
    /// as a typed [`SnapshotError::Io`].
    pub(crate) fn write_atomic_with(
        &self,
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<(), SnapshotError> {
        write_atomic_bytes(vfs, path, self.encode().as_bytes())
    }

    /// Reads and fully validates a sidecar file.
    pub(crate) fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::load_with(&StdVfs, path)
    }

    /// [`FarmSnapshot::load`] through an injectable [`Vfs`].
    pub(crate) fn load_with(vfs: &dyn Vfs, path: &Path) -> Result<Self, SnapshotError> {
        let bytes = vfs.read(path)?;
        let text = String::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            line: 0,
            reason: "snapshot is not UTF-8".into(),
        })?;
        Self::decode(&text)
    }
}

/// Stages `bytes` at `<path>.tmp`, fsyncs, then renames over `path`. The
/// shared atomic-publish primitive for snapshot sidecars and segment
/// metadata.
pub(crate) fn write_atomic_bytes(
    vfs: &dyn Vfs,
    path: &Path,
    bytes: &[u8],
) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    vfs.rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Segment metadata: the journal's GC cut point
// ---------------------------------------------------------------------------

/// Version banner of the segment-metadata sidecar.
pub const SEGMENT_VERSION: &str = "cs-now-segment v1";

/// Where a GC'd journal *segment* starts in the full record stream.
///
/// After journal-prefix GC the journal file no longer begins at record 1:
/// the records a retained snapshot makes redundant have been truncated,
/// and this tiny checksummed sidecar (`<journal>.seg`, see
/// [`segment_meta_path`]) records the cut — how many records were
/// dropped, the running journal FNV hash at the cut (so ring generations
/// still bind by hash extension), and the hash of the segment's first
/// surviving record line (so a stale sidecar from a crash between the two
/// GC renames is *detected*, never silently trusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Records truncated before the segment (the absolute index of the
    /// segment's first record).
    pub base_records: u64,
    /// Running FNV-1a 64 journal hash over the truncated prefix (each
    /// record line plus `\n`), i.e. the hash a snapshot at the cut binds
    /// to.
    pub base_hash: u64,
    /// FNV-1a 64 (from the standard offset basis) of the segment's first
    /// record line plus `\n`, or `None` when the segment was empty at the
    /// cut.
    pub first_record_hash: Option<u64>,
}

impl SegmentMeta {
    /// Serializes to the versioned, checksummed line format.
    pub(crate) fn encode(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(SEGMENT_VERSION);
        s.push('\n');
        s.push_str(&format!(
            "base records {} hash {:016x}\n",
            self.base_records, self.base_hash
        ));
        match self.first_record_hash {
            Some(h) => s.push_str(&format!("first {h:016x}\n")),
            None => s.push_str("first -\n"),
        }
        let checksum = fnv1a64(FNV_OFFSET, s.as_bytes());
        s.push_str(&format!("checksum {checksum:016x}\n"));
        s
    }

    /// Parses and integrity-checks the line format.
    pub(crate) fn decode(text: &str) -> Result<Self, SnapshotError> {
        let body_end = match text.rfind("\nchecksum ") {
            Some(i) => i + 1,
            None => {
                return Err(SnapshotError::Malformed {
                    line: text.lines().count() as u64,
                    reason: "missing trailing checksum line".into(),
                })
            }
        };
        let expected = text[body_end..]
            .trim_end()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Malformed {
                line: text.lines().count() as u64,
                reason: "unparsable checksum line".into(),
            })?;
        let found = fnv1a64(FNV_OFFSET, &text.as_bytes()[..body_end]);
        if expected != found {
            return Err(SnapshotError::Checksum { expected, found });
        }
        let mut cur = Cursor::new(&text[..body_end]);
        let banner = cur.next()?;
        if banner != SEGMENT_VERSION {
            return Err(SnapshotError::Version {
                found: banner.chars().take(40).collect(),
            });
        }
        let mut b = cur.fields(&["base records", "hash"])?;
        let (base_records, base_hash) = (p_u64(&mut b)?, p_hex(&mut b)?);
        let first_line = cur.next()?;
        let first_tok = first_line
            .strip_prefix("first ")
            .ok_or_else(|| cur.malformed("expected a \"first\" line"))?;
        let first_record_hash = match first_tok.trim() {
            "-" => None,
            h => Some(
                u64::from_str_radix(h, 16).map_err(|_| cur.malformed("bad first-record hash"))?,
            ),
        };
        Ok(SegmentMeta {
            base_records,
            base_hash,
            first_record_hash,
        })
    }

    /// Atomically publishes the metadata at `path`.
    pub(crate) fn store(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), SnapshotError> {
        write_atomic_bytes(vfs, path, self.encode().as_bytes())
    }

    /// Loads and validates the metadata at `path`.
    pub(crate) fn load(vfs: &dyn Vfs, path: &Path) -> Result<Self, SnapshotError> {
        let bytes = vfs.read(path)?;
        let text = String::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            line: 0,
            reason: "segment metadata is not UTF-8".into(),
        })?;
        Self::decode(&text)
    }

    /// True when `record` (the segment's actual first line, without the
    /// newline) matches the recorded first-record hash — the staleness
    /// check that detects a crash between the journal rename and the
    /// metadata rename.
    pub(crate) fn matches_first(&self, record: Option<&str>) -> bool {
        match (self.first_record_hash, record) {
            (None, None) => true,
            (Some(expected), Some(line)) => {
                let h = fnv1a64(fnv1a64(FNV_OFFSET, line.as_bytes()), b"\n");
                h == expected
            }
            _ => false,
        }
    }

    /// Builds the metadata for a cut at `base_records`/`base_hash` with
    /// the given first surviving record line (if any).
    pub(crate) fn for_cut(base_records: u64, base_hash: u64, first_record: Option<&str>) -> Self {
        SegmentMeta {
            base_records,
            base_hash,
            first_record_hash: first_record
                .map(|line| fnv1a64(fnv1a64(FNV_OFFSET, line.as_bytes()), b"\n")),
        }
    }
}

impl Farm {
    /// Time-travel forking: restores the snapshot at `snap_path` under
    /// `config` — the original scenario, or one with a **perturbed**
    /// [`crate::FaultPlan`] — and plays the rest of the run to completion as
    /// a what-if. With the original configuration the returned report is
    /// bitwise identical to the run the snapshot was taken from; with a
    /// perturbed one it answers "how would the rest of this very run have
    /// gone under different faults?" from the exact captured state (bag,
    /// leases, RNG cursors and all).
    ///
    /// The farm *shape* must match (workstation count, and the same
    /// believed life functions if reports are to be comparable); seed and
    /// fault plans are free to differ. Nothing is journaled.
    pub fn fork_from_snapshot(
        config: FarmConfig,
        snap_path: impl AsRef<Path>,
    ) -> Result<(FarmReport, SnapshotMeta), SnapshotError> {
        let snap = FarmSnapshot::load(snap_path.as_ref())?;
        let meta = snap.meta();
        let mut run = snap.restore(config)?;
        let mut sink = NoopSink;
        let mut prof = SpanProfiler::disabled();
        while run.step(&mut sink, &mut prof) {}
        Ok((run.finish(&mut sink, &mut prof), meta))
    }
}

// -- encode/decode helpers ---------------------------------------------------

/// Bitwise-exact float serialization: `f64::to_bits` as fixed-width hex.
fn fx(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_fx(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".into();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Line cursor with 1-based position tracking for typed parse errors.
struct Cursor<'a> {
    lines: std::str::Lines<'a>,
    line_no: u64,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines(),
            line_no: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, SnapshotError> {
        self.line_no += 1;
        self.lines.next().ok_or(SnapshotError::Malformed {
            line: self.line_no,
            reason: "unexpected end of snapshot".into(),
        })
    }

    fn malformed(&self, reason: &str) -> SnapshotError {
        SnapshotError::Malformed {
            line: self.line_no,
            reason: reason.into(),
        }
    }

    /// Reads the next line, checks it starts with `keys[0]` and strips all
    /// key tokens, returning an iterator over the value tokens.
    fn fields(&mut self, keys: &[&str]) -> Result<std::vec::IntoIter<&'a str>, SnapshotError> {
        let line = self.next()?;
        let lead = keys[0];
        let rest = line
            .strip_prefix(lead)
            .ok_or_else(|| self.malformed(&format!("expected a {lead:?} line")))?;
        let mut toks: Vec<&str> = Vec::new();
        let keyset: std::collections::HashSet<&str> = keys
            .iter()
            .flat_map(|k| k.split_ascii_whitespace())
            .collect();
        for tok in rest.split_ascii_whitespace() {
            if keyset.contains(tok) {
                continue;
            }
            toks.push(tok);
        }
        Ok(toks.into_iter())
    }

    fn rng_line(&mut self, key: &str) -> Result<[u64; 4], SnapshotError> {
        let line = self.next()?;
        let rest = line
            .strip_prefix(key)
            .ok_or_else(|| self.malformed(&format!("expected a {key:?} line")))?;
        let words: Vec<u64> = rest
            .split_ascii_whitespace()
            .map(|w| u64::from_str_radix(w, 16))
            .collect::<Result<_, _>>()
            .map_err(|_| self.malformed("bad rng word"))?;
        <[u64; 4]>::try_from(words).map_err(|_| self.malformed("rng needs 4 words"))
    }
}

fn p_u64(it: &mut std::vec::IntoIter<&str>) -> Result<u64, SnapshotError> {
    it.next()
        .and_then(|t| t.parse().ok())
        .ok_or(SnapshotError::Malformed {
            line: 0,
            reason: "expected an integer field".into(),
        })
}

fn p_hex(it: &mut std::vec::IntoIter<&str>) -> Result<u64, SnapshotError> {
    it.next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or(SnapshotError::Malformed {
            line: 0,
            reason: "expected a hex field".into(),
        })
}

fn p_f64(it: &mut std::vec::IntoIter<&str>) -> Result<f64, SnapshotError> {
    it.next()
        .and_then(parse_fx)
        .ok_or(SnapshotError::Malformed {
            line: 0,
            reason: "expected a float-bits field".into(),
        })
}

fn p_bool(it: &mut std::vec::IntoIter<&str>) -> Result<bool, SnapshotError> {
    match it.next() {
        Some("0") => Ok(false),
        Some("1") => Ok(true),
        _ => Err(SnapshotError::Malformed {
            line: 0,
            reason: "expected a 0/1 field".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::{PolicySpec, WorkstationConfig};
    use crate::faults::FaultPlan;
    use cs_life::{ArcLife, Uniform};
    use cs_obs::MemorySink;
    use cs_tasks::workloads;
    use std::sync::Arc;

    fn config(seed: u64, intensity: f64) -> FarmConfig {
        let workstations = (0..3)
            .map(|i| {
                let life: ArcLife = Arc::new(Uniform::new(150.0 + 25.0 * (i % 3) as f64).unwrap());
                WorkstationConfig {
                    life: life.clone(),
                    believed: life,
                    c: 2.0,
                    policy: PolicySpec::FixedSize(18.0),
                    gap_mean: 8.0,
                    faults: FaultPlan::scaled(intensity),
                }
            })
            .collect();
        let mut config = FarmConfig::new(workstations, 1e6, seed);
        config.storms = vec![150.0, 400.0];
        config
    }

    fn bag() -> cs_tasks::TaskBag {
        workloads::uniform(90, 1.0).unwrap()
    }

    /// Steps a run `k` times, snapshots, and finishes both the original and
    /// the restored run side by side: both reports must be bitwise equal
    /// and both tails must emit identical events.
    #[test]
    fn mid_run_snapshot_restores_bitwise() {
        for k in [0usize, 1, 17, 100, 400] {
            let mut sink = MemorySink::new();
            let mut prof = SpanProfiler::disabled();
            let farm = Farm::new(config(11, 0.8), bag()).unwrap();
            let mut run = FarmRun::start(farm, &mut sink, &mut prof);
            for _ in 0..k {
                if !run.step(&mut sink, &mut prof) {
                    break;
                }
            }
            let snap = run.save_state(sink.events.len() as u64, 0);
            let encoded = snap.encode();
            let decoded = FarmSnapshot::decode(&encoded).unwrap();
            assert_eq!(
                decoded.encode(),
                encoded,
                "decode(encode) must round-trip, k={k}"
            );

            let mut restored = decoded.restore(config(11, 0.8)).unwrap();
            let mut tail_a = MemorySink::new();
            let mut tail_b = MemorySink::new();
            while run.step(&mut tail_a, &mut prof) {}
            while restored.step(&mut tail_b, &mut prof) {}
            let a = run.finish(&mut tail_a, &mut prof);
            let b = restored.finish(&mut tail_b, &mut prof);
            let lines_a: Vec<String> = tail_a.events.iter().map(|e| e.to_jsonl()).collect();
            let lines_b: Vec<String> = tail_b.events.iter().map(|e| e.to_jsonl()).collect();
            assert_eq!(lines_a, lines_b, "tails diverged after restore, k={k}");
            crate::journal::tests::assert_reports_bitwise_equal(&a, &b);
        }
    }

    #[test]
    fn snapshot_rejects_corruption_and_foreign_farms() {
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::disabled();
        let farm = Farm::new(config(5, 0.5), bag()).unwrap();
        let mut run = FarmRun::start(farm, &mut sink, &mut prof);
        for _ in 0..50 {
            run.step(&mut sink, &mut prof);
        }
        let snap = run.save_state(40, 0xDEAD);
        let good = snap.encode();

        // Version gate.
        let vs = good.replacen("v1", "v9", 1);
        // (checksum now wrong too; fix it so the version check is what fires)
        let vs_fixed = refresh_checksum(&vs);
        assert!(matches!(
            FarmSnapshot::decode(&vs_fixed),
            Err(SnapshotError::Version { .. })
        ));

        // A flipped byte anywhere in the body fails the checksum.
        let mut bytes = good.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        match FarmSnapshot::decode(&corrupt) {
            Err(SnapshotError::Checksum { .. }) | Err(SnapshotError::Malformed { .. }) => {}
            other => panic!("expected Checksum/Malformed, got {other:?}"),
        }

        // Garbage is Malformed, not a panic.
        assert!(matches!(
            FarmSnapshot::decode("not a snapshot at all\n"),
            Err(SnapshotError::Malformed { .. })
        ));

        // Wrong workstation count at restore.
        let decoded = FarmSnapshot::decode(&good).unwrap();
        let mut small = config(5, 0.5);
        small.workstations.pop();
        assert!(matches!(
            decoded.restore(small),
            Err(SnapshotError::FarmMismatch { .. })
        ));

        // Errors render.
        for e in [
            SnapshotError::Version { found: "x".into() },
            SnapshotError::Checksum {
                expected: 1,
                found: 2,
            },
            SnapshotError::FarmMismatch { reason: "x".into() },
            SnapshotError::JournalAhead {
                snapshot_records: 9,
                journal_records: 3,
            },
            SnapshotError::JournalMismatch { records: 4 },
            SnapshotError::Malformed {
                line: 2,
                reason: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(!e.kind().to_string().is_empty());
        }
    }

    /// Rewrites the trailing checksum line to match the (possibly edited)
    /// body, so tests can target validation stages past the checksum.
    fn refresh_checksum(text: &str) -> String {
        let body_end = text.rfind("\nchecksum ").unwrap() + 1;
        let body = &text[..body_end];
        format!(
            "{body}checksum {:016x}\n",
            fnv1a64(FNV_OFFSET, body.as_bytes())
        )
    }

    #[test]
    fn fork_with_original_config_reproduces_the_run() {
        let path =
            std::env::temp_dir().join(format!("cs_now_snapshot_fork_{}.snap", std::process::id()));
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::disabled();
        // A long run (many chunks), snapshotted early: plenty of dispatches
        // and fault rolls remain in the tail.
        let farm = Farm::new(config(23, 0.9), workloads::uniform(400, 1.0).unwrap()).unwrap();
        let mut run = FarmRun::start(farm, &mut sink, &mut prof);
        for _ in 0..30 {
            run.step(&mut sink, &mut prof);
        }
        run.save_state(0, 0).write_atomic(&path).unwrap();
        while run.step(&mut sink, &mut prof) {}
        let reference = run.finish(&mut sink, &mut prof);

        let (forked, meta) = Farm::fork_from_snapshot(config(23, 0.9), &path).unwrap();
        crate::journal::tests::assert_reports_bitwise_equal(&reference, &forked);
        assert_eq!(meta.seed, 23);
        assert_eq!(meta.workstations, 3);

        // A perturbed FaultPlan is a genuine what-if: same captured state,
        // different tail. Turning every fault *off* must change the rest of
        // a heavily-faulty run.
        let mut perturbed = config(23, 0.9);
        for w in &mut perturbed.workstations {
            w.faults = FaultPlan::none();
        }
        let (what_if, _) = Farm::fork_from_snapshot(perturbed, &path).unwrap();
        assert!(
            what_if.makespan.to_bits() != reference.makespan.to_bits()
                || what_if.lost_work.to_bits() != reference.lost_work.to_bits(),
            "perturbed fork should diverge"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_snapshot_metadata() {
        let path = std::env::temp_dir().join(format!(
            "cs_now_snapshot_inspect_{}.snap",
            std::process::id()
        ));
        let mut sink = MemorySink::new();
        let mut prof = SpanProfiler::disabled();
        let farm = Farm::new(config(7, 0.0), bag()).unwrap();
        let mut run = FarmRun::start(farm, &mut sink, &mut prof);
        for _ in 0..30 {
            run.step(&mut sink, &mut prof);
        }
        run.save_state(29, 0xBEEF).write_atomic(&path).unwrap();
        let meta = inspect_snapshot(&path).unwrap();
        assert_eq!(meta.seed, 7);
        assert_eq!(meta.workstations, 3);
        assert_eq!(meta.tasks, 90);
        assert_eq!(meta.journal_records, 29);
        assert!(meta.virtual_time >= 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_meta_roundtrips_and_rejects_corruption() {
        for first in [Some("{\"v\":2,\"t\":3.5,\"type\":\"bank\"}"), None] {
            let meta = SegmentMeta::for_cut(42, 0xDEAD_BEEF_CAFE, first);
            let decoded = SegmentMeta::decode(&meta.encode()).unwrap();
            assert_eq!(decoded.base_records, 42);
            assert_eq!(decoded.base_hash, 0xDEAD_BEEF_CAFE);
            assert_eq!(decoded.first_record_hash, meta.first_record_hash);
            assert!(decoded.matches_first(first));
            // The staleness probe: any other first line must not match.
            assert!(!decoded.matches_first(Some("{\"v\":2,\"other\":1}")));
            assert_eq!(decoded.matches_first(None), first.is_none());
        }
        // Any flipped body byte trips the trailing checksum.
        let text = SegmentMeta::for_cut(7, 0x1234, Some("line")).encode();
        let mut corrupt = text.clone().into_bytes();
        corrupt[10] ^= 0x04;
        let err = SegmentMeta::decode(std::str::from_utf8(&corrupt).unwrap()).unwrap_err();
        assert_eq!(err.kind(), SnapshotErrorKind::Checksum);
        // A foreign banner (with a fixed-up checksum) is a version error.
        let other = refresh_checksum(&text.replace(SEGMENT_VERSION, "cs-now-segment v99"));
        assert_eq!(
            SegmentMeta::decode(&other).unwrap_err().kind(),
            SnapshotErrorKind::Version
        );
    }

    #[test]
    fn segment_meta_stores_and_loads_through_the_vfs() {
        let path =
            std::env::temp_dir().join(format!("cs_now_segment_meta_{}.seg", std::process::id()));
        let meta = SegmentMeta::for_cut(99, 0xABCD, Some("{\"v\":2}"));
        meta.store(&StdVfs, &path).unwrap();
        let loaded = SegmentMeta::load(&StdVfs, &path).unwrap();
        assert_eq!(loaded.base_records, 99);
        assert_eq!(loaded.base_hash, 0xABCD);
        assert!(loaded.matches_first(Some("{\"v\":2}")));
        // The staging temp file was renamed away, not left behind.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}
